"""Quickstart: classify a path query and answer it over an inconsistent DB.

Run:  python examples/quickstart.py
"""

from repro import DatabaseInstance, certain_answer, classify


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Classify queries (Theorem 3: FO / NL / PTIME / coNP tetrachotomy).
    # ------------------------------------------------------------------
    print("The tetrachotomy on the paper's Example 3 queries:")
    for q in ("RXRX", "RXRY", "RXRYRY", "RXRXRYRY"):
        print("  ", classify(q))
    print()

    # ------------------------------------------------------------------
    # 2. An inconsistent database: Figure 2 of the paper.
    #    Primary key = first attribute, so R(1,2) and R(1,3) conflict.
    # ------------------------------------------------------------------
    db = DatabaseInstance.from_triples(
        [
            ("R", 0, 1),
            ("R", 1, 2),   # conflicting block R(1, *)
            ("R", 1, 3),   # conflicting block R(1, *)
            ("R", 2, 3),
            ("X", 3, 4),
        ]
    )
    print("Instance:", db)
    print("Conflicting blocks:", [str(b) for b in db.conflicting_blocks()])
    print()

    # ------------------------------------------------------------------
    # 3. Consistent query answering: is RRX true in EVERY repair?
    # ------------------------------------------------------------------
    result = certain_answer(db, "RRX")
    print(result)
    print("  method used:", result.method)
    print("  witness start constant:", result.witness_constant)
    print()

    # A 'no' answer comes with a checkable certificate.
    result = certain_answer(db, "RRR")
    print(result)
    if not result.answer:
        print("  falsifying repair:", result.falsifying_repair)


if __name__ == "__main__":
    main()
