"""Repair-space statistics: ♯CERTAINTY baselines and verified answers.

Quantifies *why* consistent query answering needs the paper's algorithms:
the number of repairs explodes exponentially with conflicts while the
fraction of repairs satisfying a query stays a stable, estimable quantity
-- and CERTAINTY(q) is the statement "that fraction is exactly 1", which
the polynomial solvers decide without looking at a single repair.

Run:  python examples/repair_statistics.py
"""

import random

from repro.db.repairs import count_repairs
from repro.experiments.harness import Table
from repro.solvers.certainty import certain_answer
from repro.solvers.counting import (
    count_satisfying_repairs,
    estimate_satisfying_fraction,
)
from repro.solvers.verify import verify_result
from repro.workloads.generators import planted_instance


def main() -> None:
    rng = random.Random(20210620)
    query = "RRX"

    table = Table(
        ["facts", "conflicts", "repairs", "sat_fraction", "estimate",
         "certain", "verified"]
    )
    for noise in (2, 6, 10, 14, 18):
        db = planted_instance(
            rng, query, n_constants=6, n_paths=2,
            n_noise_facts=noise, conflict_rate=0.55,
        )
        repairs = count_repairs(db)
        if repairs <= 100_000:
            exact = count_satisfying_repairs(db, query)
            fraction = "{:.3f}".format(exact.fraction)
        else:
            exact = None
            fraction = "(too many)"
        estimate = estimate_satisfying_fraction(db, query, 400, rng)
        result = certain_answer(db, query)
        if exact is not None:
            assert result.answer == exact.certain
        report = verify_result(db, query, result)
        table.add_row(
            [
                len(db),
                len(db.conflicting_blocks()),
                repairs,
                fraction,
                "{:.3f}".format(estimate),
                result.answer,
                "ok" if report.ok else "FAIL",
            ]
        )
    print("♯CERTAINTY({}) statistics on planted instances".format(query))
    print(table.render())
    print()
    print("The 'certain' column is the polynomial solver's answer;")
    print("'sat_fraction' is the exact fraction of repairs satisfying q;")
    print("certain == (fraction == 1.0) on every row, and every answer's")
    print("certificate passed independent verification.")


if __name__ == "__main__":
    main()
