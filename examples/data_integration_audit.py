"""A data-integration audit: CQA over conflicting merged sources.

The paper's motivating scenario: data integration leaves primary-key
violations (the same key mapped to different values by different
sources).  Instead of cleaning, consistent query answering returns the
answers that hold *no matter how* the conflicts are resolved.

We model an organizational reporting chain merged from two HR exports:

* ``M(e, m)``   -- employee ``e`` reports to manager ``m`` (key: e);
* ``D(m, d)``   -- manager ``m`` belongs to department ``d`` (key: m);
* ``H(d, h)``   -- department ``d`` is headed by ``h`` (key: d).

The two exports disagree on some employees' managers and some managers'
departments.  The audit question "is there *some* employee whose report
chain employee -> manager -> department -> head is intact in every
repair?" is the Boolean path query ``q = MDH`` -- self-join-free, hence
in FO (Theorem 1), answered by the first-order rewriting without looking
at a single repair.

A second question uses self-joins: "does the *deputy* table D chain two
levels (a deputy whose deputy exists) whatever the conflicts?"  That is
``q = DD``, in FO as well but via the self-join machinery (the intro's
``RR`` rewriting φ).

Run:  python examples/data_integration_audit.py
"""

import random

from repro import DatabaseInstance, certain_answer, classify
from repro.db.repairs import count_repairs, iter_repairs
from repro.db.evaluation import path_query_satisfied


def merged_hr_instance(rng: random.Random) -> DatabaseInstance:
    """Merge two synthetic HR exports with overlapping, conflicting rows."""
    employees = ["e{}".format(i) for i in range(8)]
    managers = ["m{}".format(i) for i in range(4)]
    departments = ["d{}".format(i) for i in range(3)]
    heads = ["h{}".format(i) for i in range(3)]

    triples = []
    for source in range(2):
        for e in employees:
            triples.append(("M", e, rng.choice(managers)))
        for m in managers:
            triples.append(("D", m, rng.choice(departments)))
        for d in departments:
            triples.append(("H", d, rng.choice(heads)))
    # Deputies: a self-joining chain over employees.
    for e in employees[:5]:
        triples.append(("V", e, rng.choice(employees)))
        if rng.random() < 0.5:
            triples.append(("V", e, rng.choice(employees)))
    return DatabaseInstance.from_triples(triples)


def main() -> None:
    rng = random.Random(2021)
    db = merged_hr_instance(rng)

    print("Merged instance: {} facts, {} conflicting blocks, {} repairs".format(
        len(db), len(db.conflicting_blocks()), count_repairs(db)))
    print()

    for q, description in [
        ("MDH", "intact employee->manager->department->head chain"),
        ("VV", "a two-level deputy chain"),
        ("MDHH", "chain whose department head heads a department headed..."),
    ]:
        try:
            classification = classify(q)
        except Exception as exc:  # pragma: no cover
            print(q, "->", exc)
            continue
        result = certain_answer(db, q)
        print("Query {} ({}):".format(q, description))
        print("  complexity: {}".format(classification.complexity))
        print("  certain answer: {} (method: {})".format(result.answer, result.method))
        if result.answer and result.witness_constant is not None:
            print("  witness start: {}".format(result.witness_constant))
        if not result.answer and result.falsifying_repair is not None:
            repair = result.falsifying_repair
            print("  counterexample repair resolves conflicts so the chain breaks")
            assert not path_query_satisfied(q, repair)
        print()

    # Sanity: spot-check the FO answer against explicit repair enumeration
    # when the repair count is small enough.
    if count_repairs(db) <= 100_000:
        expected = all(
            path_query_satisfied("MDH", repair) for repair in iter_repairs(db)
        )
        assert certain_answer(db, "MDH").answer == expected
        print("Brute-force cross-check over", count_repairs(db), "repairs: OK")


if __name__ == "__main__":
    main()
