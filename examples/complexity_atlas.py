"""The complexity atlas: classify query catalogs and visualize NFA(q).

Reproduces the classification claims scattered through the paper
(Examples 1-3, Figure 4, Claim 5, Lemma 3) and prints, for each named
query: its conditions C1/C2/C3, its complexity class, the witness
decomposition for the failed condition, and the rewind language explored
up to a length bound.

Run:  python examples/complexity_atlas.py
"""

from repro import classify
from repro.automata.query_nfa import backward_transitions, nfa_min, query_nfa
from repro.classification.regex_conditions import find_b1, find_b2a, find_b2b, find_b3
from repro.experiments.harness import Table
from repro.words.rewind import enumerate_language
from repro.words.word import Word
from repro.workloads.queries import PAPER_QUERY_CLASSES


def atlas_table() -> Table:
    table = Table(["query", "C1", "C2", "C3", "complexity", "violation witness"])
    for text in PAPER_QUERY_CLASSES:
        classification = classify(text)
        witness = ""
        if not classification.c1:
            witness = "C1: {}".format(classification.c1_witness)
        if not classification.c2:
            witness = "C2: {}".format(classification.c2_witness)
        if not classification.c3:
            witness = "C3: {}".format(classification.c3_witness)
        table.add_row(
            [
                text,
                "+" if classification.c1 else "-",
                "+" if classification.c2 else "-",
                "+" if classification.c3 else "-",
                classification.complexity,
                witness,
            ]
        )
    return table


def show_automaton(q: str) -> None:
    word = Word(q)
    nfa = query_nfa(word)
    print("NFA({}) -- states are prefix lengths 0..{}".format(q, len(word)))
    print("  forward : " + ", ".join(
        "{} -{}-> {}".format(i, symbol, i + 1) for i, symbol in enumerate(word)
    ))
    backwards = backward_transitions(word)
    print("  backward: " + (", ".join(
        "{} -ε-> {}".format(j, i) for j, i in backwards) or "(none)"))
    minimal = nfa_min(word)
    sample = [
        "".join(w) for w in minimal.enumerate_accepted(len(word) + 3)
    ]
    print("  NFAmin language up to length {}: {}".format(len(word) + 3, sample))
    print()


def show_rewind_language(q: str, bound: int) -> None:
    language = enumerate_language(q, bound)
    print("L↬({}) up to length {}: {}".format(
        q, bound, ", ".join(str(w) for w in language)))


def show_decompositions(q: str) -> None:
    print("Definition 1 witnesses for {}:".format(q))
    for name, finder in [
        ("B1", find_b1), ("B2a", find_b2a), ("B2b", find_b2b), ("B3", find_b3)
    ]:
        witness = finder(q)
        print("  {:3s}: {}".format(name, witness if witness else "none"))
    print()


def main() -> None:
    print("=" * 72)
    print("Classification atlas (Theorem 3) for the paper's named queries")
    print("=" * 72)
    print(atlas_table().render())
    print()

    print("=" * 72)
    print("Figure 4: the automaton NFA(RXRRR)")
    print("=" * 72)
    show_automaton("RXRRR")

    print("=" * 72)
    print("Rewind languages (Definition 4)")
    print("=" * 72)
    for q in ("RRX", "RXRY", "TWITTER"):
        show_rewind_language(q, len(q) + 4)
    print()

    print("=" * 72)
    print("Regex characterizations (Section 4)")
    print("=" * 72)
    for q in ("RXRX", "RRX", "UVUVWV", "RXRYRY"):
        show_decompositions(q)


if __name__ == "__main__":
    main()
