"""Hardness gadgets in action: the Section 7 reductions, end to end.

* Lemma 18: REACHABILITY -> complement of CERTAINTY(RRX)  (NL-hardness);
* Lemma 19: SAT          -> complement of CERTAINTY(ARRX) (coNP-hardness);
* Lemma 20: MCVP         -> CERTAINTY(RXRYRY)             (PTIME-hardness).

Each section builds the paper's own running example (Figures 8, 9, 10),
solves the produced CERTAINTY instance, and checks the reduction's
correctness statement against independently computed ground truth.

Run:  python examples/hardness_gadgets.py
"""

import random

from repro.circuits.circuit import Gate, MonotoneCircuit
from repro.cnf.formula import Clause, CnfFormula
from repro.graphs.digraph import DiGraph, has_directed_path
from repro.reductions.mcvp import mcvp_reduction
from repro.reductions.reachability import reachability_reduction
from repro.reductions.sat_reduction import sat_reduction
from repro.solvers.certainty import certain_answer


def lemma18_demo() -> None:
    print("Lemma 18 (Figure 8): graph s -> a -> t, query RRX")
    graph = DiGraph(edges=[("s", "a"), ("a", "t")])
    reduction = reachability_reduction("RRX", graph, "s", "t")
    print("  witness decomposition:", reduction.witness)
    print("  instance size:", len(reduction.instance), "facts")
    reachable = has_directed_path(graph, "s", "t")
    result = certain_answer(reduction.instance, "RRX")
    print("  reachable: {}  =>  CERTAINTY = {} (expected {})".format(
        reachable, result.answer, reduction.expected_certainty(reachable)))
    assert result.answer == reduction.expected_certainty(reachable)

    # Break the path: certainty flips to yes.
    broken = DiGraph(vertices=["s", "a", "t"], edges=[("s", "a")])
    reduction2 = reachability_reduction("RRX", broken, "s", "t")
    result2 = certain_answer(reduction2.instance, "RRX")
    print("  without the a->t edge: CERTAINTY = {}".format(result2.answer))
    assert result2.answer
    print()


def lemma19_demo() -> None:
    print("Lemma 19 (Figure 9): ψ = (x1 ∨ ¬x2) ∧ (¬x2 ∨ x3), query ARRX")
    formula = CnfFormula(
        [
            Clause((("x1", True), ("x2", False))),
            Clause((("x2", False), ("x3", True))),
        ]
    )
    reduction = sat_reduction("ARRX", formula)
    print("  instance size:", len(reduction.instance), "facts")
    satisfiable = formula.is_satisfiable()
    result = certain_answer(reduction.instance, "ARRX")
    print("  satisfiable: {}  =>  CERTAINTY = {} (expected {})".format(
        satisfiable, result.answer, reduction.expected_certainty(satisfiable)))
    assert result.answer == reduction.expected_certainty(satisfiable)

    unsat = CnfFormula([Clause((("x1", True),)), Clause((("x1", False),))])
    result2 = certain_answer(sat_reduction("ARRX", unsat).instance, "ARRX")
    print("  on an unsatisfiable formula: CERTAINTY = {}".format(result2.answer))
    assert result2.answer
    print()


def lemma20_demo() -> None:
    print("Lemma 20 (Figure 10): circuit o = (x1 ∧ x2) ∨ x3, query RXRYRY")
    circuit = MonotoneCircuit(
        ["x1", "x2", "x3"],
        [Gate("g1", "and", "x1", "x2"), Gate("o", "or", "g1", "x3")],
        "o",
    )
    for assignment in (
        {"x1": True, "x2": True, "x3": False},
        {"x1": True, "x2": False, "x3": False},
        {"x1": False, "x2": False, "x3": True},
    ):
        reduction = mcvp_reduction("RXRYRY", circuit, assignment)
        value = circuit.value(assignment)
        result = certain_answer(reduction.instance, "RXRYRY")
        print("  σ = {}  circuit = {}  CERTAINTY = {}".format(
            assignment, value, result.answer))
        assert result.answer == reduction.expected_certainty(value)
    print()


def random_agreement_sweep() -> None:
    rng = random.Random(7)
    from repro.graphs.generators import random_dag

    agreements = 0
    trials = 20
    for _ in range(trials):
        graph = random_dag(6, 0.3, rng)
        reduction = reachability_reduction("RRX", graph, 0, 5)
        reachable = has_directed_path(graph, 0, 5)
        result = certain_answer(reduction.instance, "RRX")
        agreements += result.answer == reduction.expected_certainty(reachable)
    print("Random sweep: {}/{} reachability reductions agree".format(
        agreements, trials))
    assert agreements == trials


def main() -> None:
    lemma18_demo()
    lemma19_demo()
    lemma20_demo()
    random_agreement_sweep()


if __name__ == "__main__":
    main()
