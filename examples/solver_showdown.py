"""Solver showdown: polynomial algorithms vs exponential baselines.

Reproduces the complexity *shapes* Theorem 3 predicts:

* the Figure 5 fixpoint algorithm scales polynomially (near-linearly) in
  the number of facts, while brute-force repair enumeration explodes
  exponentially in the number of conflicting blocks;
* on coNP-complete queries the SAT baseline is the only exact polynomial-
  *encoding* approach, with the fixpoint algorithm acting as a sound
  "no" pre-filter.

Run:  python examples/solver_showdown.py
"""

import random

from repro.db.repairs import count_repairs
from repro.experiments.harness import Table, time_call
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.nl_solver import certain_answer_nl
from repro.solvers.sat_encoding import certain_answer_sat
from repro.workloads.generators import chain_instance, planted_instance


def crossover_table() -> Table:
    """Fixpoint vs brute force on growing chains with conflicts (q = RRX)."""
    table = Table(
        ["facts", "conflicts", "repairs", "fixpoint_ms", "brute_ms", "answer"]
    )
    for repetitions in (2, 4, 6, 8, 10):
        db = chain_instance("RRX", repetitions=repetitions, conflict_every=3)
        fix_result, fix_time = time_call(
            lambda db=db: certain_answer_fixpoint(db, "RRX"), repeats=3
        )
        repairs = count_repairs(db)
        if repairs <= 200_000:
            brute_result, brute_time = time_call(
                lambda db=db: certain_answer_brute_force(db, "RRX")
            )
            assert brute_result.answer == fix_result.answer
            brute_text = "{:.2f}".format(brute_time * 1000)
        else:
            brute_text = "(skipped: {} repairs)".format(repairs)
        table.add_row(
            [
                len(db),
                len(db.conflicting_blocks()),
                repairs,
                "{:.2f}".format(fix_time * 1000),
                brute_text,
                fix_result.answer,
            ]
        )
    return table


def conp_table(rng: random.Random) -> Table:
    """The coNP pipeline on ARRX: fixpoint prefilter + SAT solver."""
    table = Table(["facts", "repairs", "method", "sat_ms", "answer"])
    for noise in (4, 8, 12, 16):
        db = planted_instance(
            rng, "ARRX", n_constants=6, n_paths=2,
            n_noise_facts=noise, conflict_rate=0.6,
        )
        result, elapsed = time_call(lambda db=db: certain_answer(db, "ARRX"))
        if count_repairs(db) <= 50_000:
            expected = certain_answer_brute_force(db, "ARRX").answer
            assert result.answer == expected
        table.add_row(
            [
                len(db),
                count_repairs(db),
                result.method,
                "{:.2f}".format(elapsed * 1000),
                result.answer,
            ]
        )
    return table


def nl_vs_fixpoint_table() -> Table:
    """Two PTIME routes for the NL query RRX on growing chains."""
    table = Table(["facts", "nl_ms", "fixpoint_ms", "agree"])
    for repetitions in (3, 6, 9, 12):
        db = chain_instance("RRX", repetitions=repetitions, conflict_every=4)
        nl_result, nl_time = time_call(lambda db=db: certain_answer_nl(db, "RRX"))
        fix_result, fix_time = time_call(
            lambda db=db: certain_answer_fixpoint(db, "RRX")
        )
        table.add_row(
            [
                len(db),
                "{:.2f}".format(nl_time * 1000),
                "{:.2f}".format(fix_time * 1000),
                nl_result.answer == fix_result.answer,
            ]
        )
    return table


def main() -> None:
    rng = random.Random(42)
    print("=" * 72)
    print("E11: fixpoint (polynomial) vs brute force (exponential), q = RRX")
    print("=" * 72)
    print(crossover_table().render())
    print()
    print("=" * 72)
    print("E8: the coNP pipeline on ARRX (prefilter + SAT)")
    print("=" * 72)
    print(conp_table(rng).render())
    print()
    print("=" * 72)
    print("E7: linear-Datalog NL solver vs fixpoint on RRX")
    print("=" * 72)
    print(nl_vs_fixpoint_table().render())


if __name__ == "__main__":
    main()
