"""Legacy setup shim (the environment has no `wheel` package; this keeps
`pip install -e .` on the setup.py-develop path).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
