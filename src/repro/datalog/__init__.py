"""Datalog substrate (Section 6.3).

Rules and programs with stratified negation and a ``neq`` builtin, a
stratifier with a *linearity* check (Lemma 14 places CERTAINTY(q) for C2
queries in *linear* Datalog with stratified negation), a semi-naive
bottom-up engine, and the generator of the Claim 5 CQA programs.
"""

from repro.datalog.syntax import Literal, Program, Rule
from repro.datalog.stratify import is_linear, stratify
from repro.datalog.engine import (
    CompactProgram,
    compact_program,
    evaluate_program,
    evaluate_program_compact,
)
from repro.datalog.cqa_program import build_cqa_program, CqaProgram

__all__ = [
    "Literal",
    "Program",
    "Rule",
    "is_linear",
    "stratify",
    "evaluate_program",
    "evaluate_program_compact",
    "CompactProgram",
    "compact_program",
    "build_cqa_program",
    "CqaProgram",
]
