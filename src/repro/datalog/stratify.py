"""Stratification and linearity analysis of Datalog programs.

* :func:`stratify` computes a stratification (negation must not cross a
  cycle of the predicate dependency graph) and raises on unstratifiable
  programs;
* :func:`is_linear` checks *linearity*: every rule has at most one body
  literal whose predicate is mutually recursive with the head.  Lemma 14
  places CERTAINTY(q) for C2 queries in linear Datalog with stratified
  negation, the Datalog fragment corresponding to NL; the generated
  programs are checked against this syntactic class in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.syntax import Program


def dependency_graph(program: Program) -> Dict[str, Set[Tuple[str, bool]]]:
    """Edges ``head -> (body predicate, is_negative)`` over IDB predicates."""
    idb = program.idb_predicates()
    graph: Dict[str, Set[Tuple[str, bool]]] = {p: set() for p in idb}
    for rule in program.rules:
        for literal in rule.body:
            if literal.predicate in idb:
                graph[rule.head.predicate].add(
                    (literal.predicate, literal.negated)
                )
    return graph


def _sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Strongly connected components (iterative Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)

    for node in graph:
        if node not in index:
            strongconnect(node)
    return result


def recursive_components(program: Program) -> List[Set[str]]:
    """SCCs of the positive+negative dependency graph over IDB predicates."""
    graph = {
        head: {pred for pred, _ in edges}
        for head, edges in dependency_graph(program).items()
    }
    return _sccs(graph)


def stratify(program: Program) -> List[Set[str]]:
    """A stratification: list of predicate sets, lowest stratum first.

    Raises :class:`ValueError` if a negative edge lies on a dependency
    cycle (the program is not stratifiable).
    """
    graph = dependency_graph(program)
    components = recursive_components(program)
    component_of: Dict[str, int] = {}
    for i, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = i
    # Negative edge inside a component => unstratifiable.
    for head, edges in graph.items():
        for predicate, negated in edges:
            if negated and component_of[head] == component_of[predicate]:
                raise ValueError(
                    "program is not stratifiable: negative cycle through "
                    "{} and {}".format(head, predicate)
                )
    # Longest-path layering of the component DAG: stratum(head) >=
    # stratum(body), strictly greater across negation.
    strata: Dict[str, int] = {p: 0 for p in graph}
    changed = True
    iterations = 0
    limit = (len(graph) + 1) ** 2 + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:
            raise ValueError("stratification did not converge")
        for head, edges in graph.items():
            for predicate, negated in edges:
                required = strata[predicate] + (1 if negated else 0)
                if component_of[head] == component_of[predicate]:
                    required = strata[predicate]
                if strata[head] < required:
                    strata[head] = required
                    changed = True
    by_level: Dict[int, Set[str]] = {}
    for predicate, level in strata.items():
        by_level.setdefault(level, set()).add(predicate)
    return [by_level[level] for level in sorted(by_level)]


def is_linear(program: Program) -> bool:
    """True iff every rule has at most one body literal mutually recursive
    with its head (the standard definition of *linear* Datalog)."""
    components = recursive_components(program)
    component_of: Dict[str, int] = {}
    for i, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = i
    for rule in program.rules:
        head_component = component_of.get(rule.head.predicate)
        recursive_count = 0
        for literal in rule.body:
            if literal.is_builtin:
                continue
            if component_of.get(literal.predicate) == head_component:
                recursive_count += 1
        if recursive_count > 1:
            return False
    return True
