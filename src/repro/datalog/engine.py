"""Semi-naive bottom-up evaluation with stratified negation.

The engine evaluates strata in order; within a stratum, recursive rules
are iterated semi-naively (each round joins one recursive body literal
against the delta of the previous round).  Negated literals look up fully
computed relations (stratification guarantees they are), and the ``neq``
builtin is checked once its arguments are bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.datalog.stratify import stratify
from repro.datalog.syntax import Literal, Program, Rule
from repro.queries.atoms import Term, Variable, is_variable

Tuple_ = Tuple[Hashable, ...]
Database = Dict[str, Set[Tuple_]]


def _match(
    literal: Literal, row: Tuple_, bindings: Dict[Variable, Hashable]
) -> Optional[Dict[Variable, Hashable]]:
    """Unify *literal*'s args with *row* under *bindings*; new bindings or None."""
    if len(literal.args) != len(row):
        return None
    new: Dict[Variable, Hashable] = {}
    for arg, value in zip(literal.args, row):
        if is_variable(arg):
            bound = bindings.get(arg, new.get(arg))
            if bound is None:
                new[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return new


def _resolve_args(
    literal: Literal, bindings: Dict[Variable, Hashable]
) -> Tuple_:
    values = []
    for arg in literal.args:
        if is_variable(arg):
            values.append(bindings[arg])
        else:
            values.append(arg)
    return tuple(values)


def _reordered_body(rule: Rule) -> List[Literal]:
    """Positive non-builtin literals first (join), then builtins/negation."""
    positives = [l for l in rule.body if not l.negated and not l.is_builtin]
    checks = [l for l in rule.body if l.negated or l.is_builtin]
    return positives + checks


def _evaluate_rule(
    rule: Rule,
    relations: Database,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head tuples derivable from *rule*.

    If *delta_predicate* is given, at least one occurrence of that
    predicate in the body is bound to *delta* instead of the full relation
    (semi-naive evaluation); we take each occurrence in turn.
    """
    body = _reordered_body(rule)
    positives = [l for l in body if not l.negated and not l.is_builtin]
    results: Set[Tuple_] = set()

    delta_positions: List[Optional[int]]
    if delta_predicate is None:
        delta_positions = [None]
    else:
        delta_positions = [
            i for i, l in enumerate(positives) if l.predicate == delta_predicate
        ]
        if not delta_positions:
            return results

    def source(index: int, delta_at: Optional[int]) -> Iterable[Tuple_]:
        literal = positives[index]
        if delta_at is not None and index == delta_at:
            return delta or ()
        return relations.get(literal.predicate, ())

    def check_tail(bindings: Dict[Variable, Hashable]) -> bool:
        for literal in body[len(positives):]:
            values = _resolve_args(literal, bindings)
            if literal.is_builtin:
                if literal.predicate == "neq":
                    if values[0] == values[1]:
                        return False
                else:
                    raise ValueError("unknown builtin {}".format(literal.predicate))
            else:
                present = values in relations.get(literal.predicate, ())
                if literal.negated and present:
                    return False
                if not literal.negated and not present:
                    return False
        return True

    def join(index: int, bindings: Dict[Variable, Hashable], delta_at) -> None:
        if index == len(positives):
            if check_tail(bindings):
                results.add(_resolve_args(rule.head, bindings))
            return
        for row in source(index, delta_at):
            new = _match(positives[index], row, bindings)
            if new is None:
                continue
            bindings.update(new)
            join(index + 1, bindings, delta_at)
            for key in new:
                del bindings[key]

    for delta_at in delta_positions:
        join(0, {}, delta_at)
    return results


def evaluate_program(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """Evaluate *program* bottom-up on the extensional database *edb*.

    Returns the full materialization: every EDB and IDB predicate mapped
    to its set of tuples.
    """
    relations: Database = {
        predicate: {tuple(row) for row in rows} for predicate, rows in edb.items()
    }
    for predicate in program.idb_predicates():
        relations.setdefault(predicate, set())
    for predicate in program.edb_predicates():
        relations.setdefault(predicate, set())

    for stratum in stratify(program):
        rules = [r for r in program.rules if r.head.predicate in stratum]
        # Round 0: full evaluation seeds the deltas.
        delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for rule in rules:
            derived = _evaluate_rule(rule, relations)
            fresh = derived - relations[rule.head.predicate]
            relations[rule.head.predicate] |= fresh
            delta[rule.head.predicate] |= fresh
        # Semi-naive iteration.
        while any(delta.values()):
            next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
            for rule in rules:
                for predicate, changed in delta.items():
                    if not changed:
                        continue
                    derived = _evaluate_rule(rule, relations, predicate, changed)
                    fresh = derived - relations[rule.head.predicate]
                    relations[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] |= fresh
            delta = next_delta
    return relations
