"""Semi-naive bottom-up evaluation with stratified negation.

The engine evaluates strata in order; within a stratum, recursive rules
are iterated semi-naively (each round joins one recursive body literal
against the delta of the previous round).  Negated literals look up fully
computed relations (stratification guarantees they are), and the ``neq``
builtin is checked once its arguments are bound.

Joins are *hash-indexed*: for each body literal the evaluator derives the
bound-position signature -- the argument positions holding constants or
variables bound by earlier literals -- and probes a per-relation hash
index keyed on those positions instead of scanning the whole relation.
Indexes are built lazily on first probe and maintained incrementally as
tuples are derived, so each stratum pays for exactly the access paths its
rules use.  The historical scan-and-unify evaluator is preserved as
:func:`evaluate_program_naive` (the benchmark baseline).

:class:`DatalogState` keeps a program's materialization alive across
calls and exposes ``resume(delta_edb)``: the semi-naive loop re-runs
seeded with the delta tuples only, so strata untouched by the delta are
skipped entirely.  Strata whose *negated* inputs changed (or that sit
downstream of a retraction) are soundly recomputed from scratch.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.datalog.stratify import stratify
from repro.datalog.syntax import Literal, Program, Rule
from repro.queries.atoms import Variable, is_variable

Tuple_ = Tuple[Hashable, ...]
Database = Dict[str, Set[Tuple_]]

_EMPTY: Tuple[Tuple_, ...] = ()


def _match(
    literal: Literal, row: Tuple_, bindings: Dict[Variable, Hashable]
) -> Optional[Dict[Variable, Hashable]]:
    """Unify *literal*'s args with *row* under *bindings*; new bindings or None."""
    if len(literal.args) != len(row):
        return None
    new: Dict[Variable, Hashable] = {}
    for arg, value in zip(literal.args, row):
        if is_variable(arg):
            bound = bindings.get(arg, new.get(arg))
            if bound is None:
                new[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return new


def _resolve_args(
    literal: Literal, bindings: Dict[Variable, Hashable]
) -> Tuple_:
    values = []
    for arg in literal.args:
        if is_variable(arg):
            values.append(bindings[arg])
        else:
            values.append(arg)
    return tuple(values)


def _reordered_body(rule: Rule) -> List[Literal]:
    """Positive non-builtin literals first (join), then builtins/negation."""
    positives = [l for l in rule.body if not l.negated and not l.is_builtin]
    checks = [l for l in rule.body if l.negated or l.is_builtin]
    return positives + checks


# ----------------------------------------------------------------------
# Indexed relation store
# ----------------------------------------------------------------------


class RelationStore:
    """Relations plus lazily built, incrementally maintained join indexes.

    An index is keyed by ``(predicate, signature)`` where *signature* is
    the tuple of bound argument positions; it maps the projection of a row
    onto those positions to the rows sharing it.  ``add`` keeps every live
    index of the predicate current, so an index is built at most once per
    evaluation however many semi-naive rounds run.
    """

    __slots__ = ("relations", "_indexes")

    def __init__(self, relations: Optional[Database] = None) -> None:
        self.relations: Database = relations if relations is not None else {}
        self._indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple_, List[Tuple_]]
        ] = {}

    def rows(self, predicate: str) -> Iterable[Tuple_]:
        return self.relations.get(predicate, _EMPTY)

    def contains(self, predicate: str, row: Tuple_) -> bool:
        return row in self.relations.get(predicate, _EMPTY)

    def add(self, predicate: str, fresh: Iterable[Tuple_]) -> None:
        relation = self.relations.setdefault(predicate, set())
        added = [row for row in fresh if row not in relation]
        relation.update(added)
        if not added:
            return
        for (pred, signature), index in self._indexes.items():
            if pred != predicate:
                continue
            for row in added:
                key = tuple(row[p] for p in signature)
                index.setdefault(key, []).append(row)

    def clear_predicate(self, predicate: str) -> None:
        self.relations[predicate] = set()
        for key in [k for k in self._indexes if k[0] == predicate]:
            del self._indexes[key]

    def lookup(
        self, predicate: str, signature: Tuple[int, ...], key: Tuple_
    ) -> List[Tuple_]:
        index = self._indexes.get((predicate, signature))
        if index is None:
            index = {}
            for row in self.relations.get(predicate, _EMPTY):
                index.setdefault(
                    tuple(row[p] for p in signature), []
                ).append(row)
            self._indexes[(predicate, signature)] = index
        return index.get(key, [])


class _RulePlan:
    """A rule with its join order and per-literal bound-position signatures.

    The signature of the literal at join depth *i* is the set of argument
    positions carrying a constant or a variable bound by literals
    ``0..i-1``; those positions key the hash probe.  Positions left out
    (first occurrences and in-literal repeats) are validated by
    :func:`_match` on the narrowed candidate list.
    """

    __slots__ = ("rule", "positives", "checks", "signatures")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        body = _reordered_body(rule)
        self.positives = [
            l for l in body if not l.negated and not l.is_builtin
        ]
        self.checks = body[len(self.positives):]
        bound: Set[Variable] = set()
        self.signatures: List[Tuple[int, ...]] = []
        for literal in self.positives:
            signature = tuple(
                pos
                for pos, arg in enumerate(literal.args)
                if not is_variable(arg) or arg in bound
            )
            self.signatures.append(signature)
            bound |= literal.variables()

    @property
    def head_predicate(self) -> str:
        return self.rule.head.predicate


def _evaluate_rule_indexed(
    plan: _RulePlan,
    store: RelationStore,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head tuples derivable from *plan*'s rule, via indexed joins.

    If *delta_predicate* is given, at least one occurrence of that
    predicate in the body is bound to *delta* instead of the full relation
    (semi-naive evaluation); we take each occurrence in turn.
    """
    positives = plan.positives
    results: Set[Tuple_] = set()

    delta_positions: List[Optional[int]]
    if delta_predicate is None:
        delta_positions = [None]
    else:
        delta_positions = [
            i for i, l in enumerate(positives) if l.predicate == delta_predicate
        ]
        if not delta_positions:
            return results

    rule = plan.rule

    def check_tail(bindings: Dict[Variable, Hashable]) -> bool:
        for literal in plan.checks:
            values = _resolve_args(literal, bindings)
            if literal.is_builtin:
                if literal.predicate == "neq":
                    if values[0] == values[1]:
                        return False
                else:
                    raise ValueError(
                        "unknown builtin {}".format(literal.predicate)
                    )
            else:
                present = store.contains(literal.predicate, values)
                if literal.negated and present:
                    return False
                if not literal.negated and not present:
                    return False
        return True

    def candidates(index: int, bindings, delta_at) -> Iterable[Tuple_]:
        literal = positives[index]
        if delta_at is not None and index == delta_at:
            return delta or _EMPTY
        signature = plan.signatures[index]
        if not signature:
            return store.rows(literal.predicate)
        key = tuple(
            bindings[arg] if is_variable(arg) else arg
            for arg in (literal.args[p] for p in signature)
        )
        return store.lookup(literal.predicate, signature, key)

    def join(index: int, bindings: Dict[Variable, Hashable], delta_at) -> None:
        if index == len(positives):
            if check_tail(bindings):
                results.add(_resolve_args(rule.head, bindings))
            return
        for row in candidates(index, bindings, delta_at):
            new = _match(positives[index], row, bindings)
            if new is None:
                continue
            bindings.update(new)
            join(index + 1, bindings, delta_at)
            for key in new:
                del bindings[key]

    for delta_at in delta_positions:
        join(0, {}, delta_at)
    return results


def _run_stratum(
    plans: List[_RulePlan],
    store: RelationStore,
    stratum: Set[str],
    seed_delta: Optional[Dict[str, Set[Tuple_]]] = None,
) -> Dict[str, Set[Tuple_]]:
    """Run one stratum to fixpoint; returns the tuples it derived.

    Without *seed_delta* this is the usual round-0-plus-semi-naive loop.
    With it (the resume path), round 0 is replaced by joining each rule
    against the seed deltas -- every new derivation must use at least one
    changed tuple, so strata are re-entered in O(affected) work.
    """
    fresh_total: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
    delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}

    if seed_delta is None:
        for plan in plans:
            derived = _evaluate_rule_indexed(plan, store)
            fresh = derived - store.relations.get(plan.head_predicate, set())
            store.add(plan.head_predicate, fresh)
            delta[plan.head_predicate] |= fresh
    else:
        for plan in plans:
            body_predicates = {l.predicate for l in plan.positives}
            for predicate in body_predicates:
                changed = seed_delta.get(predicate)
                if not changed:
                    continue
                derived = _evaluate_rule_indexed(
                    plan, store, predicate, changed
                )
                fresh = derived - store.relations.get(
                    plan.head_predicate, set()
                )
                store.add(plan.head_predicate, fresh)
                delta[plan.head_predicate] |= fresh
    for predicate, rows in delta.items():
        fresh_total[predicate] |= rows

    while any(delta.values()):
        next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for plan in plans:
            for predicate, changed in delta.items():
                if not changed:
                    continue
                derived = _evaluate_rule_indexed(plan, store, predicate, changed)
                fresh = derived - store.relations[plan.head_predicate]
                store.add(plan.head_predicate, fresh)
                next_delta[plan.head_predicate] |= fresh
        delta = next_delta
        for predicate, rows in delta.items():
            fresh_total[predicate] |= rows
    return fresh_total


class DatalogState:
    """A program's materialization, kept alive for incremental re-solving.

    ``DatalogState.evaluate(program, edb)`` runs the full bottom-up
    evaluation and records per-stratum structure; ``resume(delta_edb)``
    then folds a batch of *inserted* EDB tuples into the materialization:

    * strata none of whose body predicates changed are skipped;
    * strata touched only through *positive* literals re-run semi-naive
      seeded with the changed tuples (monotone, hence sound and complete);
    * strata reading a changed predicate through *negation* -- and every
      stratum downstream of a retraction -- are recomputed from scratch
      (insertion under negation is non-monotone, so over-deletion happens
      wholesale at stratum granularity).

    The net effect: EDB deltas that do not disturb the negated base
    predicates (for the Claim 5 CQA programs: inserts into existing
    blocks, which leave every ``key_R`` unchanged) flow through the
    linear recursion in O(affected) work.
    """

    __slots__ = ("program", "store", "strata", "_plans_by_stratum")

    def __init__(
        self,
        program: Program,
        store: RelationStore,
        strata: List[Set[str]],
    ) -> None:
        self.program = program
        self.store = store
        self.strata = strata
        self._plans_by_stratum: List[List[_RulePlan]] = [
            [
                _RulePlan(rule)
                for rule in program.rules
                if rule.head.predicate in stratum
            ]
            for stratum in strata
        ]

    @property
    def relations(self) -> Database:
        return self.store.relations

    @classmethod
    def evaluate(
        cls, program: Program, edb: Dict[str, Iterable[Tuple_]]
    ) -> "DatalogState":
        """Full bottom-up evaluation; returns the resumable state."""
        relations: Database = {
            predicate: {tuple(row) for row in rows}
            for predicate, rows in edb.items()
        }
        for predicate in program.idb_predicates():
            relations.setdefault(predicate, set())
        for predicate in program.edb_predicates():
            relations.setdefault(predicate, set())
        state = cls(program, RelationStore(relations), stratify(program))
        for plans, stratum in zip(state._plans_by_stratum, state.strata):
            _run_stratum(plans, state.store, stratum)
        return state

    def resume(self, delta_edb: Dict[str, Iterable[Tuple_]]) -> Database:
        """Fold inserted EDB tuples into the materialization.

        *delta_edb* maps EDB predicate names to newly inserted tuples
        (tuples already present are ignored).  Returns the updated full
        materialization; the state stays resumable for further deltas.
        EDB *deletions* are outside this entry point's contract -- delete
        support lives a level up (the fixpoint solver's over-deletion),
        and callers with removals re-evaluate from scratch.
        """
        changed: Dict[str, Set[Tuple_]] = {}
        for predicate, rows in delta_edb.items():
            relation = self.store.relations.setdefault(predicate, set())
            fresh = {tuple(row) for row in rows} - relation
            if fresh:
                self.store.add(predicate, fresh)
                changed[predicate] = fresh

        recompute_downstream = False
        for plans, stratum in zip(self._plans_by_stratum, self.strata):
            touches_change = any(
                changed.get(literal.predicate)
                for plan in plans
                for literal in plan.rule.body
            )
            if not touches_change and not recompute_downstream:
                continue
            negated_hit = any(
                literal.negated and changed.get(literal.predicate)
                for plan in plans
                for literal in plan.rule.body
            )
            if recompute_downstream or negated_hit:
                old = {
                    p: set(self.store.relations.get(p, ())) for p in stratum
                }
                for predicate in stratum:
                    self.store.clear_predicate(predicate)
                _run_stratum(plans, self.store, stratum)
                for predicate in stratum:
                    new = self.store.relations[predicate]
                    fresh = new - old[predicate]
                    retracted = old[predicate] - new
                    if fresh:
                        changed.setdefault(predicate, set()).update(fresh)
                    if retracted:
                        # A shrunken relation invalidates everything that
                        # consumed it positively: recompute what follows.
                        recompute_downstream = True
                        changed.setdefault(predicate, set())
            else:
                derived = _run_stratum(
                    plans, self.store, stratum, seed_delta=changed
                )
                for predicate, rows in derived.items():
                    if rows:
                        changed.setdefault(predicate, set()).update(rows)
        return self.store.relations


def evaluate_program(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """Evaluate *program* bottom-up on the extensional database *edb*.

    Returns the full materialization: every EDB and IDB predicate mapped
    to its set of tuples.  Joins run through the lazily built hash
    indexes; use :class:`DatalogState` to keep the result resumable under
    EDB insertions.
    """
    return DatalogState.evaluate(program, edb).relations


# ----------------------------------------------------------------------
# The scan-and-unify baseline (pre-index engine, kept measurable)
# ----------------------------------------------------------------------


def _evaluate_rule(
    rule: Rule,
    relations: Database,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head tuples derivable from *rule*, by scanning full relations.

    The pre-index inner loop: every body literal enumerates its entire
    relation and unifies row by row.  Kept as the baseline the indexed
    engine is benchmarked against (``test_bench_nl.py``).
    """
    body = _reordered_body(rule)
    positives = [l for l in body if not l.negated and not l.is_builtin]
    results: Set[Tuple_] = set()

    delta_positions: List[Optional[int]]
    if delta_predicate is None:
        delta_positions = [None]
    else:
        delta_positions = [
            i for i, l in enumerate(positives) if l.predicate == delta_predicate
        ]
        if not delta_positions:
            return results

    def source(index: int, delta_at: Optional[int]) -> Iterable[Tuple_]:
        literal = positives[index]
        if delta_at is not None and index == delta_at:
            return delta or ()
        return relations.get(literal.predicate, ())

    def check_tail(bindings: Dict[Variable, Hashable]) -> bool:
        for literal in body[len(positives):]:
            values = _resolve_args(literal, bindings)
            if literal.is_builtin:
                if literal.predicate == "neq":
                    if values[0] == values[1]:
                        return False
                else:
                    raise ValueError("unknown builtin {}".format(literal.predicate))
            else:
                present = values in relations.get(literal.predicate, ())
                if literal.negated and present:
                    return False
                if not literal.negated and not present:
                    return False
        return True

    def join(index: int, bindings: Dict[Variable, Hashable], delta_at) -> None:
        if index == len(positives):
            if check_tail(bindings):
                results.add(_resolve_args(rule.head, bindings))
            return
        for row in source(index, delta_at):
            new = _match(positives[index], row, bindings)
            if new is None:
                continue
            bindings.update(new)
            join(index + 1, bindings, delta_at)
            for key in new:
                del bindings[key]

    for delta_at in delta_positions:
        join(0, {}, delta_at)
    return results


def evaluate_program_naive(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """The historical scan-and-unify evaluation (benchmark baseline)."""
    relations: Database = {
        predicate: {tuple(row) for row in rows} for predicate, rows in edb.items()
    }
    for predicate in program.idb_predicates():
        relations.setdefault(predicate, set())
    for predicate in program.edb_predicates():
        relations.setdefault(predicate, set())

    for stratum in stratify(program):
        rules = [r for r in program.rules if r.head.predicate in stratum]
        # Round 0: full evaluation seeds the deltas.
        delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for rule in rules:
            derived = _evaluate_rule(rule, relations)
            fresh = derived - relations[rule.head.predicate]
            relations[rule.head.predicate] |= fresh
            delta[rule.head.predicate] |= fresh
        # Semi-naive iteration.
        while any(delta.values()):
            next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
            for rule in rules:
                for predicate, changed in delta.items():
                    if not changed:
                        continue
                    derived = _evaluate_rule(rule, relations, predicate, changed)
                    fresh = derived - relations[rule.head.predicate]
                    relations[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] |= fresh
            delta = next_delta
    return relations
