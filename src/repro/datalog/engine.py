"""Semi-naive bottom-up evaluation with stratified negation.

The engine evaluates strata in order; within a stratum, recursive rules
are iterated semi-naively (each round joins one recursive body literal
against the delta of the previous round).  Negated literals look up fully
computed relations (stratification guarantees they are), and the ``neq``
builtin is checked once its arguments are bound.

Joins are *hash-indexed*: for each body literal the evaluator derives the
bound-position signature -- the argument positions holding constants or
variables bound by earlier literals -- and probes a per-relation hash
index keyed on those positions instead of scanning the whole relation.
Indexes are built lazily on first probe and maintained incrementally as
tuples are derived, so each stratum pays for exactly the access paths its
rules use.  The historical scan-and-unify evaluator is preserved as
:func:`evaluate_program_naive` (the benchmark baseline).

:class:`DatalogState` keeps a program's materialization alive across
calls and exposes ``resume(delta_edb)``: the semi-naive loop re-runs
seeded with the delta tuples only, so strata untouched by the delta are
skipped entirely.  Strata whose *negated* inputs changed (or that sit
downstream of a retraction) are soundly recomputed from scratch.
:class:`CompactDatalogState` is the same contract on the compact plane
-- retained int-row IDB relations, maintained join indexes, delta
frontiers -- and is the production resume path; the object-level state
stays as its differential baseline.

Three engines share the semi-naive skeleton, fastest first:

* the **compact engine** (:class:`CompactProgram`,
  :func:`evaluate_program_compact`) -- constants interned to dense ints
  (:mod:`repro.db.interner`), rules compiled once into register
  programs (variables become list slots, probe keys become precomputed
  extractor tuples), rows are int tuples.  No per-row binding dict is
  allocated and no :class:`~repro.queries.atoms.Variable` is hashed on
  the hot path.  This is what the NL solver runs.
* the **object-level indexed engine** (:func:`evaluate_program`,
  :class:`DatalogState`) -- hash-indexed joins over object tuples with
  generic unification; retained as the differential baseline for the
  compact engine, for cold evaluation and resume alike.
* the **scan-and-unify baseline** (:func:`evaluate_program_naive`) --
  the historical pre-index inner loop, kept measurable.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.datalog.stratify import stratify
from repro.datalog.syntax import Literal, Program, Rule
from repro.db.interner import Interner, global_interner
from repro.queries.atoms import Variable, is_variable

Tuple_ = Tuple[Hashable, ...]
Database = Dict[str, Set[Tuple_]]

_EMPTY: Tuple[Tuple_, ...] = ()


def _match(
    literal: Literal, row: Tuple_, bindings: Dict[Variable, Hashable]
) -> Optional[Dict[Variable, Hashable]]:
    """Unify *literal*'s args with *row* under *bindings*; new bindings or None."""
    if len(literal.args) != len(row):
        return None
    new: Dict[Variable, Hashable] = {}
    for arg, value in zip(literal.args, row):
        if is_variable(arg):
            bound = bindings.get(arg, new.get(arg))
            if bound is None:
                new[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return new


def _resolve_args(
    literal: Literal, bindings: Dict[Variable, Hashable]
) -> Tuple_:
    values = []
    for arg in literal.args:
        if is_variable(arg):
            values.append(bindings[arg])
        else:
            values.append(arg)
    return tuple(values)


def _reordered_body(rule: Rule) -> List[Literal]:
    """Positive non-builtin literals first (join), then builtins/negation."""
    positives = [l for l in rule.body if not l.negated and not l.is_builtin]
    checks = [l for l in rule.body if l.negated or l.is_builtin]
    return positives + checks


# ----------------------------------------------------------------------
# Indexed relation store
# ----------------------------------------------------------------------


class RelationStore:
    """Relations plus lazily built, incrementally maintained join indexes.

    An index is keyed by ``(predicate, signature)`` where *signature* is
    the tuple of bound argument positions; it maps the projection of a row
    onto those positions to the rows sharing it.  ``add`` keeps every live
    index of the predicate current, so an index is built at most once per
    evaluation however many semi-naive rounds run.
    """

    __slots__ = ("relations", "_indexes")

    def __init__(self, relations: Optional[Database] = None) -> None:
        self.relations: Database = relations if relations is not None else {}
        self._indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple_, List[Tuple_]]
        ] = {}

    def rows(self, predicate: str) -> Iterable[Tuple_]:
        return self.relations.get(predicate, _EMPTY)

    def contains(self, predicate: str, row: Tuple_) -> bool:
        return row in self.relations.get(predicate, _EMPTY)

    def add(self, predicate: str, fresh: Iterable[Tuple_]) -> None:
        relation = self.relations.setdefault(predicate, set())
        added = [row for row in fresh if row not in relation]
        relation.update(added)
        if not added:
            return
        for (pred, signature), index in self._indexes.items():
            if pred != predicate:
                continue
            for row in added:
                key = tuple(row[p] for p in signature)
                index.setdefault(key, []).append(row)

    def clear_predicate(self, predicate: str) -> None:
        self.relations[predicate] = set()
        for key in [k for k in self._indexes if k[0] == predicate]:
            del self._indexes[key]

    def lookup(
        self, predicate: str, signature: Tuple[int, ...], key: Tuple_
    ) -> List[Tuple_]:
        index = self._indexes.get((predicate, signature))
        if index is None:
            index = {}
            for row in self.relations.get(predicate, _EMPTY):
                index.setdefault(
                    tuple(row[p] for p in signature), []
                ).append(row)
            self._indexes[(predicate, signature)] = index
        return index.get(key, [])


class _RulePlan:
    """A rule with its join order and per-literal bound-position signatures.

    The signature of the literal at join depth *i* is the set of argument
    positions carrying a constant or a variable bound by literals
    ``0..i-1``; those positions key the hash probe.  Positions left out
    (first occurrences and in-literal repeats) are validated by
    :func:`_match` on the narrowed candidate list.
    """

    __slots__ = ("rule", "positives", "checks", "signatures")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        body = _reordered_body(rule)
        self.positives = [
            l for l in body if not l.negated and not l.is_builtin
        ]
        self.checks = body[len(self.positives):]
        bound: Set[Variable] = set()
        self.signatures: List[Tuple[int, ...]] = []
        for literal in self.positives:
            signature = tuple(
                pos
                for pos, arg in enumerate(literal.args)
                if not is_variable(arg) or arg in bound
            )
            self.signatures.append(signature)
            bound |= literal.variables()

    @property
    def head_predicate(self) -> str:
        return self.rule.head.predicate


def _evaluate_rule_indexed(
    plan: _RulePlan,
    store: RelationStore,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head tuples derivable from *plan*'s rule, via indexed joins.

    If *delta_predicate* is given, at least one occurrence of that
    predicate in the body is bound to *delta* instead of the full relation
    (semi-naive evaluation); we take each occurrence in turn.
    """
    positives = plan.positives
    results: Set[Tuple_] = set()

    delta_positions: List[Optional[int]]
    if delta_predicate is None:
        delta_positions = [None]
    else:
        delta_positions = [
            i for i, l in enumerate(positives) if l.predicate == delta_predicate
        ]
        if not delta_positions:
            return results

    rule = plan.rule

    def check_tail(bindings: Dict[Variable, Hashable]) -> bool:
        for literal in plan.checks:
            values = _resolve_args(literal, bindings)
            if literal.is_builtin:
                if literal.predicate == "neq":
                    if values[0] == values[1]:
                        return False
                else:
                    raise ValueError(
                        "unknown builtin {}".format(literal.predicate)
                    )
            else:
                present = store.contains(literal.predicate, values)
                if literal.negated and present:
                    return False
                if not literal.negated and not present:
                    return False
        return True

    def candidates(index: int, bindings, delta_at) -> Iterable[Tuple_]:
        literal = positives[index]
        if delta_at is not None and index == delta_at:
            return delta or _EMPTY
        signature = plan.signatures[index]
        if not signature:
            return store.rows(literal.predicate)
        key = tuple(
            bindings[arg] if is_variable(arg) else arg
            for arg in (literal.args[p] for p in signature)
        )
        return store.lookup(literal.predicate, signature, key)

    def join(index: int, bindings: Dict[Variable, Hashable], delta_at) -> None:
        if index == len(positives):
            if check_tail(bindings):
                results.add(_resolve_args(rule.head, bindings))
            return
        for row in candidates(index, bindings, delta_at):
            new = _match(positives[index], row, bindings)
            if new is None:
                continue
            bindings.update(new)
            join(index + 1, bindings, delta_at)
            for key in new:
                del bindings[key]

    for delta_at in delta_positions:
        join(0, {}, delta_at)
    return results


def _run_stratum(
    plans: List[_RulePlan],
    store: RelationStore,
    stratum: Set[str],
    seed_delta: Optional[Dict[str, Set[Tuple_]]] = None,
) -> Dict[str, Set[Tuple_]]:
    """Run one stratum to fixpoint; returns the tuples it derived.

    Without *seed_delta* this is the usual round-0-plus-semi-naive loop.
    With it (the resume path), round 0 is replaced by joining each rule
    against the seed deltas -- every new derivation must use at least one
    changed tuple, so strata are re-entered in O(affected) work.
    """
    fresh_total: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
    delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}

    if seed_delta is None:
        for plan in plans:
            derived = _evaluate_rule_indexed(plan, store)
            fresh = derived - store.relations.get(plan.head_predicate, set())
            store.add(plan.head_predicate, fresh)
            delta[plan.head_predicate] |= fresh
    else:
        for plan in plans:
            body_predicates = {l.predicate for l in plan.positives}
            for predicate in body_predicates:
                changed = seed_delta.get(predicate)
                if not changed:
                    continue
                derived = _evaluate_rule_indexed(
                    plan, store, predicate, changed
                )
                fresh = derived - store.relations.get(
                    plan.head_predicate, set()
                )
                store.add(plan.head_predicate, fresh)
                delta[plan.head_predicate] |= fresh
    for predicate, rows in delta.items():
        fresh_total[predicate] |= rows

    while any(delta.values()):
        next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for plan in plans:
            for predicate, changed in delta.items():
                if not changed:
                    continue
                derived = _evaluate_rule_indexed(plan, store, predicate, changed)
                fresh = derived - store.relations[plan.head_predicate]
                store.add(plan.head_predicate, fresh)
                next_delta[plan.head_predicate] |= fresh
        delta = next_delta
        for predicate, rows in delta.items():
            fresh_total[predicate] |= rows
    return fresh_total


class DatalogState:
    """A program's materialization, kept alive for incremental re-solving.

    ``DatalogState.evaluate(program, edb)`` runs the full bottom-up
    evaluation and records per-stratum structure; ``resume(delta_edb)``
    then folds a batch of *inserted* EDB tuples into the materialization:

    * strata none of whose body predicates changed are skipped;
    * strata touched only through *positive* literals re-run semi-naive
      seeded with the changed tuples (monotone, hence sound and complete);
    * strata reading a changed predicate through *negation* -- and every
      stratum downstream of a retraction -- are recomputed from scratch
      (insertion under negation is non-monotone, so over-deletion happens
      wholesale at stratum granularity).

    The net effect: EDB deltas that do not disturb the negated base
    predicates (for the Claim 5 CQA programs: inserts into existing
    blocks, which leave every ``key_R`` unchanged) flow through the
    linear recursion in O(affected) work.
    """

    __slots__ = ("program", "store", "strata", "_plans_by_stratum")

    def __init__(
        self,
        program: Program,
        store: RelationStore,
        strata: List[Set[str]],
    ) -> None:
        self.program = program
        self.store = store
        self.strata = strata
        self._plans_by_stratum: List[List[_RulePlan]] = [
            [
                _RulePlan(rule)
                for rule in program.rules
                if rule.head.predicate in stratum
            ]
            for stratum in strata
        ]

    @property
    def relations(self) -> Database:
        return self.store.relations

    @classmethod
    def evaluate(
        cls, program: Program, edb: Dict[str, Iterable[Tuple_]]
    ) -> "DatalogState":
        """Full bottom-up evaluation; returns the resumable state."""
        relations: Database = {
            predicate: {tuple(row) for row in rows}
            for predicate, rows in edb.items()
        }
        for predicate in program.idb_predicates():
            relations.setdefault(predicate, set())
        for predicate in program.edb_predicates():
            relations.setdefault(predicate, set())
        state = cls(program, RelationStore(relations), stratify(program))
        for plans, stratum in zip(state._plans_by_stratum, state.strata):
            _run_stratum(plans, state.store, stratum)
        return state

    def resume(self, delta_edb: Dict[str, Iterable[Tuple_]]) -> Database:
        """Fold inserted EDB tuples into the materialization.

        *delta_edb* maps EDB predicate names to newly inserted tuples
        (tuples already present are ignored).  Returns the updated full
        materialization; the state stays resumable for further deltas.
        EDB *deletions* are outside this entry point's contract -- delete
        support lives a level up (the fixpoint solver's over-deletion),
        and callers with removals re-evaluate from scratch.
        """
        changed: Dict[str, Set[Tuple_]] = {}
        for predicate, rows in delta_edb.items():
            relation = self.store.relations.setdefault(predicate, set())
            fresh = {tuple(row) for row in rows} - relation
            if fresh:
                self.store.add(predicate, fresh)
                changed[predicate] = fresh

        recompute_downstream = False
        for plans, stratum in zip(self._plans_by_stratum, self.strata):
            touches_change = any(
                changed.get(literal.predicate)
                for plan in plans
                for literal in plan.rule.body
            )
            if not touches_change and not recompute_downstream:
                continue
            negated_hit = any(
                literal.negated and changed.get(literal.predicate)
                for plan in plans
                for literal in plan.rule.body
            )
            if recompute_downstream or negated_hit:
                old = {
                    p: set(self.store.relations.get(p, ())) for p in stratum
                }
                for predicate in stratum:
                    self.store.clear_predicate(predicate)
                _run_stratum(plans, self.store, stratum)
                for predicate in stratum:
                    new = self.store.relations[predicate]
                    fresh = new - old[predicate]
                    retracted = old[predicate] - new
                    if fresh:
                        changed.setdefault(predicate, set()).update(fresh)
                    if retracted:
                        # A shrunken relation invalidates everything that
                        # consumed it positively: recompute what follows.
                        recompute_downstream = True
                        changed.setdefault(predicate, set())
            else:
                derived = _run_stratum(
                    plans, self.store, stratum, seed_delta=changed
                )
                for predicate, rows in derived.items():
                    if rows:
                        changed.setdefault(predicate, set()).update(rows)
        return self.store.relations


def evaluate_program(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """Evaluate *program* bottom-up on the extensional database *edb*.

    Returns the full materialization: every EDB and IDB predicate mapped
    to its set of tuples.  Joins run through the lazily built hash
    indexes; use :class:`DatalogState` to keep the result resumable under
    EDB insertions.
    """
    return DatalogState.evaluate(program, edb).relations


# ----------------------------------------------------------------------
# The compact engine: interned constants, register-compiled rules
# ----------------------------------------------------------------------

_EMPTY_SET: frozenset = frozenset()

# Row-op kinds (third field of an op triple (pos, slot_or_const, kind)):
_OP_SET = 0    # regs[slot] = row[pos]          (first variable occurrence)
_OP_CHECK = 1  # row[pos] == regs[slot] or cut  (bound / repeated variable)
_OP_CONST = 2  # row[pos] == const or cut       (constant; delta path only)


class _LitAccess:
    """One positive body literal compiled to its access path.

    ``sig`` / ``key_parts`` describe the index probe (positions holding
    constants or variables bound by earlier literals; each key part is
    ``(is_register, slot_or_interned_const)``); ``ops`` validate and
    bind the remaining positions of an indexed candidate row; and
    ``delta_ops`` re-validate *every* position (used when this literal
    is bound to the semi-naive delta, which bypasses the index).
    """

    __slots__ = (
        "pred",
        "arity",
        "sig",
        "key_parts",
        "ops",
        "delta_ops",
        "all_bound",
        "single",
    )

    def __init__(self, pred, arity, sig, key_parts, ops, delta_ops):
        self.pred = pred
        self.arity = arity
        self.sig = sig
        self.key_parts = key_parts
        self.ops = ops
        self.delta_ops = delta_ops
        self.all_bound = len(sig) == arity
        self.single = len(sig) == 1


class _CheckAccess:
    """A tail check (negated / builtin / fully-bound positive literal)."""

    __slots__ = ("pred", "parts", "negated", "is_neq")

    def __init__(self, pred, parts, negated, is_neq):
        self.pred = pred
        self.parts = parts
        self.negated = negated
        self.is_neq = is_neq


class _CompactRule:
    """A rule compiled to a register program over interned constants.

    Variables are numbered into register slots once at compile time;
    evaluating the rule allocates a single ``regs`` list and never
    touches a binding dict or hashes a :class:`Variable`.  Backtracking
    needs no undo: a register is written only by the first occurrence
    of its variable, so deeper join levels never clobber shallower
    ones, and re-entry overwrites cleanly.
    """

    __slots__ = (
        "head_pred",
        "head_out",
        "n_regs",
        "lits",
        "checks",
        "body_preds",
        "neg_preds",
    )

    def __init__(self, rule: Rule, intern_const) -> None:
        body = _reordered_body(rule)
        positives = [l for l in body if not l.negated and not l.is_builtin]
        # Predicate sets the resume path consults: which strata a changed
        # predicate touches, and whether it is read through negation.
        self.body_preds = frozenset(
            l.predicate for l in body if not l.is_builtin
        )
        self.neg_preds = frozenset(
            l.predicate for l in body if l.negated
        )
        registers: Dict[Variable, int] = {}

        self.lits: List[_LitAccess] = []
        bound: Set[Variable] = set()
        for literal in positives:
            sig: List[int] = []
            key_parts: List[Tuple[bool, int]] = []
            ops: List[Tuple[int, int, int]] = []
            delta_ops: List[Tuple[int, int, int]] = []
            seen_here: Dict[Variable, int] = {}
            for pos, arg in enumerate(literal.args):
                if not is_variable(arg):
                    cid = intern_const(arg)
                    sig.append(pos)
                    key_parts.append((False, cid))
                    delta_ops.append((pos, cid, _OP_CONST))
                elif arg in bound:
                    slot = registers[arg]
                    sig.append(pos)
                    key_parts.append((True, slot))
                    delta_ops.append((pos, slot, _OP_CHECK))
                elif arg in seen_here:
                    slot = seen_here[arg]
                    ops.append((pos, slot, _OP_CHECK))
                    delta_ops.append((pos, slot, _OP_CHECK))
                else:
                    slot = registers.setdefault(arg, len(registers))
                    seen_here[arg] = slot
                    ops.append((pos, slot, _OP_SET))
                    delta_ops.append((pos, slot, _OP_SET))
            bound |= literal.variables()
            self.lits.append(
                _LitAccess(
                    literal.predicate,
                    len(literal.args),
                    tuple(sig),
                    tuple(key_parts),
                    tuple(ops),
                    tuple(delta_ops),
                )
            )

        self.checks: List[_CheckAccess] = []
        for literal in body[len(positives):]:
            parts = tuple(
                (True, registers[arg]) if is_variable(arg)
                else (False, intern_const(arg))
                for arg in literal.args
            )
            is_neq = literal.is_builtin
            if is_neq and literal.predicate != "neq":
                raise ValueError(
                    "unknown builtin {}".format(literal.predicate)
                )
            self.checks.append(
                _CheckAccess(literal.predicate, parts, literal.negated, is_neq)
            )

        self.head_pred = rule.head.predicate
        self.head_out = tuple(
            (True, registers[arg]) if is_variable(arg)
            else (False, intern_const(arg))
            for arg in rule.head.args
        )
        self.n_regs = len(registers)


class _CompactStore:
    """Int-tuple relations plus lazily built, maintained join indexes.

    The compact twin of :class:`RelationStore`: rows are tuples of
    interned constant ids, and single-position signatures are keyed by
    the bare int instead of a 1-tuple (the dominant probe shape of the
    Claim 5 chain rules).
    """

    __slots__ = ("relations", "_indexes")

    def __init__(self, relations: Database) -> None:
        self.relations = relations
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Dict] = {}

    def add(self, predicate: str, fresh: Iterable[Tuple_]) -> None:
        relation = self.relations.setdefault(predicate, set())
        added = [row for row in fresh if row not in relation]
        relation.update(added)
        if not added:
            return
        for (pred, signature), index in self._indexes.items():
            if pred != predicate:
                continue
            if len(signature) == 1:
                p = signature[0]
                for row in added:
                    index.setdefault(row[p], []).append(row)
            else:
                for row in added:
                    key = tuple(row[p] for p in signature)
                    index.setdefault(key, []).append(row)

    def clear_predicate(self, predicate: str) -> None:
        self.relations[predicate] = set()
        for key in [k for k in self._indexes if k[0] == predicate]:
            del self._indexes[key]

    def lookup(
        self, predicate: str, signature: Tuple[int, ...], key
    ) -> List[Tuple_]:
        index = self._indexes.get((predicate, signature))
        if index is None:
            index = {}
            rows = self.relations.get(predicate, _EMPTY_SET)
            if len(signature) == 1:
                p = signature[0]
                for row in rows:
                    index.setdefault(row[p], []).append(row)
            else:
                for row in rows:
                    index.setdefault(
                        tuple(row[p] for p in signature), []
                    ).append(row)
            self._indexes[(predicate, signature)] = index
        return index.get(key, _EMPTY)


def _eval_rule_compact(
    plan: _CompactRule,
    store: _CompactStore,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head rows derivable from *plan*, via the register program."""
    lits = plan.lits
    n_pos = len(lits)
    results: Set[Tuple_] = set()

    if delta_predicate is None:
        delta_positions: Tuple[Optional[int], ...] = (None,)
    else:
        delta_positions = tuple(
            i for i, l in enumerate(lits) if l.pred == delta_predicate
        )
        if not delta_positions:
            return results

    regs: List[Optional[int]] = [None] * plan.n_regs
    relations = store.relations
    lookup = store.lookup
    checks = plan.checks
    head_out = plan.head_out
    add_result = results.add

    def tail_ok() -> bool:
        for check in checks:
            if check.is_neq:
                (fa, va), (fb, vb) = check.parts
                if (regs[va] if fa else va) == (regs[vb] if fb else vb):
                    return False
            else:
                row = tuple(
                    regs[v] if f else v for f, v in check.parts
                )
                present = row in relations.get(check.pred, _EMPTY_SET)
                if present == check.negated:
                    return False
        return True

    def join(i: int, delta_at: Optional[int]) -> None:
        if i == n_pos:
            if tail_ok():
                add_result(
                    tuple(regs[v] if f else v for f, v in head_out)
                )
            return
        lit = lits[i]
        i1 = i + 1
        if delta_at == i:
            ops = lit.delta_ops
            for row in delta or _EMPTY:
                for pos, v, kind in ops:
                    x = row[pos]
                    if kind:
                        if x != (regs[v] if kind == _OP_CHECK else v):
                            break
                    else:
                        regs[v] = x
                else:
                    join(i1, delta_at)
            return
        sig = lit.sig
        if not sig:
            rows: Iterable[Tuple_] = relations.get(lit.pred, _EMPTY_SET)
        elif lit.all_bound:
            key = tuple(regs[v] if f else v for f, v in lit.key_parts)
            if key in relations.get(lit.pred, _EMPTY_SET):
                join(i1, delta_at)
            return
        else:
            if lit.single:
                f, v = lit.key_parts[0]
                key = regs[v] if f else v
            else:
                key = tuple(regs[v] if f else v for f, v in lit.key_parts)
            rows = lookup(lit.pred, sig, key)
        ops = lit.ops
        for row in rows:
            for pos, v, kind in ops:
                x = row[pos]
                if kind:
                    if x != regs[v]:
                        break
                else:
                    regs[v] = x
            else:
                join(i1, delta_at)

    for delta_at in delta_positions:
        join(0, delta_at)
    return results


def _run_stratum_compact(
    plans: List[_CompactRule],
    store: _CompactStore,
    stratum: Set[str],
    seed_delta: Optional[Dict[str, Set[Tuple_]]] = None,
) -> Dict[str, Set[Tuple_]]:
    """Semi-naive fixpoint of one stratum over the compact store.

    Without *seed_delta* this is the usual round-0-plus-semi-naive loop.
    With it (the :class:`CompactDatalogState` resume path), round 0 is
    replaced by joining each rule against the seed deltas only -- the
    compact twin of :func:`_run_stratum`'s re-entry.  Returns the tuples
    the stratum derived.
    """
    fresh_total: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
    delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
    if seed_delta is None:
        for plan in plans:
            derived = _eval_rule_compact(plan, store)
            fresh = derived - store.relations.get(plan.head_pred, _EMPTY_SET)
            store.add(plan.head_pred, fresh)
            delta[plan.head_pred] |= fresh
    else:
        for plan in plans:
            body_predicates = {l.pred for l in plan.lits}
            for predicate in body_predicates:
                changed = seed_delta.get(predicate)
                if not changed:
                    continue
                derived = _eval_rule_compact(plan, store, predicate, changed)
                fresh = derived - store.relations.get(
                    plan.head_pred, _EMPTY_SET
                )
                store.add(plan.head_pred, fresh)
                delta[plan.head_pred] |= fresh
    for predicate, rows in delta.items():
        fresh_total[predicate] |= rows

    while any(delta.values()):
        next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for plan in plans:
            for predicate, changed in delta.items():
                if not changed:
                    continue
                derived = _eval_rule_compact(plan, store, predicate, changed)
                fresh = derived - store.relations[plan.head_pred]
                store.add(plan.head_pred, fresh)
                next_delta[plan.head_pred] |= fresh
        delta = next_delta
        for predicate, rows in delta.items():
            fresh_total[predicate] |= rows
    return fresh_total


class CompactProgram:
    """A program compiled once for the compact engine.

    Rule compilation (register numbering, probe signatures, constant
    interning through the process-wide
    :func:`~repro.db.interner.global_interner`) happens here, so every
    :meth:`evaluate` call does instance-dependent work only.  Obtain
    instances through :func:`compact_program`, which memoizes one
    compiled form per :class:`~repro.datalog.syntax.Program`.
    """

    __slots__ = ("program", "interner", "strata", "_plans_by_stratum")

    def __init__(
        self, program: Program, interner: Optional[Interner] = None
    ) -> None:
        self.program = program
        self.interner = interner if interner is not None else global_interner()
        intern_const = self.interner.constant_id
        self.strata = stratify(program)
        self._plans_by_stratum: List[List[_CompactRule]] = [
            [
                _CompactRule(rule, intern_const)
                for rule in program.rules
                if rule.head.predicate in stratum
            ]
            for stratum in self.strata
        ]

    def evaluate(
        self, edb_int: Dict[str, Iterable[Tuple_]]
    ) -> Database:
        """Bottom-up evaluation over already-interned int rows.

        *edb_int* maps EDB predicate names to rows of interned constant
        ids (``CompactInstance`` exports / ``interner.constant_id``).
        Returns the full int-row materialization.  One-shot callers get
        the same semi-naive machinery :meth:`state` keeps resumable.
        """
        return self.state(edb_int).relations

    def state(
        self, edb_int: Dict[str, Iterable[Tuple_]]
    ) -> "CompactDatalogState":
        """Evaluate and retain the materialization for ``resume``."""
        return CompactDatalogState.evaluate(self, edb_int)


class CompactDatalogState:
    """A compact materialization kept alive for incremental re-solving.

    The fast-plane twin of :class:`DatalogState`: retained int-tuple IDB
    rows in a :class:`_CompactStore` (join indexes maintained on
    insert), per-stratum delta frontiers on ``resume``, and the same
    stratum skipping / negation recompute policy -- built once from a
    memoized :class:`CompactProgram`, so re-entry pays no compilation
    and O(affected) evaluation.  The object-level
    :meth:`DatalogState.resume` is retained as the differential
    baseline, exactly as PR 4 kept :func:`evaluate_program` for cold
    evaluation (``tests/test_incremental.py`` compares the two under
    random delta chains; ``benchmarks/test_bench_update_path.py`` gates
    the speedup).

    Rows are interned int tuples; callers holding object-level tuples
    use :meth:`resume_decoded` / :meth:`decoded_relations`, which
    convert through the program's interner at the boundary only.
    """

    __slots__ = ("compiled", "store")

    def __init__(
        self, compiled: CompactProgram, store: _CompactStore
    ) -> None:
        self.compiled = compiled
        self.store = store

    @property
    def relations(self) -> Database:
        """The int-row materialization (live, do not mutate)."""
        return self.store.relations

    @classmethod
    def evaluate(
        cls, compiled: CompactProgram, edb_int: Dict[str, Iterable[Tuple_]]
    ) -> "CompactDatalogState":
        """Full bottom-up evaluation; returns the resumable state."""
        relations: Database = {
            predicate: set(map(tuple, rows))
            for predicate, rows in edb_int.items()
        }
        for predicate in compiled.program.idb_predicates():
            relations.setdefault(predicate, set())
        for predicate in compiled.program.edb_predicates():
            relations.setdefault(predicate, set())
        state = cls(compiled, _CompactStore(relations))
        for plans, stratum in zip(
            compiled._plans_by_stratum, compiled.strata
        ):
            _run_stratum_compact(plans, state.store, stratum)
        return state

    def resume(self, delta_edb_int: Dict[str, Iterable[Tuple_]]) -> Database:
        """Fold inserted (already interned) EDB rows into the state.

        Same contract as :meth:`DatalogState.resume`: strata untouched
        by the delta are skipped, positively-touched strata re-run
        semi-naive seeded with the changed rows, and strata reading a
        changed predicate through negation -- plus everything downstream
        of a retraction -- recompute from scratch.
        """
        store = self.store
        changed: Dict[str, Set[Tuple_]] = {}
        for predicate, rows in delta_edb_int.items():
            relation = store.relations.setdefault(predicate, set())
            fresh = {tuple(row) for row in rows} - relation
            if fresh:
                store.add(predicate, fresh)
                changed[predicate] = fresh

        compiled = self.compiled
        recompute_downstream = False
        for plans, stratum in zip(
            compiled._plans_by_stratum, compiled.strata
        ):
            touches_change = any(
                changed.get(predicate)
                for plan in plans
                for predicate in plan.body_preds
            )
            if not touches_change and not recompute_downstream:
                continue
            negated_hit = any(
                changed.get(predicate)
                for plan in plans
                for predicate in plan.neg_preds
            )
            if recompute_downstream or negated_hit:
                old = {
                    p: set(store.relations.get(p, ())) for p in stratum
                }
                for predicate in stratum:
                    store.clear_predicate(predicate)
                _run_stratum_compact(plans, store, stratum)
                for predicate in stratum:
                    new = store.relations[predicate]
                    fresh = new - old[predicate]
                    retracted = old[predicate] - new
                    if fresh:
                        changed.setdefault(predicate, set()).update(fresh)
                    if retracted:
                        recompute_downstream = True
                        changed.setdefault(predicate, set())
            else:
                derived = _run_stratum_compact(
                    plans, store, stratum, seed_delta=changed
                )
                for predicate, rows in derived.items():
                    if rows:
                        changed.setdefault(predicate, set()).update(rows)
        return store.relations

    # ------------------------------------------------------------------
    # Object-level boundary (interning in, decoding out)
    # ------------------------------------------------------------------

    @classmethod
    def evaluate_decoded(
        cls, program: Program, edb: Dict[str, Iterable[Tuple_]]
    ) -> "CompactDatalogState":
        """Build a state from object-level EDB tuples."""
        compiled = compact_program(program)
        intern = compiled.interner.constant_id
        edb_int = {
            predicate: [tuple(intern(v) for v in row) for row in rows]
            for predicate, rows in edb.items()
        }
        return cls.evaluate(compiled, edb_int)

    def resume_decoded(
        self, delta_edb: Dict[str, Iterable[Tuple_]]
    ) -> Database:
        """``resume`` for object-level delta tuples; decoded result."""
        intern = self.compiled.interner.constant_id
        self.resume(
            {
                predicate: [tuple(intern(v) for v in row) for row in rows]
                for predicate, rows in delta_edb.items()
            }
        )
        return self.decoded_relations()

    def decoded_relations(self) -> Database:
        """The materialization decoded back to object-level tuples."""
        decode = self.compiled.interner.constant
        return {
            predicate: {tuple(decode(v) for v in row) for row in rows}
            for predicate, rows in self.store.relations.items()
        }


#: One compiled CompactProgram per Program object, dropped with it.
_COMPACT_PROGRAMS: "weakref.WeakKeyDictionary[Program, CompactProgram]" = (
    weakref.WeakKeyDictionary()
)


def compact_program(program: Program) -> CompactProgram:
    """The memoized compact compilation of *program*."""
    compiled = _COMPACT_PROGRAMS.get(program)
    if compiled is None:
        compiled = _COMPACT_PROGRAMS[program] = CompactProgram(program)
    return compiled


def evaluate_program_compact(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """Evaluate *program* on an object-level EDB via the compact engine.

    Constants are interned on the way in and the materialization decoded
    on the way out, so the result is directly comparable to
    :func:`evaluate_program` (the differential tests do exactly that).
    Callers holding pre-interned rows (the NL solver reading a
    :class:`~repro.db.compact.CompactInstance`) should call
    :meth:`CompactProgram.evaluate` and skip both conversions.
    """
    compiled = compact_program(program)
    intern = compiled.interner.constant_id
    decode = compiled.interner.constant
    edb_int = {
        predicate: [tuple(intern(v) for v in row) for row in rows]
        for predicate, rows in edb.items()
    }
    materialization = compiled.evaluate(edb_int)
    return {
        predicate: {tuple(decode(v) for v in row) for row in rows}
        for predicate, rows in materialization.items()
    }


# ----------------------------------------------------------------------
# The scan-and-unify baseline (pre-index engine, kept measurable)
# ----------------------------------------------------------------------


def _evaluate_rule(
    rule: Rule,
    relations: Database,
    delta_predicate: Optional[str] = None,
    delta: Optional[Set[Tuple_]] = None,
) -> Set[Tuple_]:
    """All head tuples derivable from *rule*, by scanning full relations.

    The pre-index inner loop: every body literal enumerates its entire
    relation and unifies row by row.  Kept as the baseline the indexed
    engine is benchmarked against (``test_bench_nl.py``).
    """
    body = _reordered_body(rule)
    positives = [l for l in body if not l.negated and not l.is_builtin]
    results: Set[Tuple_] = set()

    delta_positions: List[Optional[int]]
    if delta_predicate is None:
        delta_positions = [None]
    else:
        delta_positions = [
            i for i, l in enumerate(positives) if l.predicate == delta_predicate
        ]
        if not delta_positions:
            return results

    def source(index: int, delta_at: Optional[int]) -> Iterable[Tuple_]:
        literal = positives[index]
        if delta_at is not None and index == delta_at:
            return delta or ()
        return relations.get(literal.predicate, ())

    def check_tail(bindings: Dict[Variable, Hashable]) -> bool:
        for literal in body[len(positives):]:
            values = _resolve_args(literal, bindings)
            if literal.is_builtin:
                if literal.predicate == "neq":
                    if values[0] == values[1]:
                        return False
                else:
                    raise ValueError("unknown builtin {}".format(literal.predicate))
            else:
                present = values in relations.get(literal.predicate, ())
                if literal.negated and present:
                    return False
                if not literal.negated and not present:
                    return False
        return True

    def join(index: int, bindings: Dict[Variable, Hashable], delta_at) -> None:
        if index == len(positives):
            if check_tail(bindings):
                results.add(_resolve_args(rule.head, bindings))
            return
        for row in source(index, delta_at):
            new = _match(positives[index], row, bindings)
            if new is None:
                continue
            bindings.update(new)
            join(index + 1, bindings, delta_at)
            for key in new:
                del bindings[key]

    for delta_at in delta_positions:
        join(0, {}, delta_at)
    return results


def evaluate_program_naive(
    program: Program, edb: Dict[str, Iterable[Tuple_]]
) -> Database:
    """The historical scan-and-unify evaluation (benchmark baseline)."""
    relations: Database = {
        predicate: {tuple(row) for row in rows} for predicate, rows in edb.items()
    }
    for predicate in program.idb_predicates():
        relations.setdefault(predicate, set())
    for predicate in program.edb_predicates():
        relations.setdefault(predicate, set())

    for stratum in stratify(program):
        rules = [r for r in program.rules if r.head.predicate in stratum]
        # Round 0: full evaluation seeds the deltas.
        delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
        for rule in rules:
            derived = _evaluate_rule(rule, relations)
            fresh = derived - relations[rule.head.predicate]
            relations[rule.head.predicate] |= fresh
            delta[rule.head.predicate] |= fresh
        # Semi-naive iteration.
        while any(delta.values()):
            next_delta: Dict[str, Set[Tuple_]] = {p: set() for p in stratum}
            for rule in rules:
                for predicate, changed in delta.items():
                    if not changed:
                        continue
                    derived = _evaluate_rule(rule, relations, predicate, changed)
                    fresh = derived - relations[rule.head.predicate]
                    relations[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] |= fresh
            delta = next_delta
    return relations
