"""Datalog syntax: literals, rules, programs.

Terms are :class:`repro.queries.atoms.Variable` or constants.  A literal
is a possibly negated predicate atom; the distinguished predicate ``neq``
is a builtin (inequality of its two arguments) evaluated during joins --
it lets the generated CQA programs express the paper's
``consistent(X1,X2,X3,X4)`` guard (``X1 != X3 or X2 = X4``) without
materializing a quartic relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.queries.atoms import Term, Variable, is_variable

BUILTINS = frozenset({"neq"})


@dataclass(frozen=True)
class Literal:
    """A literal ``pred(args)`` or ``not pred(args)``."""

    predicate: str
    args: Tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def is_builtin(self) -> bool:
        return self.predicate in BUILTINS

    def variables(self) -> Set[Variable]:
        return {a for a in self.args if is_variable(a)}

    def substitute(self, mapping: Dict[Variable, Term]) -> "Literal":
        args = tuple(
            mapping.get(a, a) if is_variable(a) else a for a in self.args
        )
        return Literal(self.predicate, args, self.negated)

    def __str__(self) -> str:
        text = "{}({})".format(
            self.predicate, ", ".join(str(a) for a in self.args)
        )
        return "not " + text if self.negated else text


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body``.  The head must be positive."""

    head: Literal
    body: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise ValueError("rule heads must be positive")
        if self.head.is_builtin:
            raise ValueError("rule heads cannot be builtins")

    def is_safe(self) -> bool:
        """Range restriction: every head / negated / builtin variable must
        occur in a positive, non-builtin body literal."""
        bound: Set[Variable] = set()
        for literal in self.body:
            if not literal.negated and not literal.is_builtin:
                bound |= literal.variables()
        needed = set(self.head.variables())
        for literal in self.body:
            if literal.negated or literal.is_builtin:
                needed |= literal.variables()
        return needed <= bound

    def __str__(self) -> str:
        if not self.body:
            return "{}.".format(self.head)
        return "{} :- {}.".format(
            self.head, ", ".join(str(l) for l in self.body)
        )


class Program:
    """A Datalog program: a list of rules.

    Predicates that never occur in a head are extensional (EDB).
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules: List[Rule] = list(rules)
        for rule in self.rules:
            if not rule.is_safe():
                raise ValueError("unsafe rule: {}".format(rule))

    def idb_predicates(self) -> FrozenSet[str]:
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        idb = self.idb_predicates()
        result: Set[str] = set()
        for rule in self.rules:
            for literal in rule.body:
                if literal.predicate not in idb and not literal.is_builtin:
                    result.add(literal.predicate)
        return frozenset(result)

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def var(name: str) -> Variable:
    """Shorthand variable constructor for program builders."""
    return Variable(name)
