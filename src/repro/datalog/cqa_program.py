"""Generation of the Claim 5 linear-Datalog programs for C2 queries.

Lemma 14: for a path query ``q`` satisfying C2, ``CERTAINTY(q)`` is
expressible in linear Datalog with stratified negation.  The proof writes
``q = head · cycle^0 · tail`` where, per the B2a / B2b decompositions of
Lemma 3:

* B2b: ``q = s (uv)^{k-1} w v`` -- head ``s (uv)^{k-1}``, cycle ``uv``,
  tail ``wv``;
* B2a: ``q = s (u)^{j0} w (v)^k`` -- head ``s (u)^{j0}``, cycle ``u``,
  tail ``w (v)^k``;

and ``L↬(q)`` trimmed to minimal prefixes is ``head (cycle)* tail``
(Lemma 16).  The generated program mirrors the example program in the
proof of Claim 5:

* ``term_<part>(X)`` -- X is *terminal* for the part (Definition 15): an
  existential chain to a node with no continuation block, using stratified
  negation on the block-key predicates (Lemmas 12 and 17 make this
  first-order);
* ``cyclepath(X, Y)`` -- the linear recursion: a chain of cycle steps
  between tail-terminal period boundaries;
* ``p(X)`` -- the predicate P of the proof: a cycle chain of tail-terminal
  nodes ending in a cycle-terminal node or a loop;
* ``o(X)`` -- the predicate O: X is head-terminal, or a *consistent*
  head-path reaches some ``d`` with ``p(d)``.  Consistency of the head
  path ("no two distinct key-equal facts") is compiled into rule variants
  over each pair of equal relation names: keys differ (``neq``) or the
  atoms are unified.

``db`` is a "yes"-instance of CERTAINTY(q) iff some ``c ∈ adom`` has
``o(c)`` underivable (Claim 4).

Deviation from the paper, documented in DESIGN.md: the example program in
Claim 5 also requires ``wvterminal`` on the *intermediate* node of each
``uv`` step; the definition of the predicate P only constrains the period
boundaries ``d0, ..., dℓ``, and boundary-only checks are what differential
tests against brute force confirm correct, so the generator emits
boundary-only checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.query_nfa import nfa_min
from repro.classification.regex_conditions import (
    Decomposition,
    iter_b2a,
    iter_b2b,
)
from repro.datalog.syntax import Literal, Program, Rule
from repro.queries.atoms import Variable
from repro.words.word import Word, WordLike

#: Prefix for the EDB predicate holding relation ``R``.
REL_PREFIX = "rel_"
#: EDB predicate holding the active domain.
ADOM = "adom"


class UnsupportedQuery(ValueError):
    """Raised when no suffix-aligned B2a/B2b decomposition is found."""


@dataclass(frozen=True)
class CqaParts:
    """The ``head (cycle)* tail`` split of a C2 query.

    ``decomposition`` carries the B2a/B2b witness when the split came
    from one; splits found by the direct boundary sweep have ``None``.
    """

    query: Word
    head: Word
    cycle: Word
    tail: Word
    decomposition: Optional[Decomposition]

    def __str__(self) -> str:
        return "{} = {} ({})* {}".format(
            self.query, self.head or "ε", self.cycle, self.tail or "ε"
        )


@dataclass(frozen=True)
class CqaProgram:
    """A generated CQA program plus its decomposition metadata."""

    parts: CqaParts
    program: Program

    @property
    def query(self) -> Word:
        return self.parts.query


def _split_language_dfa(head: Word, cycle: Word, tail: Word) -> DFA:
    """A DFA for the regular language ``head (cycle)* tail``."""
    alphabet = set(head.alphabet()) | set(cycle.alphabet()) | set(tail.alphabet())
    states = []
    transitions = {}
    epsilon = {}

    def add_chain(word: Word, prefix: str):
        chain = ["{}{}".format(prefix, i) for i in range(len(word) + 1)]
        states.extend(chain)
        for i, symbol in enumerate(word):
            transitions.setdefault((chain[i], symbol), set()).add(chain[i + 1])
        return chain

    head_chain = add_chain(head, "h")
    cycle_chain = add_chain(cycle, "c")
    tail_chain = add_chain(tail, "t")
    boundary = head_chain[-1]
    epsilon[boundary] = {cycle_chain[0], tail_chain[0]}
    epsilon[cycle_chain[-1]] = {boundary}
    nfa = NFA(
        states=states,
        alphabet=alphabet,
        transitions=transitions,
        epsilon=epsilon,
        initial=head_chain[0],
        accepting=[tail_chain[-1]],
    )
    return DFA.from_nfa(nfa)


def _candidate_parts(q: Word, decomposition: Decomposition) -> Optional[CqaParts]:
    """Turn a suffix-aligned witness into a head/cycle/tail split."""
    if decomposition.kind == "B2b":
        period = len(decomposition.u) + len(decomposition.v)
        boundary = decomposition.k * period - decomposition.offset
        cycle = decomposition.u + decomposition.v
    else:
        boundary = decomposition.j * len(decomposition.u) - decomposition.offset
        cycle = decomposition.u
    if boundary < 0 or not cycle:
        return None
    return CqaParts(
        query=q,
        head=q[:boundary],
        cycle=cycle,
        tail=q[boundary:],
        decomposition=decomposition,
    )


def split_query(q: WordLike) -> Optional[CqaParts]:
    """Find a *language-verified* ``head (cycle)* tail`` split of *q*.

    Candidates come from two sources, and a split is accepted only if the
    language ``head (cycle)* tail`` is *equal* to the language of
    ``NFAmin(q)`` (Definition 13), checked by DFA equivalence:

    1. suffix-aligned B2b / B2a witnesses, giving the Lemma 16 shapes
       ``s (uv)^{k-1} (uv)* wv`` and ``s (u)^{j0} (u)* w (v)^k``;
    2. a direct sweep over every insertion point ``b`` and every
       contiguous factor of ``q`` adjacent to ``b`` as the cycle --
       covering the "q is a factor, not a suffix, of the pumped word"
       case that Lemma 14's proof leaves to "extra notation".

    The verification step guards against spurious witnesses whose pumped
    language differs from ``L↬(q)``; queries violating C2 are rejected
    up front, because the program's semantics rest on the Lemma 7
    reification (needs C3) and the Claim 4 characterization (needs C2) --
    a language-correct split alone is not sufficient (ARRX has the
    single-pump language ``ARR(R)*X`` yet is coNP-complete).

    Returns ``None`` when *q* violates C2 or no verified split exists.
    """
    q = Word.coerce(q)
    from repro.classification.conditions import satisfies_c2

    if not satisfies_c2(q):
        return None
    reference = nfa_min(q)
    witness_candidates = itertools.chain(
        iter_b2b(q, require_suffix=True), iter_b2a(q, require_suffix=True)
    )
    for decomposition in witness_candidates:
        parts = _candidate_parts(q, decomposition)
        if parts is None:
            continue
        language = _split_language_dfa(parts.head, parts.cycle, parts.tail)
        if language.equivalent(reference):
            return parts
    # Direct sweep: q = head·tail with the cycle pumped at the boundary.
    # The cycle must read back (or ahead) a contiguous stretch of q, so it
    # suffices to try q[b-l:b] and q[b:b+l] for each boundary b.
    seen = set()
    for boundary in range(len(q), -1, -1):
        head, tail = q[:boundary], q[boundary:]
        cycles = []
        for length in range(1, boundary + 1):
            cycles.append(q[boundary - length: boundary])
        for length in range(1, len(q) - boundary + 1):
            cycles.append(q[boundary: boundary + length])
        for cycle in cycles:
            key = (boundary, cycle)
            if key in seen:
                continue
            seen.add(key)
            language = _split_language_dfa(head, cycle, tail)
            if language.equivalent(reference):
                return CqaParts(
                    query=q, head=head, cycle=cycle, tail=tail,
                    decomposition=None,
                )
    return None


def rel(name: str) -> str:
    """EDB predicate name for relation *name*."""
    return REL_PREFIX + name


def _key_predicate(relation: str) -> str:
    return "key_" + relation


def _chain(
    word: Word, start: Variable, prefix: str
) -> Tuple[List[Literal], List[Variable]]:
    """Literals ``R1(start, v1), R2(v1, v2), ...`` for *word*.

    Returns the literals and the node variables (``[start, v1, ..., vn]``).
    """
    nodes = [start]
    literals = []
    for i, relation in enumerate(word):
        nxt = Variable("{}{}".format(prefix, i + 1))
        literals.append(Literal(rel(relation), (nodes[-1], nxt)))
        nodes.append(nxt)
    return literals, nodes


def _terminal_rules(name: str, word: Word) -> List[Rule]:
    """Rules for ``term_<name>(X)``: X is terminal for *word* (Def. 15).

    The existential unfolding of the negated Lemma 12 rewriting:
    for each ``i < |word|`` there is a (not necessarily consistent) path
    ``X --word[0:i]--> Y`` such that ``Y`` has no ``word[i]`` block.
    """
    rules: List[Rule] = []
    head_var = Variable("T0")
    for i in range(len(word)):
        literals, nodes = _chain(word[:i], head_var, "T")
        blocker = Literal(_key_predicate(word[i]), (nodes[-1],), negated=True)
        body = list(literals) + [blocker]
        if not literals:
            body.insert(0, Literal(ADOM, (head_var,)))
        rules.append(Rule(Literal("term_" + name, (head_var,)), tuple(body)))
    return rules


def _key_rules(relations) -> List[Rule]:
    rules = []
    for relation in sorted(relations):
        x, y = Variable("K0"), Variable("K1")
        rules.append(
            Rule(
                Literal(_key_predicate(relation), (x,)),
                (Literal(rel(relation), (x, y)),),
            )
        )
    return rules


def _consistency_variants(
    literals: List[Literal], nodes: List[Variable], word: Word
) -> List[Tuple[List[Literal], Dict[Variable, Variable]]]:
    """Rule-body variants enforcing consistency of the chain (Def. 15).

    For every pair of positions with the same relation name, either the
    keys differ (a ``neq`` guard) or both atoms are unified.  Each subset
    of "unified" pairs yields one variant: the substituted literals plus
    the extra guards.
    """
    pairs = [
        (i, j)
        for i in range(len(word))
        for j in range(i + 1, len(word))
        if word[i] == word[j]
    ]
    if len(pairs) > 10:
        raise UnsupportedQuery(
            "head consistency would need {} pair constraints".format(len(pairs))
        )
    variants = []
    for choice in itertools.product((False, True), repeat=len(pairs)):
        # Union-find over node variables for the unified pairs.
        parent: Dict[Variable, Variable] = {}

        def find(v: Variable) -> Variable:
            while parent.get(v, v) != v:
                v = parent[v]
            return v

        def union(a: Variable, b: Variable) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for (i, j), unify in zip(pairs, choice):
            if unify:
                union(nodes[i], nodes[j])
                union(nodes[i + 1], nodes[j + 1])
        mapping = {v: find(v) for v in nodes}
        renamed = [l.substitute(mapping) for l in literals]
        guards = []
        consistent = True
        for (i, j), unify in zip(pairs, choice):
            if not unify:
                a, b = mapping[nodes[i]], mapping[nodes[j]]
                if a == b:
                    consistent = False
                    break
                guards.append(Literal("neq", (a, b)))
        if not consistent:
            continue
        variants.append((renamed + guards, mapping))
    return variants


def build_cqa_program(q: WordLike) -> CqaProgram:
    """Build the Claim 5 linear-Datalog program for a C2 path query.

    Raises :class:`UnsupportedQuery` if no suffix-aligned decomposition is
    found (all C2 queries exercised by the test-suite admit one).
    """
    q = Word.coerce(q)
    parts = split_query(q)
    if parts is None:
        raise UnsupportedQuery(
            "no suffix-aligned B2a/B2b decomposition for {}".format(q)
        )
    rules: List[Rule] = []
    rules.extend(_key_rules(q.alphabet()))
    rules.extend(_terminal_rules("head", parts.head))
    rules.extend(_terminal_rules("cycle", parts.cycle))
    rules.extend(_terminal_rules("tail", parts.tail))

    x = Variable("X")
    y = Variable("Y")
    z = Variable("Z")

    # cyclepath: chains of cycle steps between tail-terminal boundaries.
    step_literals, step_nodes = _chain(parts.cycle, x, "C")
    end = step_nodes[-1]
    rules.append(
        Rule(
            Literal("cyclepath", (x, end)),
            tuple(
                step_literals
                + [Literal("term_tail", (x,)), Literal("term_tail", (end,))]
            ),
        )
    )
    step_literals2, step_nodes2 = _chain(parts.cycle, y, "D")
    end2 = step_nodes2[-1]
    rules.append(
        Rule(
            Literal("cyclepath", (x, end2)),
            tuple(
                [Literal("cyclepath", (x, y))]
                + step_literals2
                + [Literal("term_tail", (end2,))]
            ),
        )
    )

    # p: the predicate P of Claim 4.
    rules.append(
        Rule(
            Literal("p", (x,)),
            (Literal("term_cycle", (x,)), Literal("term_tail", (x,))),
        )
    )
    rules.append(
        Rule(
            Literal("p", (x,)),
            (Literal("cyclepath", (x, y)), Literal("term_cycle", (y,))),
        )
    )
    rules.append(
        Rule(
            Literal("p", (x,)),
            (Literal("cyclepath", (x, y)), Literal("cyclepath", (y, y))),
        )
    )

    # o: head-terminal, or a consistent head path into p.
    if parts.head:
        rules.append(Rule(Literal("o", (x,)), (Literal("term_head", (x,)),)))
        head_var = Variable("H0")
        head_literals, head_nodes = _chain(parts.head, head_var, "H")
        for body, mapping in _consistency_variants(
            head_literals, head_nodes, parts.head
        ):
            last = mapping[head_nodes[-1]]
            rules.append(
                Rule(
                    Literal("o", (mapping[head_var],)),
                    tuple(body + [Literal("p", (last,))]),
                )
            )
    else:
        rules.append(Rule(Literal("o", (x,)), (Literal("p", (x,)),)))

    return CqaProgram(parts=parts, program=Program(rules))


def instance_to_edb(db) -> Dict[str, List[Tuple]]:
    """Encode a :class:`~repro.db.instance.DatabaseInstance` as EDB facts."""
    edb: Dict[str, List[Tuple]] = {ADOM: [(c,) for c in db.adom()]}
    for fact in db.facts:
        edb.setdefault(rel(fact.relation), []).append((fact.key, fact.value))
    return edb


def instance_edb_compact(view) -> Dict[str, List[Tuple]]:
    """The interned EDB of a :class:`~repro.db.compact.CompactInstance`.

    Rows carry the process-wide interner's constant ids (the id space
    :class:`~repro.datalog.engine.CompactProgram` joins over), read
    straight off the compact view's edge arrays -- no Fact object or
    object-level constant is touched.  Cached on the (immutable) view,
    so repeated NL solves against a warm instance skip the export.
    """

    def build() -> Dict[str, List[Tuple]]:
        gids = view.gids
        edb: Dict[str, List[Tuple]] = {
            ADOM: [(gids[lid],) for lid in view.alive_lids()]
        }
        for relation in view.relations:
            rows = [
                (gids[key], gids[value])
                for key, value in view.edges(relation)
            ]
            if rows:
                edb[rel(relation)] = rows
        return edb

    return view.cached_plan(("cqa-edb",), build)
