"""Evaluation of first-order formulas over database instances.

Quantifiers range over the active domain of the instance, as is standard
for the (domain-independent) rewritings the paper constructs.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.db.instance import DatabaseInstance
from repro.fo.syntax import (
    And,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelationAtom,
)
from repro.queries.atoms import Term, Variable, is_variable


def _resolve(term: Term, env: Dict[Variable, Hashable]) -> Hashable:
    if is_variable(term):
        try:
            return env[term]
        except KeyError:
            raise ValueError("unbound variable {} in formula".format(term))
    return term


def evaluate(
    formula: Formula,
    db: DatabaseInstance,
    env: Dict[Variable, Hashable] = None,
) -> bool:
    """Evaluate *formula* on *db* under the environment *env*.

    >>> from repro.fo.syntax import RelationAtom, Exists
    >>> from repro.queries.atoms import Variable
    >>> db = DatabaseInstance.from_triples([("R", 1, 2)])
    >>> x = Variable("x")
    >>> evaluate(Exists(x, RelationAtom("R", 1, x)), db)
    True
    """
    env = dict(env or {})
    adom = db.sorted_adom()

    def rec(f: Formula, bindings: Dict[Variable, Hashable]) -> bool:
        if isinstance(f, RelationAtom):
            key = _resolve(f.key, bindings)
            value = _resolve(f.value, bindings)
            return any(fact.value == value for fact in db.out_facts(key, f.relation))
        if isinstance(f, And):
            return all(rec(p, bindings) for p in f.parts)
        if isinstance(f, Or):
            return any(rec(p, bindings) for p in f.parts)
        if isinstance(f, Not):
            return not rec(f.body, bindings)
        if isinstance(f, Implies):
            return (not rec(f.antecedent, bindings)) or rec(f.consequent, bindings)
        if isinstance(f, Exists):
            for constant in adom:
                bindings[f.variable] = constant
                if rec(f.body, bindings):
                    del bindings[f.variable]
                    return True
            bindings.pop(f.variable, None)
            return False
        if isinstance(f, Forall):
            for constant in adom:
                bindings[f.variable] = constant
                if not rec(f.body, bindings):
                    del bindings[f.variable]
                    return False
            bindings.pop(f.variable, None)
            return True
        raise TypeError("unknown formula node {!r}".format(f))

    return rec(formula, env)


def formula_size(formula: Formula) -> int:
    """Number of AST nodes (a proxy for rewriting size in benchmarks)."""
    if isinstance(formula, RelationAtom):
        return 1
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(p) for p in formula.parts)
    if isinstance(formula, Not):
        return 1 + formula_size(formula.body)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    raise TypeError("unknown formula node {!r}".format(formula))


def formula_depth(formula: Formula) -> int:
    """Quantifier-and-connective nesting depth."""
    if isinstance(formula, RelationAtom):
        return 1
    if isinstance(formula, (And, Or)):
        if not formula.parts:
            return 1
        return 1 + max(formula_depth(p) for p in formula.parts)
    if isinstance(formula, Not):
        return 1 + formula_depth(formula.body)
    if isinstance(formula, Implies):
        return 1 + max(
            formula_depth(formula.antecedent), formula_depth(formula.consequent)
        )
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_depth(formula.body)
    raise TypeError("unknown formula node {!r}".format(formula))
