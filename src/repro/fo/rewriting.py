"""Consistent first-order rewritings (Lemmas 12 and 13).

Lemma 12 constructs, for every path query ``q`` and constant ``c``, a
first-order formula ``ψ(x)`` such that ``∃x (ψ(x) ∧ x = c)`` is a
consistent first-order rewriting of ``q[c]``; the construction is the
nested quantification

    ``ψ(x) = ∃y R(x, y) ∧ ∀z (R(x, z) → φ(z))``

with ``φ`` the rewriting for the tail of the query.  Lemma 13: if ``q``
satisfies C1 then ``∃x ψ(x)`` is a consistent first-order rewriting of
``CERTAINTY(q)``.

The semantic twin of ``ψ`` is :func:`repro.db.paths.rooted_certainty`
(the direct memoized recursion); the test-suite checks the two agree,
which exercises Lemma 12.
"""

from __future__ import annotations

from repro.classification.conditions import satisfies_c1
from repro.fo.syntax import (
    And,
    Exists,
    Forall,
    Formula,
    Implies,
    RelationAtom,
    TRUE,
)
from repro.queries.atoms import Variable
from repro.words.word import Word, WordLike


def rooted_rewriting(q: WordLike, free_variable: Variable = None) -> Formula:
    """The formula ``ψ(x)`` of Lemma 12 for the path query *q*.

    The returned formula has *free_variable* (default ``Variable("x0")``)
    free; evaluating it with ``x0 = c`` decides ``CERTAINTY(q[c])``.

    >>> print(rooted_rewriting("RR"))
    (∃y1R(x0, y1) ∧ ∀z1(R(x0, z1) → (∃y2R(z1, y2) ∧ ∀z2(R(z1, z2) → ⊤))))
    """
    q = Word.coerce(q)
    root = free_variable if free_variable is not None else Variable("x0")

    def build(position: int, current: Variable) -> Formula:
        if position == len(q):
            return TRUE
        relation = q[position]
        witness = Variable("y{}".format(position + 1))
        universal = Variable("z{}".format(position + 1))
        return And(
            (
                Exists(witness, RelationAtom(relation, current, witness)),
                Forall(
                    universal,
                    Implies(
                        RelationAtom(relation, current, universal),
                        build(position + 1, universal),
                    ),
                ),
            )
        )

    return build(0, root)


def c1_rewriting(q: WordLike, check: bool = True) -> Formula:
    """The consistent first-order rewriting ``∃x ψ(x)`` of Lemma 13.

    Only correct when *q* satisfies C1; by default a :class:`ValueError`
    is raised otherwise.  Passing ``check=False`` builds the sentence
    anyway -- useful for experiments demonstrating *why* the C1 condition
    is needed (e.g. on ``RRX`` the sentence is strictly stronger than
    ``CERTAINTY(RRX)``).
    """
    q = Word.coerce(q)
    if check and not satisfies_c1(q):
        raise ValueError(
            "query {} violates C1; its CERTAINTY problem is not in FO "
            "(pass check=False to build the -- incorrect -- sentence anyway)"
            .format(q)
        )
    root = Variable("x0")
    return Exists(root, rooted_rewriting(q, root))
