"""First-order logic substrate (Section 6.2).

A small FO formula AST over binary relations, an evaluator over database
instances (quantifiers range over the active domain), and the effective
construction of *consistent first-order rewritings* for rooted path queries
``q[c]`` (Lemma 12) and for path queries satisfying C1 (Lemma 13).
"""

from repro.fo.syntax import (
    And,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
    FALSE,
)
from repro.fo.evaluate import evaluate, formula_depth, formula_size
from repro.fo.rewriting import (
    rooted_rewriting,
    c1_rewriting,
)

__all__ = [
    "And",
    "Exists",
    "Forall",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "RelationAtom",
    "TRUE",
    "FALSE",
    "evaluate",
    "formula_depth",
    "formula_size",
    "rooted_rewriting",
    "c1_rewriting",
]
