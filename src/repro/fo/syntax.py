"""First-order formula AST over binary relations.

Formulas are immutable trees built from relation atoms, the Boolean
connectives, and quantifiers.  Terms are :class:`repro.queries.atoms.Variable`
or constants, as elsewhere in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.queries.atoms import Term, Variable


class Formula:
    """Base class for first-order formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class RelationAtom(Formula):
    """An atom ``R(s, t)``."""

    relation: str
    key: Term
    value: Term

    def __str__(self) -> str:
        return "{}({}, {})".format(self.relation, self.key, self.value)


@dataclass(frozen=True)
class And(Formula):
    """Finite conjunction; ``And(())`` is *true*."""

    parts: Tuple[Formula, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        if not self.parts:
            return "⊤"
        return "(" + " ∧ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Finite disjunction; ``Or(())`` is *false*."""

    parts: Tuple[Formula, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        if not self.parts:
            return "⊥"
        return "(" + " ∨ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return "¬{}".format(self.body)


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return "({} → {})".format(self.antecedent, self.consequent)


@dataclass(frozen=True)
class Exists(Formula):
    variable: Variable
    body: Formula

    def __str__(self) -> str:
        return "∃{}{}".format(self.variable, self.body)


@dataclass(frozen=True)
class Forall(Formula):
    variable: Variable
    body: Formula

    def __str__(self) -> str:
        return "∀{}{}".format(self.variable, self.body)


#: The constant *true* formula.
TRUE = And(())
#: The constant *false* formula.
FALSE = Or(())
