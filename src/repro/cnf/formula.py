"""Propositional CNF formulas over named variables.

The SAT problem ("does a CNF formula have a satisfying assignment?") is
the source problem of the Lemma 19 reduction.  Satisfiability here is
decided with the library's own DPLL solver
(:mod:`repro.solvers.sat`), after mapping named variables to integers.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: A literal: (variable name, polarity); ``("x1", False)`` is ``¬x1``.
Literal = Tuple[str, bool]


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "literals", tuple(self.literals))
        if not self.literals:
            raise ValueError("empty clauses are unsatisfiable by fiat; "
                             "construct them explicitly if needed")

    def variables(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.literals)

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        return any(
            assignment.get(name, False) == polarity
            for name, polarity in self.literals
        )

    def __str__(self) -> str:
        rendered = [
            ("" if polarity else "¬") + name for name, polarity in self.literals
        ]
        return "(" + " ∨ ".join(rendered) + ")"


class CnfFormula:
    """A conjunction of clauses."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses: List[Clause] = list(clauses)

    def variables(self) -> List[str]:
        seen = set()
        for clause in self.clauses:
            seen |= clause.variables()
        return sorted(seen)

    def satisfied_by(self, assignment: Dict[str, bool]) -> bool:
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    def to_int_clauses(self) -> Tuple[List[List[int]], Dict[str, int]]:
        """DIMACS-style integer clauses plus the variable numbering."""
        numbering = {name: i for i, name in enumerate(self.variables(), start=1)}
        clauses = [
            [numbering[name] if polarity else -numbering[name]
             for name, polarity in clause.literals]
            for clause in self.clauses
        ]
        return clauses, numbering

    def satisfying_assignment(self) -> Optional[Dict[str, bool]]:
        """A satisfying assignment via the library DPLL solver, or ``None``."""
        from repro.solvers.sat import solve_clauses

        int_clauses, numbering = self.to_int_clauses()
        model = solve_clauses(int_clauses)
        if model is None:
            return None
        return {name: model.get(index, False) for name, index in numbering.items()}

    def is_satisfiable(self) -> bool:
        return self.satisfying_assignment() is not None

    def brute_force_satisfiable(self) -> bool:
        """Truth-table satisfiability (for cross-checking the DPLL solver)."""
        names = self.variables()
        for values in itertools.product((False, True), repeat=len(names)):
            if self.satisfied_by(dict(zip(names, values))):
                return True
        return False

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return " ∧ ".join(str(clause) for clause in self.clauses)


def random_ksat(
    n_variables: int, n_clauses: int, k: int, rng: random.Random
) -> CnfFormula:
    """A random k-SAT formula over variables ``x1..xn``.

    Each clause draws *k* distinct variables and independent polarities.
    Around the satisfiability threshold (ratio ~4.27 for 3-SAT) instances
    mix "yes" and "no" answers, which is what the reduction benchmarks
    want.
    """
    if k > n_variables:
        raise ValueError("k cannot exceed the number of variables")
    names = ["x{}".format(i + 1) for i in range(n_variables)]
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(names, k)
        literals = tuple((name, rng.random() < 0.5) for name in chosen)
        clauses.append(Clause(literals))
    return CnfFormula(clauses)
