"""CNF-formula substrate for the coNP-hardness reduction (Lemma 19)."""

from repro.cnf.formula import Clause, CnfFormula, random_ksat

__all__ = ["Clause", "CnfFormula", "random_ksat"]
