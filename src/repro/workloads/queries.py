"""The catalog of path queries the paper names, with their proven classes.

These pin the classifier (Theorem 3) to the paper's own examples:

* ``RR``      -- intro: in FO (the formula φ);
* ``RRX``     -- intro / Figure 2: in NL (and not in FO);
* ``ARRX``    -- intro / Figure 3: coNP-complete;
* ``RXRX``    -- Example 3 q1: in FO;
* ``RXRY``    -- Example 3 q2: NL-complete;
* ``RXRYRY``  -- Example 3 q3: PTIME-complete;
* ``RXRXRYRY``-- Example 3 q4: coNP-complete;
* ``RXRRR``   -- Figure 4's automaton example (violates C2 via the
  consecutive triple R·X, R·ε, R·R): PTIME-complete;
* ``RRSRS``   -- the shortest Lemma 3(3a) word: PTIME-complete;
* ``RSRRR``   -- the shortest Lemma 3(3b) word: PTIME-complete;
* ``UVUVWV``  -- the Claim 5 example program's query: NL-complete;
* ``RXRYR``   -- Example 6 (the NFAmin illustration): NL-complete
  (violates C1 via the factor RXR, satisfies C2: the consecutive triple
  has ``Rw = R`` a prefix of ``Rv1 = RX``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.classification.classifier import ComplexityClass
from repro.words.word import Word

#: Query -> complexity class, exactly as proven in the paper.
PAPER_QUERY_CLASSES: Dict[str, ComplexityClass] = {
    "RR": ComplexityClass.FO,
    "RRX": ComplexityClass.NL_COMPLETE,
    "ARRX": ComplexityClass.CONP_COMPLETE,
    "RXRX": ComplexityClass.FO,
    "RXRY": ComplexityClass.NL_COMPLETE,
    "RXRYRY": ComplexityClass.PTIME_COMPLETE,
    "RXRXRYRY": ComplexityClass.CONP_COMPLETE,
    "RXRRR": ComplexityClass.PTIME_COMPLETE,
    "RRSRS": ComplexityClass.PTIME_COMPLETE,
    "RSRRR": ComplexityClass.PTIME_COMPLETE,
    "UVUVWV": ComplexityClass.NL_COMPLETE,
    "RXRYR": ComplexityClass.NL_COMPLETE,
}


def paper_queries() -> List[Word]:
    """The catalog as words, in a stable order."""
    return [Word(text) for text in PAPER_QUERY_CLASSES]


#: Scalable query families for the |q|-scaling experiments.
def fo_family(n: int) -> Word:
    """``(RX)^n`` -- satisfies C1 for every n."""
    return Word("RX") * n


def nl_family(n: int) -> Word:
    """``R^n X`` -- NL-complete for n >= 2."""
    return Word("R") * n + Word("X")


def ptime_family(n: int) -> Word:
    """``RX (RY)^n`` for n >= 2 -- violates C2, satisfies C3."""
    return Word("RX") + Word("RY") * n


def conp_family(n: int) -> Word:
    """``A R^n X`` for n >= 2 -- violates C3 (the ARRX pattern)."""
    return Word("A") + Word("R") * n + Word("X")
