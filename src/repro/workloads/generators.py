"""Seeded random generators for inconsistent database instances.

The paper's algorithms traverse edge-colored directed graphs (facts
``R(a, b)``), so the generators grow random graphs with controlled

* size (number of facts),
* alphabet (which relation names appear),
* inconsistency (fraction of blocks with more than one fact, and block
  sizes).

All randomness flows through an explicit :class:`random.Random`; the same
seed always reproduces the same instance.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.db.delta import Delta
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.words.word import Word, WordLike


def random_word(
    rng: random.Random,
    length: int,
    alphabet: Sequence[str] = ("R", "S", "X", "Y"),
) -> Word:
    """A random word (candidate path query) over *alphabet*."""
    return Word([rng.choice(list(alphabet)) for _ in range(length)])


def random_instance(
    rng: random.Random,
    n_constants: int,
    n_facts: int,
    alphabet: Sequence[str] = ("R", "X"),
    conflict_rate: float = 0.4,
    max_block_size: int = 3,
) -> DatabaseInstance:
    """A random instance with controlled inconsistency.

    Facts are drawn by picking a relation and a key; with probability
    *conflict_rate* a new fact is aimed at an *existing* block (growing a
    conflict, capped at *max_block_size*), otherwise at a fresh random
    block.  Values are uniform over the constants.
    """
    if n_constants < 1:
        raise ValueError("need at least one constant")
    constants = list(range(n_constants))
    alphabet = list(alphabet)
    blocks: dict = {}
    attempts = 0
    while sum(len(v) for v in blocks.values()) < n_facts:
        attempts += 1
        if attempts > 50 * n_facts + 100:
            break  # saturated (tiny domains cannot host n_facts facts)
        grow = blocks and rng.random() < conflict_rate
        if grow:
            block_id = rng.choice(sorted(blocks, key=str))
            if len(blocks[block_id]) >= max_block_size:
                grow = False
        if not grow:
            # Aim at a fresh block so conflict_rate=0 yields a consistent
            # instance (up to domain saturation).
            block_id = None
            for _ in range(8):
                candidate = (rng.choice(alphabet), rng.choice(constants))
                if candidate not in blocks:
                    block_id = candidate
                    break
            if block_id is None:
                continue
            blocks.setdefault(block_id, set())
        relation, key = block_id
        value = rng.choice(constants)
        blocks[block_id].add(Fact(relation, key, value))
    facts = [fact for members in blocks.values() for fact in members]
    return DatabaseInstance(facts)


def planted_instance(
    rng: random.Random,
    q: WordLike,
    n_constants: int,
    n_paths: int = 1,
    n_noise_facts: int = 0,
    conflict_rate: float = 0.5,
) -> DatabaseInstance:
    """An instance with *n_paths* planted ``q``-paths plus random noise.

    Planting guarantees the query is satisfiable in at least one repair,
    which keeps yes/no answers balanced in the certainty experiments;
    noise facts then create conflicts that may or may not break the
    planted paths.
    """
    q = Word.coerce(q)
    constants = list(range(n_constants))
    facts: List[Fact] = []
    for _ in range(n_paths):
        nodes = [rng.choice(constants) for _ in range(len(q) + 1)]
        for i, relation in enumerate(q):
            facts.append(Fact(relation, nodes[i], nodes[i + 1]))
    alphabet = sorted(q.alphabet())
    existing_keys = sorted({(f.relation, f.key) for f in facts}, key=str)
    for _ in range(n_noise_facts):
        if existing_keys and rng.random() < conflict_rate:
            relation, key = rng.choice(existing_keys)
        else:
            relation = rng.choice(alphabet)
            key = rng.choice(constants)
        facts.append(Fact(relation, key, rng.choice(constants)))
        existing_keys.append((relation, key))
    return DatabaseInstance(facts)


def hardness_gadget_instance(
    rng: random.Random,
    n_branches: int,
    n_straight: int,
    query: WordLike = "ARRX",
) -> DatabaseInstance:
    """A seeded coNP hardness gadget with *provable* ground truth.

    Scales the Figure 3 bifurcation to *n_branches* branches, each
    hanging off its own root.  A **straight** branch is a conflict-free
    exact ``q``-path, so every repair satisfies the query through it; a
    **bifurcated** branch forks after the head into a conflicting block
    whose one side completes ``q`` exactly and whose other side is one
    symbol too long (the rewound language's trap).  A repair that picks
    the long side in *every* bifurcated branch falsifies ``q``, hence::

        CERTAINTY(q) holds  iff  n_straight >= 1

    (and an empty gadget is a "no"), which the scenario oracle
    cross-checks by brute force.  The query's first symbol must not
    recur in its tail, and the tail must not be one repeated symbol (as
    in ``ARRX``), so the long side can never complete an exact path.
    The rng only shuffles which branches are straight and the fact
    order -- the answer depends on the counts alone.
    """
    q = Word.coerce(query)
    if len(q) < 3:
        raise ValueError("the gadget needs a query of length >= 3")
    if q[0] in list(q)[1:]:
        raise ValueError(
            "the head symbol must not recur in the tail (got {})".format(q)
        )
    if list(q)[2:] == list(q)[1:-1]:
        raise ValueError(
            "the tail must not be one repeated symbol (got {})".format(q)
        )
    if not 0 <= n_straight <= n_branches:
        raise ValueError("need 0 <= n_straight <= n_branches")
    from repro.reductions.gadgets import FreshConstants, phi

    fresh = FreshConstants(prefix="g")
    straight = set(rng.sample(range(n_branches), n_straight))
    facts: List[Fact] = []
    for branch in range(n_branches):
        a = fresh()
        facts.append(Fact(q[0], "root{}".format(branch), a))
        if branch in straight:
            facts.extend(phi(Word(list(q)[1:]), a, None, fresh))
        else:
            b, c = fresh(), fresh()
            facts.append(Fact(q[1], a, b))  # the conflicting block {.
            facts.append(Fact(q[1], a, c))  # .}
            facts.extend(phi(Word(list(q)[2:]), b, None, fresh))
            facts.extend(phi(Word(list(q)[1:]), c, None, fresh))
    rng.shuffle(facts)
    return DatabaseInstance(facts)


def firehose_stream(
    rng: random.Random,
    base: DatabaseInstance,
    n_deltas: int,
    max_edits: int = 2,
    insert_rate: float = 0.6,
    alphabet: Optional[Sequence[str]] = None,
    constants: Optional[Sequence[Hashable]] = None,
) -> List[Delta]:
    """A seeded stream of :class:`~repro.db.delta.Delta` update batches.

    Each delta holds 1..*max_edits* edits; inserts draw fresh
    ``(relation, key, value)`` facts over *alphabet* x *constants*
    (defaulting to the base instance's own relations and active domain),
    removes pick currently-live facts.  The stream tracks the evolving
    fact set, so edits are never no-ops: an insert is always a new fact,
    a remove always hits a live one.  The same ``(rng state, base)``
    reproduces the same stream -- the determinism the scenario matrix
    pins bit-for-bit.
    """
    if alphabet is None:
        alphabet = sorted({fact.relation for fact in base.facts}) or ["R"]
    else:
        alphabet = list(alphabet)
    if constants is None:
        constants = list(base.sorted_adom()) or [0, 1, 2]
    else:
        constants = list(constants)
    live = set(base.facts)
    ordered = sorted(live, key=str)
    deltas: List[Delta] = []
    for _ in range(n_deltas):
        removes: List[Fact] = []
        inserts: List[Fact] = []
        touched: set = set()
        for _ in range(rng.randint(1, max_edits)):
            if ordered and (rng.random() >= insert_rate or len(live) <= 1):
                candidates = [f for f in ordered if f not in touched]
                if not candidates:
                    continue
                fact = rng.choice(candidates)
                removes.append(fact)
                touched.add(fact)
            else:
                for _ in range(16):
                    fact = Fact(
                        rng.choice(alphabet),
                        rng.choice(constants),
                        rng.choice(constants),
                    )
                    if fact not in live and fact not in touched:
                        inserts.append(fact)
                        touched.add(fact)
                        break
        if not removes and not inserts:
            continue
        deltas.append(Delta(removes=tuple(removes), inserts=tuple(inserts)))
        live.difference_update(removes)
        live.update(inserts)
        ordered = sorted(live, key=str)
    return deltas


def chain_instance(
    q: WordLike,
    repetitions: int = 1,
    conflict_every: Optional[int] = None,
) -> DatabaseInstance:
    """A deterministic chain: *repetitions* concatenated ``q``-paths.

    With *conflict_every* set, every that-many-th node gets a second
    outgoing fact in the same block (a dead-end branch), producing a
    predictable number of conflicts -- the scaling benchmarks use this to
    grow instances linearly.
    """
    q = Word.coerce(q)
    facts: List[Fact] = []
    node = 0
    for _ in range(repetitions):
        for relation in q:
            facts.append(Fact(relation, node, node + 1))
            node += 1
    if conflict_every:
        dead = node + 1
        for position in range(0, node, conflict_every):
            relation = q[position % len(q)]
            facts.append(Fact(relation, position, dead))
            dead += 1
    return DatabaseInstance(facts)
