"""Seeded random generators for inconsistent database instances.

The paper's algorithms traverse edge-colored directed graphs (facts
``R(a, b)``), so the generators grow random graphs with controlled

* size (number of facts),
* alphabet (which relation names appear),
* inconsistency (fraction of blocks with more than one fact, and block
  sizes).

All randomness flows through an explicit :class:`random.Random`; the same
seed always reproduces the same instance.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.words.word import Word, WordLike


def random_word(
    rng: random.Random,
    length: int,
    alphabet: Sequence[str] = ("R", "S", "X", "Y"),
) -> Word:
    """A random word (candidate path query) over *alphabet*."""
    return Word([rng.choice(list(alphabet)) for _ in range(length)])


def random_instance(
    rng: random.Random,
    n_constants: int,
    n_facts: int,
    alphabet: Sequence[str] = ("R", "X"),
    conflict_rate: float = 0.4,
    max_block_size: int = 3,
) -> DatabaseInstance:
    """A random instance with controlled inconsistency.

    Facts are drawn by picking a relation and a key; with probability
    *conflict_rate* a new fact is aimed at an *existing* block (growing a
    conflict, capped at *max_block_size*), otherwise at a fresh random
    block.  Values are uniform over the constants.
    """
    if n_constants < 1:
        raise ValueError("need at least one constant")
    constants = list(range(n_constants))
    alphabet = list(alphabet)
    blocks: dict = {}
    attempts = 0
    while sum(len(v) for v in blocks.values()) < n_facts:
        attempts += 1
        if attempts > 50 * n_facts + 100:
            break  # saturated (tiny domains cannot host n_facts facts)
        grow = blocks and rng.random() < conflict_rate
        if grow:
            block_id = rng.choice(sorted(blocks, key=str))
            if len(blocks[block_id]) >= max_block_size:
                grow = False
        if not grow:
            # Aim at a fresh block so conflict_rate=0 yields a consistent
            # instance (up to domain saturation).
            block_id = None
            for _ in range(8):
                candidate = (rng.choice(alphabet), rng.choice(constants))
                if candidate not in blocks:
                    block_id = candidate
                    break
            if block_id is None:
                continue
            blocks.setdefault(block_id, set())
        relation, key = block_id
        value = rng.choice(constants)
        blocks[block_id].add(Fact(relation, key, value))
    facts = [fact for members in blocks.values() for fact in members]
    return DatabaseInstance(facts)


def planted_instance(
    rng: random.Random,
    q: WordLike,
    n_constants: int,
    n_paths: int = 1,
    n_noise_facts: int = 0,
    conflict_rate: float = 0.5,
) -> DatabaseInstance:
    """An instance with *n_paths* planted ``q``-paths plus random noise.

    Planting guarantees the query is satisfiable in at least one repair,
    which keeps yes/no answers balanced in the certainty experiments;
    noise facts then create conflicts that may or may not break the
    planted paths.
    """
    q = Word.coerce(q)
    constants = list(range(n_constants))
    facts: List[Fact] = []
    for _ in range(n_paths):
        nodes = [rng.choice(constants) for _ in range(len(q) + 1)]
        for i, relation in enumerate(q):
            facts.append(Fact(relation, nodes[i], nodes[i + 1]))
    alphabet = sorted(q.alphabet())
    existing_keys = sorted({(f.relation, f.key) for f in facts}, key=str)
    for _ in range(n_noise_facts):
        if existing_keys and rng.random() < conflict_rate:
            relation, key = rng.choice(existing_keys)
        else:
            relation = rng.choice(alphabet)
            key = rng.choice(constants)
        facts.append(Fact(relation, key, rng.choice(constants)))
        existing_keys.append((relation, key))
    return DatabaseInstance(facts)


def chain_instance(
    q: WordLike,
    repetitions: int = 1,
    conflict_every: Optional[int] = None,
) -> DatabaseInstance:
    """A deterministic chain: *repetitions* concatenated ``q``-paths.

    With *conflict_every* set, every that-many-th node gets a second
    outgoing fact in the same block (a dead-end branch), producing a
    predictable number of conflicts -- the scaling benchmarks use this to
    grow instances linearly.
    """
    q = Word.coerce(q)
    facts: List[Fact] = []
    node = 0
    for _ in range(repetitions):
        for relation in q:
            facts.append(Fact(relation, node, node + 1))
            node += 1
    if conflict_every:
        dead = node + 1
        for position in range(0, node, conflict_every):
            relation = q[position % len(q)]
            facts.append(Fact(relation, position, dead))
            dead += 1
    return DatabaseInstance(facts)
