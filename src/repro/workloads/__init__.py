"""Workloads: synthetic inconsistent databases and query catalogs.

* :mod:`repro.workloads.generators` -- seeded random instance generators
  with controlled inconsistency (block sizes);
* :mod:`repro.workloads.paper_instances` -- every concrete instance from
  the paper's figures and examples;
* :mod:`repro.workloads.queries` -- the catalog of queries the paper
  names, with their proven complexity classes.
"""

from repro.workloads.generators import (
    planted_instance,
    random_instance,
    random_word,
)
from repro.workloads.queries import PAPER_QUERY_CLASSES, paper_queries
from repro.workloads import paper_instances

__all__ = [
    "planted_instance",
    "random_instance",
    "random_word",
    "PAPER_QUERY_CLASSES",
    "paper_queries",
    "paper_instances",
]
