"""Every concrete database instance from the paper's figures and examples.

Each function returns the instance (and, where relevant, the companion
query); the test-suite asserts the exact claims the paper makes about
them, which pins the library's semantics to the paper's.
"""

from __future__ import annotations

from repro.db.instance import DatabaseInstance
from repro.queries.atoms import Atom, Variable
from repro.queries.conjunctive import ConjunctiveQuery


def figure1_instance() -> DatabaseInstance:
    """Figure 1: R and S both contain all four pairs over {a, b}.

    A "yes"-instance for ``q1 = ∃x∃y(R(x,y) ∧ R(y,x))`` but a
    "no"-instance for its self-join-free counterpart with S (Example 1).
    """
    triples = []
    for relation in ("R", "S"):
        for key in ("a", "b"):
            for value in ("a", "b"):
                triples.append((relation, key, value))
    return DatabaseInstance.from_triples(triples)


def example1_q1() -> ConjunctiveQuery:
    """``q1 = ∃x∃y (R(x,y) ∧ R(y,x))`` -- a self-join, not a path query."""
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery([Atom("R", x, y), Atom("R", y, x)])


def example1_q2() -> ConjunctiveQuery:
    """``q2 = ∃x∃y (R(x,y) ∧ S(y,x))`` -- the self-join-free counterpart."""
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery([Atom("R", x, y), Atom("S", y, x)])


def example2_q1() -> ConjunctiveQuery:
    """``q1 = ∃x∃y∃z (R(x,z) ∧ R(y,z))`` from Example 2."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery([Atom("R", x, z), Atom("R", y, z)])


def figure2_instance() -> DatabaseInstance:
    """Figure 2: the instance for ``q2 = RRX``.

    The only conflicting facts are ``R(1, 2)`` and ``R(1, 3)``; both
    repairs satisfy RRX, but no single constant starts an exact RRX path
    in both -- only the rewound language ``RR(R)*X`` has a common start
    (the constant 0).
    """
    return DatabaseInstance.from_triples(
        [
            ("R", 0, 1),
            ("R", 1, 2),
            ("R", 1, 3),
            ("R", 2, 3),
            ("X", 3, 4),
        ]
    )


def figure3_instance() -> DatabaseInstance:
    """Figure 3: the bifurcation instance for ``q3 = ARRX``.

    Every repair has a path from 0 with trace in ``ARR(R)*X``, yet the
    repair containing ``R(a, c)`` does not satisfy ARRX -- the gadget
    behind coNP-hardness.
    """
    return DatabaseInstance.from_triples(
        [
            ("A", 0, "a"),
            ("R", "a", "b"),
            ("R", "a", "c"),
            ("R", "b", "b1"),
            ("X", "b1", "b2"),
            ("R", "c", "c1"),
            ("R", "c1", "c2"),
            ("X", "c2", "c3"),
        ]
    )


def figure6_instance() -> DatabaseInstance:
    """Figure 6: the example run of the Figure 5 algorithm for ``q = RRX``.

    A consistent R-chain ``0 -> 1 -> 2 -> 3 -> 4`` with an X-edge
    ``4 -> 5``; the algorithm derives ``<0, ε>`` after five iterations.
    """
    return DatabaseInstance.from_triples(
        [
            ("R", 0, 1),
            ("R", 1, 2),
            ("R", 2, 3),
            ("R", 3, 4),
            ("X", 4, 5),
        ]
    )


def example5_instance() -> DatabaseInstance:
    """Example 5: states sets for ``q = RRX``.

    ``ST_q(R(b,c), r) = {R, RR}`` and ``ST_q(R(d,e), r) = ∅``.
    """
    return DatabaseInstance.from_triples(
        [
            ("R", "a", "b"),
            ("R", "b", "c"),
            ("R", "c", "d"),
            ("X", "d", "e"),
            ("R", "d", "e"),
        ]
    )


def example7_instance() -> DatabaseInstance:
    """Example 7: ``c`` is terminal for RSRT.

    ``db = {R(c,d), S(d,c), R(c,e), T(e,f)}``: the consistent path
    ``R(c,d), S(d,c)`` cannot be right-extended to a consistent RSRT path.
    """
    return DatabaseInstance.from_triples(
        [
            ("R", "c", "d"),
            ("S", "d", "c"),
            ("R", "c", "e"),
            ("T", "e", "f"),
        ]
    )


def intro_rr_fo_instance() -> DatabaseInstance:
    """A small instance exercising the intro's FO rewriting for ``q = RR``."""
    return DatabaseInstance.from_triples(
        [
            ("R", 0, 1),
            ("R", 1, 2),
            ("R", 1, 3),
            ("R", 3, 0),
        ]
    )
