"""The PTIME-hardness reduction from MCVP (Lemma 20, Figure 10).

For a path query that satisfies C3 but violates C2, write
``q = u R v1 R v2 R w`` for consecutive occurrences of ``R`` with
``v1 != v2`` and ``Rw`` not a prefix of ``Rv1``.  Let ``v`` be the
longest common prefix of ``v1`` and ``v2``, so ``v1 = v·v1+`` and
``v2 = v·v2+`` with differing first symbols.  The Monotone Circuit Value
Problem reduces in FO to CERTAINTY(q):

* output gate ``o``: add ``ϕ_⊥^o[uRv1]``;
* input ``x`` with ``σ(x) = 1``: add ``ϕ_x^⊥[Rv2Rw]``;
* every gate ``g``: add ``ϕ_⊥^g[u]`` and ``ϕ_g^⊥[Rv2Rw]``;
* AND gate ``g = g1 ∧ g2``: add ``ϕ_g^{g1}[Rv1]`` and ``ϕ_g^{g2}[Rv1]``
  (conflicting on ``R(g, *)``: the repair blames one child);
* OR gate ``g = g1 ∨ g2`` (fresh ``c1, c2``): add ``ϕ_g^{c1}[Rv]``,
  ``ϕ_{c1}^{g1}[v1+]``, ``ϕ_{c1}^{c2}[v2+]``, ``ϕ_⊥^{c2}[u]``,
  ``ϕ_{c2}^{g2}[Rv1]``, ``ϕ_{c2}^⊥[Rw]``.

The circuit evaluates to 1 iff every repair satisfies ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.circuits.circuit import MonotoneCircuit
from repro.classification.conditions import satisfies_c2, satisfies_c3
from repro.classification.witnesses import TripleWitness, c2_violation
from repro.db.instance import DatabaseInstance
from repro.reductions.gadgets import FreshConstants, phi
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class McvpReduction:
    """The constructed instance plus bookkeeping."""

    query: Word
    witness: TripleWitness
    instance: DatabaseInstance
    circuit: MonotoneCircuit

    def expected_certainty(self, circuit_value: bool) -> bool:
        """CERTAINTY(q) equals the circuit's output value."""
        return circuit_value


def _common_prefix(a: Word, b: Word) -> Word:
    length = 0
    while length < min(len(a), len(b)) and a[length] == b[length]:
        length += 1
    return a[:length]


def mcvp_reduction(
    q: WordLike,
    circuit: MonotoneCircuit,
    assignment: Dict[str, bool],
) -> McvpReduction:
    """Build the Lemma 20 instance for *q* from a circuit + assignment.

    Requires *q* to satisfy C3 and violate C2 (the PTIME-complete class;
    for C3 violations the Lemma 19 reduction already gives coNP-hardness,
    which subsumes PTIME-hardness).
    """
    q = Word.coerce(q)
    if satisfies_c2(q):
        raise ValueError(
            "query {} satisfies C2; no PTIME-hardness reduction applies".format(q)
        )
    if not satisfies_c3(q):
        raise ValueError(
            "query {} violates C3; use the Lemma 19 SAT reduction instead".format(q)
        )
    witness = c2_violation(q)
    if not isinstance(witness, TripleWitness):  # pragma: no cover
        raise AssertionError("C3-satisfying C2 violations are triples (Lemma 3)")

    u = witness.u
    r = Word([witness.relation])
    v1 = witness.v1
    v2 = witness.v2
    w = witness.w
    v = _common_prefix(v1, v2)
    v1_plus = v1[len(v):]
    v2_plus = v2[len(v):]
    if not v1_plus:  # pragma: no cover
        raise AssertionError(
            "the Lemma 20 witness has v1+ = ε (v1 a proper prefix of v2), "
            "contradicting the structure of C3-satisfying C2 violations"
        )
    # v2+ = ε is possible (e.g. q = RXRRR: v1 = X, v2 = ε): then v = v2
    # and the OR gadget's c1 and c2 coincide, the ϕ_{c1}^{c2}[v2+] path
    # being empty.  The paper's prose assumes both nonempty; the merged
    # gadget is the degenerate case and is validated by the differential
    # tests on RXRRR and RSRRR.

    rv1 = r + v1
    rv = r + v
    rv2w = r + v2 + r + w
    rw = r + w

    fresh = FreshConstants()

    def wire(name: str) -> Hashable:
        return ("wire", name)

    facts = []
    # Output gate.
    facts.extend(phi(u + rv1, None, wire(circuit.output), fresh))
    # True inputs.
    for name in circuit.inputs:
        if assignment.get(name, False):
            facts.extend(phi(rv2w, wire(name), None, fresh))
    # Every gate.
    for gate in circuit.gates:
        g = wire(gate.name)
        facts.extend(phi(u, None, g, fresh))
        facts.extend(phi(rv2w, g, None, fresh))
        if gate.op == "and":
            facts.extend(phi(rv1, g, wire(gate.left), fresh))
            facts.extend(phi(rv1, g, wire(gate.right), fresh))
        else:
            c1 = ("or", gate.name, 1)
            c2 = ("or", gate.name, 2) if v2_plus else c1
            facts.extend(phi(rv, g, c1, fresh))
            facts.extend(phi(v1_plus, c1, wire(gate.left), fresh))
            facts.extend(phi(v2_plus, c1, c2, fresh))
            facts.extend(phi(u, None, c2, fresh))
            facts.extend(phi(rv1, c2, wire(gate.right), fresh))
            facts.extend(phi(rw, c2, None, fresh))

    return McvpReduction(
        query=q,
        witness=witness,
        instance=DatabaseInstance(facts),
        circuit=circuit,
    )
