"""The coNP-hardness reduction from SAT (Lemma 19, Figure 9).

For a path query ``q = uRvRw`` violating C3 (``q`` not a factor of
``uRvRvRw``; ``u`` is necessarily nonempty), SAT reduces in FO to the
complement of CERTAINTY(q).  Given a CNF formula:

* for each variable ``z``: add ``ϕ_z^⊥[Rw]`` ("z is true") and
  ``ϕ_z^⊥[RvRw]`` ("z is false") -- these conflict on the block
  ``R(z, *)``;
* for each clause ``C`` and positive literal ``z`` of ``C``: add
  ``ϕ_C^z[u]``;
* for each clause ``C`` and negated variable ``z`` of ``C``: add
  ``ϕ_C^z[uRv]`` -- the clause gadgets conflict on the block
  ``S(C, *)`` where ``S = first(u)``.

The formula is satisfiable iff some repair falsifies ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from repro.classification.witnesses import PairWitness, c3_violation
from repro.cnf.formula import CnfFormula
from repro.db.instance import DatabaseInstance
from repro.reductions.gadgets import FreshConstants, phi
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class SatReduction:
    """The constructed instance plus bookkeeping."""

    query: Word
    witness: PairWitness
    instance: DatabaseInstance
    formula: CnfFormula

    def expected_certainty(self, satisfiable: bool) -> bool:
        """CERTAINTY(q) is the complement of satisfiability."""
        return not satisfiable


def sat_reduction(q: WordLike, formula: CnfFormula) -> SatReduction:
    """Build the Lemma 19 instance for *q* from a CNF formula.

    Raises :class:`ValueError` if *q* satisfies C3 (CERTAINTY(q) is then
    in PTIME and no such reduction exists unless PTIME = coNP).
    """
    q = Word.coerce(q)
    witness = c3_violation(q)
    if witness is None:
        raise ValueError(
            "query {} satisfies C3; no coNP-hardness reduction applies".format(q)
        )
    if not witness.u:
        raise AssertionError(
            "C3 violations always have nonempty u (q = RvRw is a suffix "
            "of RvRvRw); witness extraction is inconsistent"
        )

    u = witness.u
    rv = Word([witness.relation]) + witness.v
    rw = Word([witness.relation]) + witness.w

    fresh = FreshConstants()

    def variable_node(name: str) -> Hashable:
        return ("var", name)

    def clause_node(index: int) -> Hashable:
        return ("clause", index)

    facts = []
    for name in formula.variables():
        z = variable_node(name)
        facts.extend(phi(rw, z, None, fresh))          # z := true
        facts.extend(phi(rv + rw, z, None, fresh))     # z := false
    for index, clause in enumerate(formula.clauses):
        c = clause_node(index)
        for name, polarity in clause.literals:
            z = variable_node(name)
            if polarity:
                facts.extend(phi(u, c, z, fresh))
            else:
                facts.extend(phi(u + rv, c, z, fresh))

    return SatReduction(
        query=q,
        witness=witness,
        instance=DatabaseInstance(facts),
        formula=formula,
    )


def assignment_to_repair_choice(
    reduction: SatReduction, assignment: Dict[str, bool]
) -> Dict[Hashable, str]:
    """The per-variable block choice a satisfying assignment induces.

    Returns ``{variable_node: "Rw" | "RvRw"}`` -- diagnostic helper used
    by tests to reconstruct the falsifying repair of the proof.
    """
    return {
        ("var", name): ("Rw" if value else "RvRw")
        for name, value in assignment.items()
    }
