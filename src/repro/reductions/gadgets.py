"""The ϕ path gadgets used by every lower-bound construction (Section 7).

For a path query ``q = R1 ... Rk`` and constants ``a, b``:

* ``ϕ_a^b[q]`` -- a fresh ``q``-labelled path from ``a`` to ``b``:
  ``R1(a, □2), R2(□2, □3), ..., Rk(□k, b)``;
* ``ϕ_a^⊥[q]`` -- from ``a`` to a fresh constant;
* ``ϕ_⊥^b[q]`` -- from a fresh constant to ``b``.

Every ``□i`` is a globally fresh constant; two gadget instantiations never
share their internal constants.  :class:`FreshConstants` supplies them.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.db.facts import Fact
from repro.words.word import Word, WordLike


class FreshConstants:
    """A supply of globally fresh constants ``□1, □2, ...``."""

    def __init__(self, prefix: str = "□") -> None:
        self._prefix = prefix
        self._counter = 0

    def __call__(self) -> str:
        self._counter += 1
        return "{}{}".format(self._prefix, self._counter)

    @property
    def issued(self) -> int:
        return self._counter


def phi(
    q: WordLike,
    start: Optional[Hashable],
    end: Optional[Hashable],
    fresh: FreshConstants,
) -> List[Fact]:
    """The gadget ``ϕ_start^end[q]``.

    ``start`` / ``end`` may be ``None`` for ``⊥`` (a fresh constant).
    The empty word yields no facts (the paper composes gadgets with
    possibly-empty component words, e.g. ``u = ε`` in Lemma 18).
    """
    q = Word.coerce(q)
    if not q:
        return []
    nodes: List[Hashable] = [start if start is not None else fresh()]
    for _ in range(len(q) - 1):
        nodes.append(fresh())
    nodes.append(end if end is not None else fresh())
    return [
        Fact(relation, nodes[i], nodes[i + 1]) for i, relation in enumerate(q)
    ]
