"""The NL-hardness reduction from REACHABILITY (Lemma 18, Figure 8).

For a path query ``q = uRvRw`` violating C1 (``q`` not a prefix of
``uRvRvRw``), acyclic REACHABILITY reduces in FO to the *complement* of
CERTAINTY(q):

* extend the graph with fresh ``s' -> s`` and ``t -> t'``;
* for each vertex ``x ∈ V ∪ {s'}``: add ``ϕ_⊥^x[u]`` (a ``u``-path into
  ``x``);
* for each edge ``(x, y)``: add ``ϕ_x^y[Rv]``;
* for each vertex ``x ∈ V``: add ``ϕ_x^⊥[Rw]``.

Then ``G`` has a directed path ``s -> t`` iff some repair falsifies ``q``
(the repair routes the conflicting ``R``-blocks along the path, producing
only traces ``u (Rv)^k`` that ``q`` cannot embed into).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.classification.witnesses import PairWitness, c1_violation
from repro.db.instance import DatabaseInstance
from repro.graphs.digraph import DiGraph
from repro.reductions.gadgets import FreshConstants, phi
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class ReachabilityReduction:
    """The constructed instance plus the reduction's bookkeeping."""

    query: Word
    witness: PairWitness
    instance: DatabaseInstance
    source: Hashable
    target: Hashable

    def expected_certainty(self, reachable: bool) -> bool:
        """The CERTAINTY answer the reduction predicts: the complement of
        reachability."""
        return not reachable


def reachability_reduction(
    q: WordLike, graph: DiGraph, source: Hashable, target: Hashable
) -> ReachabilityReduction:
    """Build the Lemma 18 instance for *q* from an acyclic graph.

    Raises :class:`ValueError` if *q* satisfies C1 (no reduction exists:
    CERTAINTY(q) is then in FO) or if the graph is cyclic (the reduction
    is stated for acyclic inputs, where REACHABILITY stays NL-complete).
    """
    q = Word.coerce(q)
    witness = c1_violation(q)
    if witness is None:
        raise ValueError(
            "query {} satisfies C1; no NL-hardness reduction applies".format(q)
        )
    if not graph.is_acyclic():
        raise ValueError("the Lemma 18 reduction expects an acyclic graph")
    if source not in graph or target not in graph:
        raise ValueError("source/target must be graph vertices")

    u = witness.u
    rv = Word([witness.relation]) + witness.v
    rw = Word([witness.relation]) + witness.w

    fresh = FreshConstants()
    s_prime = ("aux", "s'")
    t_prime = ("aux", "t'")

    def vertex(x: Hashable) -> Hashable:
        return ("v", x)

    facts = []
    vertices = sorted(graph.vertices, key=str)
    for x in vertices:
        facts.extend(phi(u, None, vertex(x), fresh))
    facts.extend(phi(u, None, s_prime, fresh))
    for x, y in graph.edges:
        facts.extend(phi(rv, vertex(x), vertex(y), fresh))
    facts.extend(phi(rv, s_prime, vertex(source), fresh))
    facts.extend(phi(rv, vertex(target), t_prime, fresh))
    for x in vertices:
        facts.extend(phi(rw, vertex(x), None, fresh))

    return ReachabilityReduction(
        query=q,
        witness=witness,
        instance=DatabaseInstance(facts),
        source=source,
        target=target,
    )
