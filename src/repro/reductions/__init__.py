"""The hardness reductions of Section 7 as instance generators.

Each lower-bound proof of the paper is implemented as an executable
reduction.  They serve two purposes: *validation* (the reduction's
correctness statement is checked end-to-end against ground truth on
random inputs) and *workload generation* (reduction outputs are the
structured "hard" instances the benchmarks feed the solvers).
"""

from repro.reductions.gadgets import FreshConstants, phi
from repro.reductions.reachability import reachability_reduction
from repro.reductions.sat_reduction import sat_reduction
from repro.reductions.mcvp import mcvp_reduction

__all__ = [
    "FreshConstants",
    "phi",
    "reachability_reduction",
    "sat_reduction",
    "mcvp_reduction",
]
