"""Conditions D1, D2, D3 for generalized path queries (Section 8).

With ``γ`` a constant or the distinguished symbol ``⊤`` (``None`` here),
and ``char(q) = [[word, γ]]`` the characteristic prefix:

* **D1**: whenever ``char(q) = [[uRvRw, γ]]``, there is a *prefix
  homomorphism* from ``char(q)`` to ``[[uRvRvRw, γ]]``;
* **D2**: whenever ``char(q) = [[uRvRw, γ]]``, there is a homomorphism
  from ``char(q)`` to ``[[uRvRvRw, γ]]``; and whenever
  ``char(q) = [[uRv1Rv2Rw, γ]]`` for consecutive occurrences of ``R``,
  ``v1 = v2`` or there is a prefix homomorphism from ``[[Rw, γ]]`` to
  ``[[Rv1, γ]]``;
* **D3**: whenever ``char(q) = [[uRvRw, γ]]``, there is a homomorphism
  from ``char(q)`` to ``[[uRvRvRw, γ]]``.

If ``γ = ⊤`` these degenerate to C1, C2, C3 respectively.
"""

from __future__ import annotations

from typing import Union

from repro.queries.generalized import (
    GeneralizedPathQuery,
    TerminalWord,
    has_homomorphism,
    has_prefix_homomorphism,
)
from repro.words.factors import consecutive_triples, self_join_pairs
from repro.words.rewind import rewind_at
from repro.words.word import Word

QueryLike = Union[GeneralizedPathQuery, TerminalWord]


def _char(q: QueryLike) -> TerminalWord:
    if isinstance(q, GeneralizedPathQuery):
        return q.char()
    return q


def satisfies_d1(q: QueryLike) -> bool:
    """Condition D1; equals C1 when the query is constant-free."""
    char = _char(q)
    word = char.word
    for i, j in self_join_pairs(word):
        target = TerminalWord(rewind_at(word, i, j), char.terminal)
        if not has_prefix_homomorphism(char, target):
            return False
    return True


def satisfies_d3(q: QueryLike) -> bool:
    """Condition D3; equals C3 when the query is constant-free."""
    char = _char(q)
    word = char.word
    for i, j in self_join_pairs(word):
        target = TerminalWord(rewind_at(word, i, j), char.terminal)
        if not has_homomorphism(char, target):
            return False
    return True


def satisfies_d2(q: QueryLike) -> bool:
    """Condition D2; equals C2 when the query is constant-free."""
    char = _char(q)
    if not satisfies_d3(char):
        return False
    word = char.word
    for i, j, k in consecutive_triples(word):
        v1 = word[i + 1: j]
        v2 = word[j + 1: k]
        if v1 == v2:
            continue
        relation = Word([word[i]])
        rw = TerminalWord(relation + word[k + 1:], char.terminal)
        rv1 = TerminalWord(relation + v1, char.terminal)
        if not has_prefix_homomorphism(rw, rv1):
            return False
    return True
