"""The syntactic conditions C1, C2, C3 (Section 3).

Let ``R`` be any relation name in ``q`` and ``u, v, w`` (possibly empty)
words:

* **C1**: whenever ``q = uRvRw``, ``q`` is a *prefix* of ``uRvRvRw``;
* **C2**: whenever ``q = uRvRw``, ``q`` is a *factor* of ``uRvRvRw``; and
  whenever ``q = uRv1Rv2Rw`` for *consecutive* occurrences of ``R``,
  ``v1 = v2`` or ``Rw`` is a prefix of ``Rv1``;
* **C3**: whenever ``q = uRvRw``, ``q`` is a *factor* of ``uRvRvRw``.

All three are decidable in polynomial time in ``|q|`` by enumerating the
(pairs / consecutive triples of) positions of equal symbols.  Rewinding the
factor ``RvR`` located at positions ``i < j`` produces
``q[:j+1] + q[i+1:j+1] + q[j+1:]`` (see :func:`repro.words.rewind.rewind_at`).

Proposition 1: C1 implies C2 implies C3 (validated by property tests).
"""

from __future__ import annotations

from repro.words.factors import (
    consecutive_triples,
    is_factor,
    is_prefix,
    self_join_pairs,
)
from repro.words.rewind import rewind_at
from repro.words.word import Word, WordLike


def satisfies_c1(q: WordLike) -> bool:
    """True iff *q* satisfies C1: ``q`` is a prefix of all its rewindings.

    >>> satisfies_c1("RXRX")
    True
    >>> satisfies_c1("RXRY")
    False
    """
    q = Word.coerce(q)
    return all(
        is_prefix(q, rewind_at(q, i, j)) for i, j in self_join_pairs(q)
    )


def satisfies_c3(q: WordLike) -> bool:
    """True iff *q* satisfies C3: ``q`` is a factor of all its rewindings.

    >>> satisfies_c3("RXRYRY")
    True
    >>> satisfies_c3("RXRXRYRY")
    False
    """
    q = Word.coerce(q)
    return all(
        is_factor(q, rewind_at(q, i, j)) for i, j in self_join_pairs(q)
    )


def _triple_condition_holds(q: Word, i: int, j: int, k: int) -> bool:
    """The second clause of C2 for the consecutive triple ``(i, j, k)``.

    With ``q = u R v1 R v2 R w`` (``R`` at positions ``i < j < k``): require
    ``v1 = v2`` or ``Rw`` a prefix of ``Rv1``.
    """
    v1 = q[i + 1: j]
    v2 = q[j + 1: k]
    if v1 == v2:
        return True
    r = Word([q[i]])
    rw = r + q[k + 1:]
    rv1 = r + v1
    return is_prefix(rw, rv1)


def satisfies_c2(q: WordLike) -> bool:
    """True iff *q* satisfies C2.

    C2 = C3's factor clause for every decomposition ``q = uRvRw``, plus:
    for every three *consecutive* occurrences of a relation name,
    ``q = uRv1Rv2Rw`` implies ``v1 = v2`` or ``Rw`` a prefix of ``Rv1``.

    >>> satisfies_c2("RRX")
    True
    >>> satisfies_c2("RXRYRY")   # Example 3: v1=X != Y=v2 and RY not prefix of RX
    False
    """
    q = Word.coerce(q)
    if not satisfies_c3(q):
        return False
    return all(
        _triple_condition_holds(q, i, j, k)
        for i, j, k in consecutive_triples(q)
    )
