"""Violation witnesses for C1, C2, C3 (used by the hardness reductions).

The lower-bound constructions of Section 7 each start from an explicit
decomposition of the query:

* Lemma 18 (NL-hardness) needs ``q = uRvRw`` with ``q`` not a prefix of
  ``uRvRvRw`` -- a C1 violation;
* Lemma 19 (coNP-hardness) needs ``q = uRvRw`` with ``q`` not a factor of
  ``uRvRvRw`` -- a C3 violation;
* Lemma 20 (PTIME-hardness) needs ``q = uRv1Rv2Rw`` for consecutive
  occurrences of ``R`` with ``v1 != v2`` and ``Rw`` not a prefix of
  ``Rv1`` -- a C2 violation of the "triple" form.

This module also implements the factor characterization of Lemma 3: a word
satisfying C3 violates C2 iff it contains a factor
``last(u)·w·u·v·u·first(v)`` (``v != ε``) or ``last(u)·w·u·u·first(u)``
(``v = ε``, ``w != ε``) with ``u != ε`` and ``uvw`` self-join-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.words.factors import is_factor, is_prefix, is_self_join_free
from repro.words.rewind import rewind_at
from repro.words.factors import consecutive_triples, self_join_pairs
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class PairWitness:
    """A decomposition ``q = u·R·v·R·w`` (positions ``i < j`` of ``R``)."""

    query: Word
    i: int
    j: int

    @property
    def u(self) -> Word:
        return self.query[: self.i]

    @property
    def relation(self) -> str:
        return self.query[self.i]

    @property
    def v(self) -> Word:
        return self.query[self.i + 1: self.j]

    @property
    def w(self) -> Word:
        return self.query[self.j + 1:]

    @property
    def rewound(self) -> Word:
        return rewind_at(self.query, self.i, self.j)

    def __str__(self) -> str:
        return "q = {}·{}·{}·{}·{}".format(
            self.u or "ε", self.relation, self.v or "ε",
            self.relation, self.w or "ε",
        )


@dataclass(frozen=True)
class TripleWitness:
    """A decomposition ``q = u·R·v1·R·v2·R·w`` (consecutive occurrences)."""

    query: Word
    i: int
    j: int
    k: int

    @property
    def u(self) -> Word:
        return self.query[: self.i]

    @property
    def relation(self) -> str:
        return self.query[self.i]

    @property
    def v1(self) -> Word:
        return self.query[self.i + 1: self.j]

    @property
    def v2(self) -> Word:
        return self.query[self.j + 1: self.k]

    @property
    def w(self) -> Word:
        return self.query[self.k + 1:]

    def __str__(self) -> str:
        r = self.relation
        return "q = {}·{}·{}·{}·{}·{}·{}".format(
            self.u or "ε", r, self.v1 or "ε", r,
            self.v2 or "ε", r, self.w or "ε",
        )


def c1_violation(q: WordLike) -> Optional[PairWitness]:
    """A decomposition witnessing that *q* violates C1, or ``None``.

    Returns ``q = uRvRw`` with ``q`` not a prefix of ``uRvRvRw``.
    """
    q = Word.coerce(q)
    for i, j in self_join_pairs(q):
        if not is_prefix(q, rewind_at(q, i, j)):
            return PairWitness(q, i, j)
    return None


def c3_violation(q: WordLike) -> Optional[PairWitness]:
    """A decomposition witnessing that *q* violates C3, or ``None``.

    Returns ``q = uRvRw`` with ``q`` not a factor of ``uRvRvRw``.
    """
    q = Word.coerce(q)
    for i, j in self_join_pairs(q):
        if not is_factor(q, rewind_at(q, i, j)):
            return PairWitness(q, i, j)
    return None


def c2_violation(q: WordLike):
    """A witness that *q* violates C2, or ``None``.

    Returns either a :class:`PairWitness` (the C3-style factor clause
    fails) or a :class:`TripleWitness` (``v1 != v2`` and ``Rw`` not a
    prefix of ``Rv1``) -- the latter is the shape Lemma 20's reduction
    consumes.
    """
    q = Word.coerce(q)
    pair = c3_violation(q)
    if pair is not None:
        return pair
    for i, j, k in consecutive_triples(q):
        witness = TripleWitness(q, i, j, k)
        if witness.v1 == witness.v2:
            continue
        rw = Word([witness.relation]) + witness.w
        rv1 = Word([witness.relation]) + witness.v1
        if not is_prefix(rw, rv1):
            return witness
    return None


@dataclass(frozen=True)
class Lemma3Witness:
    """Words ``u, v, w`` of Lemma 3(3) plus the matched factor of ``q``."""

    u: Word
    v: Word
    w: Word
    factor: Word
    form: str  # "3a" (v != ε) or "3b" (v = ε, w != ε)


def lemma3_factor_witness(q: WordLike) -> Optional[Lemma3Witness]:
    """Search for the factor forms of Lemma 3(3).

    Form (3a): ``last(u) · w·u·v·u · first(v)`` is a factor of ``q`` with
    ``u != ε``, ``v != ε`` and ``uvw`` self-join-free.  Form (3b):
    ``last(u) · w·u·u · first(u)`` with ``v = ε`` and ``w != ε``.  The
    shortest instances are ``RRSRS`` (3a) and ``RSRRR`` (3b).

    Lemma 3: for a word satisfying C3, such a factor exists iff the word
    violates C2 (equivalently, violates both B2a and B2b).
    """
    q = Word.coerce(q)
    n = len(q)
    for start in range(n):
        for stop in range(start + 1, n + 1):
            factor = q[start:stop]
            witness = _match_lemma3_factor(factor)
            if witness is not None:
                return witness
    return None


def _match_lemma3_factor(factor: Word) -> Optional[Lemma3Witness]:
    """Try to parse *factor* as one of the two Lemma 3(3) shapes."""
    m = len(factor)
    # Form 3a: factor = last(u) + w + u + v + u + first(v),
    # with |factor| = 1 + |w| + 2|u| + |v| + 1.
    for lu in range(1, m):
        for lv in range(1, m):
            for lw in range(0, m):
                if 2 + lw + 2 * lu + lv != m:
                    continue
                pos = 1
                w = factor[pos: pos + lw]
                pos += lw
                u1 = factor[pos: pos + lu]
                pos += lu
                v = factor[pos: pos + lv]
                pos += lv
                u2 = factor[pos: pos + lu]
                pos += lu
                if u1 != u2:
                    continue
                if factor[0] != u1.last() or factor[m - 1] != v.first():
                    continue
                if not is_self_join_free(u1 + v + w):
                    continue
                return Lemma3Witness(u=u1, v=v, w=w, factor=factor, form="3a")
    # Form 3b: factor = last(u) + w + u + u + first(u), with w != ε.
    for lu in range(1, m):
        lw = m - 2 - 2 * lu
        if lw < 1:
            continue
        pos = 1
        w = factor[pos: pos + lw]
        pos += lw
        u1 = factor[pos: pos + lu]
        pos += lu
        u2 = factor[pos: pos + lu]
        pos += lu
        if u1 != u2:
            continue
        if factor[0] != u1.last() or factor[m - 1] != u1.first():
            continue
        if not is_self_join_free(u1 + w):
            continue
        return Lemma3Witness(
            u=u1, v=Word.epsilon(), w=w, factor=factor, form="3b"
        )
    return None
