"""The regex properties B1, B2a, B2b, B3 (Definition 1) with witnesses.

Definition 1 (``u, v, w`` range over words, ``j, k >= 0``):

* **B1**: ``vw`` self-join-free and ``q`` a prefix of ``w (v)^k``;
* **B2a**: ``uvw`` self-join-free and ``q`` a factor of ``(u)^j w (v)^k``;
* **B2b**: ``uvw`` self-join-free and ``q`` a factor of ``(uv)^k w v``;
* **B3**: ``uvw`` self-join-free and ``q`` a factor of ``u w (uv)^k``.

Section 4 proves C1 = B1, C2 = B2a ∪ B2b and C3 = B2a ∪ B2b ∪ B3.

The checkers here perform a *template search*: candidate component lengths
``|u|, |v|, |w|``, exponents, and the offset of ``q`` inside the pumped
word determine a map from pumped-word positions to *slots* (component,
index).  A candidate succeeds iff positions covered by ``q`` assign every
slot a unique, consistent symbol (self-join-freeness = slot injectivity);
uncovered slots take fresh symbols.  Offsets and exponents are
canonicalized (leading unconstrained full periods are dropped), which makes
the search exhaustive: property-based tests validate the Section 4
equivalences against the exact C-condition checkers.

The returned :class:`Decomposition` materializes the words ``u, v, w`` and
feeds the NL solver (Lemma 14) and the structural analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.words.word import Word, WordLike

Slot = Tuple[str, int]


@dataclass(frozen=True)
class Decomposition:
    """A witness for one of B1, B2a, B2b, B3.

    Attributes
    ----------
    kind:
        One of ``"B1"``, ``"B2a"``, ``"B2b"``, ``"B3"``.
    u, v, w:
        The component words; unconstrained positions carry fresh symbols
        of the form ``_f<i>``.
    j, k:
        The exponents of Definition 1 (``j`` is only used by B2a).
    offset:
        Offset of ``q`` inside the pumped word.
    pumped:
        The pumped word itself (so ``pumped[offset : offset+|q|] == q``).
    """

    kind: str
    u: Word
    v: Word
    w: Word
    j: int
    k: int
    offset: int
    pumped: Word

    def __str__(self) -> str:
        return "{}(u={}, v={}, w={}, j={}, k={}, offset={})".format(
            self.kind, self.u or "ε", self.v or "ε", self.w or "ε",
            self.j, self.k, self.offset,
        )


def _solve_slots(
    q: Word, slots: List[Optional[Slot]], offset: int
) -> Optional[Dict[Slot, str]]:
    """Try to assign symbols to slots so the pumped word contains *q*.

    *slots* maps each pumped-word position to its slot (``None`` marks a
    position that belongs to no component -- unused here but kept for
    clarity).  Returns the slot assignment, or ``None`` on conflict.
    """
    assignment: Dict[Slot, str] = {}
    for t in range(offset, offset + len(q)):
        slot = slots[t]
        if slot is None:
            return None
        symbol = q[t - offset]
        bound = assignment.get(slot)
        if bound is None:
            assignment[slot] = symbol
        elif bound != symbol:
            return None
    # Self-join-freeness: distinct slots must hold distinct symbols.
    if len(set(assignment.values())) != len(assignment):
        return None
    return assignment


def _materialize(
    component: str, length: int, assignment: Dict[Slot, str], fresh: List[int]
) -> Word:
    """Build a component word from the slot assignment, using fresh symbols
    (``_f<i>``) for unconstrained slots."""
    symbols = []
    for index in range(length):
        bound = assignment.get((component, index))
        if bound is None:
            bound = "_f{}".format(fresh[0])
            fresh[0] += 1
        symbols.append(bound)
    return Word(symbols)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# B1:  q prefix of w (v)^k, vw self-join-free
# ----------------------------------------------------------------------

def find_b1(q: WordLike) -> Optional[Decomposition]:
    """A B1 witness for *q*, or ``None``.

    >>> find_b1("RXRX") is not None     # q1 of Example 3 satisfies C1 = B1
    True
    >>> find_b1("RXRY") is None
    True
    """
    q = Word.coerce(q)
    n = len(q)
    for b in range(n + 1):
        for c in range(n + 1):
            if c == 0:
                if b < n:
                    continue
                k = 0
            else:
                k = max(0, _ceil_div(n - b, c))
            length = b + k * c
            if length < n:
                continue
            slots: List[Optional[Slot]] = []
            for t in range(length):
                if t < b:
                    slots.append(("w", t))
                else:
                    slots.append(("v", (t - b) % c))
            assignment = _solve_slots(q, slots, 0)
            if assignment is None:
                continue
            fresh = [0]
            v = _materialize("v", c, assignment, fresh)
            w = _materialize("w", b, assignment, fresh)
            return Decomposition(
                kind="B1", u=Word.epsilon(), v=v, w=w,
                j=0, k=k, offset=0, pumped=w + v * k,
            )
    return None


# ----------------------------------------------------------------------
# B2a:  q factor of (u)^j w (v)^k, uvw self-join-free
# ----------------------------------------------------------------------

def iter_b2a(q: WordLike, require_suffix: bool = False):
    """Yield all canonical B2a witnesses for *q*.

    With *require_suffix*, only witnesses where ``q`` ends exactly at the
    end of the pumped word are yielded (the alignment the NL solver
    needs).
    """
    q = Word.coerce(q)
    n = len(q)
    for a in range(n + 1):
        max_offset = max(a - 1, 0)
        for offset in range(max_offset + 1):
            if a == 0 and offset > 0:
                continue
            max_j = 0 if a == 0 else _ceil_div(offset + n, a) + 1
            for j in range(max_j + 1):
                if a == 0 and j > 0:
                    continue
                if j == 0 and offset > 0:
                    continue
                head = j * a
                for b in range(n + 1):
                    covered = head + b
                    for c in range(n + 1):
                        if covered >= offset + n:
                            k = 0
                        elif c == 0:
                            continue
                        else:
                            k = _ceil_div(offset + n - covered, c)
                        length = head + b + k * c
                        if length < offset + n:
                            continue
                        if require_suffix and length != offset + n:
                            continue
                        slots: List[Optional[Slot]] = []
                        for t in range(length):
                            if t < head:
                                slots.append(("u", t % a))
                            elif t < head + b:
                                slots.append(("w", t - head))
                            else:
                                slots.append(("v", (t - head - b) % c))
                        assignment = _solve_slots(q, slots, offset)
                        if assignment is None:
                            continue
                        fresh = [0]
                        u = _materialize("u", a, assignment, fresh)
                        v = _materialize("v", c, assignment, fresh)
                        w = _materialize("w", b, assignment, fresh)
                        yield Decomposition(
                            kind="B2a", u=u, v=v, w=w, j=j, k=k,
                            offset=offset, pumped=u * j + w + v * k,
                        )


def find_b2a(
    q: WordLike, require_suffix: bool = False
) -> Optional[Decomposition]:
    """The first B2a witness for *q*, or ``None``.

    >>> find_b2a("RRX") is not None     # RRX = (R)^2 X
    True
    """
    return next(iter_b2a(q, require_suffix), None)


# ----------------------------------------------------------------------
# B2b:  q factor of (uv)^k w v, uvw self-join-free
# ----------------------------------------------------------------------

def iter_b2b(q: WordLike, require_suffix: bool = False):
    """Yield all canonical B2b witnesses for *q*.

    Exponents ``k`` are tried in increasing order, so the first witness
    per component shape has the smallest ``k`` (Lemma 14 chooses ``k`` as
    small as possible).
    """
    q = Word.coerce(q)
    n = len(q)
    for period in range(1, n + 2):
        for a in range(period + 1):
            c = period - a
            max_k = _ceil_div(n, period) + 1
            for k in range(max_k + 1):
                cycle = k * period
                max_offset = period - 1 if k >= 1 else 0
                for offset in range(max_offset + 1):
                    for b in range(n + 1):
                        length = cycle + b + c
                        if length < offset + n:
                            continue
                        if require_suffix and length != offset + n:
                            continue
                        slots: List[Optional[Slot]] = []
                        for t in range(length):
                            if t < cycle:
                                r = t % period
                                slots.append(
                                    ("u", r) if r < a else ("v", r - a)
                                )
                            elif t < cycle + b:
                                slots.append(("w", t - cycle))
                            else:
                                slots.append(("v", t - cycle - b))
                        assignment = _solve_slots(q, slots, offset)
                        if assignment is None:
                            continue
                        fresh = [0]
                        u = _materialize("u", a, assignment, fresh)
                        v = _materialize("v", c, assignment, fresh)
                        w = _materialize("w", b, assignment, fresh)
                        yield Decomposition(
                            kind="B2b", u=u, v=v, w=w, j=0, k=k,
                            offset=offset, pumped=(u + v) * k + w + v,
                        )


def find_b2b(
    q: WordLike, require_suffix: bool = False
) -> Optional[Decomposition]:
    """The first B2b witness for *q*, or ``None``.

    >>> find_b2b("UVUVWV") is not None  # the Claim 5 example query
    True
    """
    return next(iter_b2b(q, require_suffix), None)


# ----------------------------------------------------------------------
# B3:  q factor of u w (uv)^k, uvw self-join-free
# ----------------------------------------------------------------------

def find_b3(q: WordLike) -> Optional[Decomposition]:
    """A B3 witness for *q*, or ``None``.

    >>> find_b3("RXRYRY") is not None   # q3 of Example 3: C3 \\ C2
    True
    """
    q = Word.coerce(q)
    n = len(q)
    for a in range(n + 1):
        for b in range(n + 1):
            for c in range(n + 1):
                period = a + c
                head = a + b
                max_offset = head + max(period, 1)
                for offset in range(max_offset + 1):
                    if offset + n <= head:
                        k = 0
                    elif period == 0:
                        continue
                    else:
                        k = _ceil_div(offset + n - head, period)
                    length = head + k * period
                    if length < offset + n:
                        continue
                    slots: List[Optional[Slot]] = []
                    for t in range(length):
                        if t < a:
                            slots.append(("u", t))
                        elif t < head:
                            slots.append(("w", t - a))
                        else:
                            r = (t - head) % period
                            slots.append(("u", r) if r < a else ("v", r - a))
                    assignment = _solve_slots(q, slots, offset)
                    if assignment is None:
                        continue
                    fresh = [0]
                    u = _materialize("u", a, assignment, fresh)
                    v = _materialize("v", c, assignment, fresh)
                    w = _materialize("w", b, assignment, fresh)
                    return Decomposition(
                        kind="B3", u=u, v=v, w=w, j=0, k=k,
                        offset=offset, pumped=u + w + (u + v) * k,
                    )
    return None


def satisfies_b1(q: WordLike) -> bool:
    """True iff *q* satisfies B1 (= C1 by Lemma 1)."""
    return find_b1(q) is not None


def satisfies_b2a(q: WordLike) -> bool:
    """True iff *q* satisfies B2a."""
    return find_b2a(q) is not None


def satisfies_b2b(q: WordLike) -> bool:
    """True iff *q* satisfies B2b."""
    return find_b2b(q) is not None


def satisfies_b3(q: WordLike) -> bool:
    """True iff *q* satisfies B3."""
    return find_b3(q) is not None
