"""The tetrachotomy classifier (Theorems 2, 3) and its Section 8 extension.

For every path query ``q``, ``CERTAINTY(q)`` is

* in FO                if ``q`` satisfies C1,
* NL-complete          if ``q`` satisfies C2 but not C1,
* PTIME-complete       if ``q`` satisfies C3 but not C2,
* coNP-complete        if ``q`` violates C3,

and which case applies is decidable in polynomial time in ``|q|``
(Theorem 3).  For generalized path queries the same scheme holds with
D1/D2/D3 (Theorem 4); when at least one constant is present the PTIME case
collapses and the classification is a trichotomy FO / NL-complete /
coNP-complete (Theorem 5, via Lemma 30: with a constant, D3 implies D2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.classification.generalized import (
    satisfies_d1,
    satisfies_d2,
    satisfies_d3,
)
from repro.classification.witnesses import (
    c1_violation,
    c2_violation,
    c3_violation,
)
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.words.word import Word, WordLike


class ComplexityClass(enum.Enum):
    """The four complexity classes of Theorem 2."""

    FO = "FO"
    NL_COMPLETE = "NL-complete"
    PTIME_COMPLETE = "PTIME-complete"
    CONP_COMPLETE = "coNP-complete"

    def __str__(self) -> str:
        return self.value

    @property
    def is_tractable(self) -> bool:
        """True for the classes with polynomial-time CERTAINTY(q)."""
        return self is not ComplexityClass.CONP_COMPLETE

    @property
    def is_first_order(self) -> bool:
        return self is ComplexityClass.FO


@dataclass(frozen=True)
class Classification:
    """The outcome of classifying a (generalized) path query.

    Carries the complexity class, the truth values of the syntactic
    conditions, and -- when a condition fails -- the violation witness the
    corresponding hardness reduction consumes.
    """

    query: str
    complexity: ComplexityClass
    c1: bool
    c2: bool
    c3: bool
    c1_witness: Optional[object] = None
    c2_witness: Optional[object] = None
    c3_witness: Optional[object] = None
    has_constants: bool = False

    def __str__(self) -> str:
        conditions = "C1" if not self.has_constants else "D1"
        flags = []
        for name, value in (("1", self.c1), ("2", self.c2), ("3", self.c3)):
            prefix = conditions[0]
            flags.append("{}{}={}".format(prefix, name, "+" if value else "-"))
        return "{}: {} [{}]".format(self.query, self.complexity, " ".join(flags))


QueryInput = Union[WordLike, PathQuery, GeneralizedPathQuery]


def _to_word(q: QueryInput) -> Word:
    if isinstance(q, PathQuery):
        return q.word
    if isinstance(q, GeneralizedPathQuery):
        raise TypeError("use classify_generalized for queries with constants")
    return Word.coerce(q)


def classify(q: QueryInput) -> Classification:
    """Classify ``CERTAINTY(q)`` for a constant-free path query (Theorem 3).

    >>> str(classify("RXRX").complexity)      # Example 3
    'FO'
    >>> str(classify("RXRY").complexity)
    'NL-complete'
    >>> str(classify("RXRYRY").complexity)
    'PTIME-complete'
    >>> str(classify("RXRXRYRY").complexity)
    'coNP-complete'
    """
    if isinstance(q, GeneralizedPathQuery) and q.has_constants():
        return classify_generalized(q)
    if isinstance(q, GeneralizedPathQuery):
        q = q.to_path_query()
    word = _to_word(q)
    c1 = satisfies_c1(word)
    c2 = satisfies_c2(word)
    c3 = satisfies_c3(word)
    if c1:
        complexity = ComplexityClass.FO
    elif c2:
        complexity = ComplexityClass.NL_COMPLETE
    elif c3:
        complexity = ComplexityClass.PTIME_COMPLETE
    else:
        complexity = ComplexityClass.CONP_COMPLETE
    return Classification(
        query=str(word),
        complexity=complexity,
        c1=c1,
        c2=c2,
        c3=c3,
        c1_witness=None if c1 else c1_violation(word),
        c2_witness=None if c2 else c2_violation(word),
        c3_witness=None if c3 else c3_violation(word),
    )


def classify_generalized(q: GeneralizedPathQuery) -> Classification:
    """Classify a generalized path query (Theorems 4 and 5).

    Constant-free queries fall back to :func:`classify`.  With at least
    one constant the result is FO, NL-complete or coNP-complete
    (Theorem 5): D3 implies D2 in the presence of constants (Lemma 30),
    so the PTIME-complete case cannot arise.
    """
    if not q.has_constants():
        return classify(q.to_path_query())
    d1 = satisfies_d1(q)
    d2 = satisfies_d2(q)
    d3 = satisfies_d3(q)
    if d1:
        complexity = ComplexityClass.FO
    elif d2:
        complexity = ComplexityClass.NL_COMPLETE
    elif d3:
        # Unreachable by Lemma 30; kept for defensive completeness.
        complexity = ComplexityClass.PTIME_COMPLETE
    else:
        complexity = ComplexityClass.CONP_COMPLETE
    return Classification(
        query=str(q),
        complexity=complexity,
        c1=d1,
        c2=d2,
        c3=d3,
        has_constants=True,
    )
