"""The complexity classification of CERTAINTY(q) (Sections 3, 4, 8).

* :mod:`repro.classification.conditions` -- the syntactic conditions C1,
  C2, C3 (Section 3), decidable in polynomial time in ``|q|``;
* :mod:`repro.classification.regex_conditions` -- the regex properties
  B1, B2a, B2b, B3 (Definition 1) with explicit decompositions;
* :mod:`repro.classification.witnesses` -- violation witnesses (the
  decompositions used by the hardness reductions, and the Lemma 3 factor
  forms);
* :mod:`repro.classification.generalized` -- conditions D1, D2, D3 for
  generalized path queries (Section 8);
* :mod:`repro.classification.classifier` -- the tetrachotomy classifier
  (Theorem 3) and the generalized classifier (Theorems 4, 5).
"""

from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.classification.regex_conditions import (
    Decomposition,
    find_b1,
    find_b2a,
    find_b2b,
    find_b3,
    iter_b2a,
    iter_b2b,
    satisfies_b1,
    satisfies_b2a,
    satisfies_b2b,
    satisfies_b3,
)
from repro.classification.witnesses import (
    c1_violation,
    c2_violation,
    c3_violation,
    lemma3_factor_witness,
)
from repro.classification.generalized import (
    satisfies_d1,
    satisfies_d2,
    satisfies_d3,
)
from repro.classification.classifier import (
    Classification,
    ComplexityClass,
    classify,
    classify_generalized,
)

__all__ = [
    "satisfies_c1",
    "satisfies_c2",
    "satisfies_c3",
    "Decomposition",
    "find_b1",
    "find_b2a",
    "find_b2b",
    "find_b3",
    "iter_b2a",
    "iter_b2b",
    "satisfies_b1",
    "satisfies_b2a",
    "satisfies_b2b",
    "satisfies_b3",
    "c1_violation",
    "c2_violation",
    "c3_violation",
    "lemma3_factor_witness",
    "satisfies_d1",
    "satisfies_d2",
    "satisfies_d3",
    "Classification",
    "ComplexityClass",
    "classify",
    "classify_generalized",
]
