"""Boolean conjunctive queries over binary relations (Section 2).

A Boolean conjunctive query is a finite set of atoms; it represents the
existential closure of their conjunction.  This module provides the generic
machinery the paper uses around conjunctive queries:

* variables / constants / self-join detection,
* homomorphisms between queries (Definition 18 generalizes to arbitrary
  conjunctive queries) and from queries into sets of facts,
* connected-component splitting (used by Lemma 25).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.queries.atoms import Atom, Term, Variable, is_constant, is_variable


class ConjunctiveQuery:
    """An immutable Boolean conjunctive query: a finite set of binary atoms.

    >>> q = ConjunctiveQuery([Atom("R", Variable("x"), Variable("y")),
    ...                       Atom("R", Variable("y"), Variable("x"))])
    >>> q.has_self_join()
    True
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self._atoms: FrozenSet[Atom] = frozenset(atoms)

    @property
    def atoms(self) -> FrozenSet[Atom]:
        return self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._atoms, key=str))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(("ConjunctiveQuery", self._atoms))

    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self) + "}"

    __repr__ = __str__

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    def variables(self) -> FrozenSet[Variable]:
        """``vars(q)``: all variables occurring in the query."""
        result = frozenset()
        for atom in self._atoms:
            result |= atom.variables()
        return result

    def constants(self) -> FrozenSet:
        """All constants occurring in the query."""
        result = frozenset()
        for atom in self._atoms:
            result |= atom.constants()
        return result

    def relation_names(self) -> FrozenSet[str]:
        """All relation names occurring in the query."""
        return frozenset(a.relation for a in self._atoms)

    def has_self_join(self) -> bool:
        """True iff some relation name occurs in more than one atom."""
        names = [a.relation for a in self._atoms]
        return len(names) != len(set(names))

    def is_self_join_free(self) -> bool:
        """True iff no relation name occurs more than once (Section 2)."""
        return not self.has_self_join()

    # ------------------------------------------------------------------
    # Homomorphisms
    # ------------------------------------------------------------------

    def homomorphisms_into(
        self, facts: Iterable[Tuple[str, Term, Term]]
    ) -> Iterator[Dict[Variable, Term]]:
        """Enumerate all homomorphisms from this query into a set of facts.

        *facts* is an iterable of ``(relation, key, value)`` triples of
        constants.  A homomorphism is a substitution θ (identity on
        constants) with ``θ(q) ⊆ facts``.  Enumeration is by backtracking
        over atoms ordered to maximize join connectivity.
        """
        by_relation: Dict[str, List[Tuple[Term, Term]]] = {}
        for relation, key, value in facts:
            by_relation.setdefault(relation, []).append((key, value))

        atoms = _connectivity_order(list(self._atoms))

        def extend(
            index: int, theta: Dict[Variable, Term]
        ) -> Iterator[Dict[Variable, Term]]:
            if index == len(atoms):
                yield dict(theta)
                return
            atom = atoms[index]
            for key, value in by_relation.get(atom.relation, ()):  # noqa: B020
                binding = _match_atom(atom, key, value, theta)
                if binding is None:
                    continue
                added = [v for v in binding if v not in theta]
                theta.update(binding)
                yield from extend(index + 1, theta)
                for v in added:
                    del theta[v]

        yield from extend(0, {})

    def satisfied_by(self, facts: Iterable[Tuple[str, Term, Term]]) -> bool:
        """True iff some homomorphism maps this query into *facts*."""
        return next(self.homomorphisms_into(facts), None) is not None

    def homomorphism_to(
        self, other: "ConjunctiveQuery"
    ) -> Optional[Dict[Variable, Term]]:
        """A homomorphism from this query to *other*, or ``None``.

        Variables of *other* are treated as (distinct fresh) constants, per
        the standard definition of conjunctive-query homomorphism.
        """
        target = [(a.relation, a.key, a.value) for a in other.atoms]
        return next(self.homomorphisms_into(target), None)

    # ------------------------------------------------------------------
    # Component splitting (Lemma 25)
    # ------------------------------------------------------------------

    def connected_components(self) -> List["ConjunctiveQuery"]:
        """Split into variable-connected components.

        Two atoms are connected when they share a variable.  Lemma 25: the
        certain answer of a variable-disjoint union is the conjunction of
        the certain answers of the components.  Atoms without variables form
        singleton components.
        """
        atoms = list(self._atoms)
        parent = list(range(len(atoms)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        by_variable: Dict[Variable, List[int]] = {}
        for idx, atom in enumerate(atoms):
            for var in atom.variables():
                by_variable.setdefault(var, []).append(idx)
        for indices in by_variable.values():
            for other in indices[1:]:
                union(indices[0], other)

        groups: Dict[int, List[Atom]] = {}
        for idx, atom in enumerate(atoms):
            groups.setdefault(find(idx), []).append(atom)
        return [ConjunctiveQuery(group) for group in groups.values()]


def _match_atom(
    atom: Atom, key: Term, value: Term, theta: Dict[Variable, Term]
) -> Optional[Dict[Variable, Term]]:
    """Try to match *atom* against the fact ``(atom.relation, key, value)``.

    Returns the new bindings required (possibly empty), or ``None`` if the
    match is inconsistent with *theta*.
    """
    binding: Dict[Variable, Term] = {}
    for term, target in ((atom.key, key), (atom.value, value)):
        if is_constant(term):
            if term != target:
                return None
        else:
            bound = theta.get(term, binding.get(term))
            if bound is None:
                binding[term] = target
            elif bound != target:
                return None
    return binding


def _connectivity_order(atoms: List[Atom]) -> List[Atom]:
    """Order atoms so each one (after the first) shares a variable with an
    earlier one when possible; this keeps backtracking search well-pruned."""
    if not atoms:
        return []
    remaining = sorted(atoms, key=str)
    ordered = [remaining.pop(0)]
    seen_vars = set(ordered[0].variables())
    while remaining:
        for i, atom in enumerate(remaining):
            if atom.variables() & seen_vars:
                ordered.append(remaining.pop(i))
                seen_vars |= atom.variables()
                break
        else:
            atom = remaining.pop(0)
            ordered.append(atom)
            seen_vars |= atom.variables()
    return ordered
