"""Query representations: atoms, conjunctive queries, and (generalized) path queries.

The paper (Section 2) works with Boolean conjunctive queries over binary
relations whose first position is the primary key.  Path queries are the
special case ``R1(x1,x2), R2(x2,x3), ..., Rk(xk,xk+1)`` with all variables
distinct; they are represented losslessly by the word ``R1R2...Rk``.
Section 8 extends path queries with constants ("generalized path queries").
"""

from repro.queries.atoms import Atom, Variable, is_constant, is_variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.path_query import PathQuery, RootedPathQuery
from repro.queries.generalized import (
    GeneralizedPathQuery,
    TerminalWord,
    homomorphism_offsets,
    has_homomorphism,
    has_prefix_homomorphism,
)

__all__ = [
    "Atom",
    "Variable",
    "is_constant",
    "is_variable",
    "ConjunctiveQuery",
    "PathQuery",
    "RootedPathQuery",
    "GeneralizedPathQuery",
    "TerminalWord",
    "homomorphism_offsets",
    "has_homomorphism",
    "has_prefix_homomorphism",
]
