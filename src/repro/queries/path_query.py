"""Path queries (Section 2) and rooted path queries ``q[c]`` (Definition 12).

A path query is the constant-free Boolean conjunctive query

    ``q = { R1(x1, x2), R2(x2, x3), ..., Rk(xk, xk+1) }``

with distinct variables; it is represented losslessly by the word
``R1 R2 ... Rk``.  ``q[c]`` (Definition 12) roots the query at a constant:
``q[c] = { R1(c, x2), R2(x2, x3), ..., Rk(xk, xk+1) }``.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.queries.atoms import Atom, Term, Variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.words.word import Word, WordLike


class PathQuery:
    """A path query, wrapping its word representation.

    >>> q = PathQuery("RRX")
    >>> q.word
    Word('RRX')
    >>> print(q.to_conjunctive_query())
    {R(x1, x2), R(x2, x3), X(x3, x4)}
    """

    __slots__ = ("_word",)

    def __init__(self, word: WordLike) -> None:
        self._word = Word.coerce(word)

    @property
    def word(self) -> Word:
        """The word ``R1 R2 ... Rk`` over the alphabet of relation names."""
        return self._word

    def __len__(self) -> int:
        return len(self._word)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathQuery):
            return self._word == other._word
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("PathQuery", self._word))

    def __str__(self) -> str:
        return str(self._word)

    def __repr__(self) -> str:
        return "PathQuery({!r})".format(str(self._word))

    def has_self_join(self) -> bool:
        """True iff some relation name occurs more than once."""
        return len(self._word.alphabet()) != len(self._word)

    def is_self_join_free(self) -> bool:
        return not self.has_self_join()

    def variables(self) -> List[Variable]:
        """The canonical variables ``x1, ..., xk+1``."""
        return [Variable("x{}".format(i + 1)) for i in range(len(self._word) + 1)]

    def atoms(self) -> Iterator[Atom]:
        """The atoms ``Ri(xi, xi+1)`` with canonical variable names."""
        variables = self.variables()
        for i, relation in enumerate(self._word):
            yield Atom(relation, variables[i], variables[i + 1])

    def to_conjunctive_query(self) -> ConjunctiveQuery:
        """The Boolean conjunctive query this path query denotes."""
        return ConjunctiveQuery(self.atoms())

    def rooted(self, constant: Term) -> "RootedPathQuery":
        """``q[c]``: this query with the first variable replaced by *constant*."""
        return RootedPathQuery(self._word, constant)

    def tail(self) -> "PathQuery":
        """The path query obtained by dropping the left-most atom."""
        if not self._word:
            raise ValueError("the empty path query has no tail")
        return PathQuery(self._word[1:])


class RootedPathQuery:
    """The Boolean conjunctive query ``q[c]`` of Definition 12.

    ``q[c] = { R1(c, x2), R2(x2, x3), ..., Rk(xk, xk+1) }`` where ``c`` is a
    constant.  Used by the first-order rewriting of Lemma 12 and by the
    *terminal* test of Definition 15 / Lemma 17.
    """

    __slots__ = ("_word", "_root")

    def __init__(self, word: WordLike, root: Term) -> None:
        self._word = Word.coerce(word)
        if not self._word:
            raise ValueError("a rooted path query needs at least one atom")
        if isinstance(root, Variable):
            raise TypeError("the root of q[c] must be a constant")
        self._root = root

    @property
    def word(self) -> Word:
        return self._word

    @property
    def root(self) -> Term:
        """The constant ``c``."""
        return self._root

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RootedPathQuery):
            return (self._word, self._root) == (other._word, other._root)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RootedPathQuery", self._word, self._root))

    def __str__(self) -> str:
        return "{}[{}]".format(self._word, self._root)

    __repr__ = __str__

    def to_conjunctive_query(self) -> ConjunctiveQuery:
        """The conjunctive query with the root constant substituted in."""
        variables = [Variable("x{}".format(i + 1)) for i in range(len(self._word) + 1)]
        atoms = []
        for i, relation in enumerate(self._word):
            key: Term = self._root if i == 0 else variables[i]
            atoms.append(Atom(relation, key, variables[i + 1]))
        return ConjunctiveQuery(atoms)
