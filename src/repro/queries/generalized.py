"""Generalized path queries -- path queries with constants (Section 8).

A generalized path query (Definition 16) is

    ``q = { R1(s1, s2), R2(s2, s3), ..., Rk(sk, sk+1) }``

where the terms ``s1, ..., sk+1`` are constants or variables, *all
distinct*.  A constant can occur at most twice: at a non-primary-key
position and the next primary-key position -- i.e. constants live on the
*nodes* of the path.  We therefore represent a generalized path query by its
word of relation names plus a tuple of ``k+1`` node labels, each ``None``
(a fresh variable) or a constant.

This module also implements:

* ``char(q)`` -- the characteristic prefix (Definition 16);
* ``[[q, γ]]`` -- words with a terminal symbol, :class:`TerminalWord`
  (Definition 17), where ``γ`` is a constant or the special symbol ``⊤``
  (represented by ``None``);
* ``ext(q)`` -- the extended constant-free query (Definition 22);
* homomorphisms and prefix homomorphisms between terminal words
  (Definition 18), the ingredients of conditions D1, D2, D3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.queries.atoms import Atom, Term, Variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.path_query import PathQuery
from repro.words.word import Word, WordLike

#: Node label meaning "a fresh variable".
VAR = None


@dataclass(frozen=True)
class TerminalWord:
    """``[[q, γ]]`` (Definition 17): a word with a terminal symbol.

    ``terminal is None`` encodes the distinguished symbol ``⊤`` (no
    constant): ``[[q, ⊤]]`` is the constant-free path query ``q``.
    Otherwise the last variable of the path query is replaced by the
    constant ``terminal``.
    """

    word: Word
    terminal: Optional[Term] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "word", Word.coerce(self.word))
        if isinstance(self.terminal, Variable):
            raise TypeError("the terminal of [[q, γ]] must be a constant or None")

    @property
    def has_constant(self) -> bool:
        return self.terminal is not None

    def __str__(self) -> str:
        gamma = "⊤" if self.terminal is None else self.terminal
        return "[[{}, {}]]".format(self.word, gamma)

    __repr__ = __str__


def homomorphism_offsets(source: TerminalWord, target: TerminalWord) -> List[int]:
    """All offsets witnessing a homomorphism from *source* to *target*.

    Both queries are simple paths with pairwise-distinct terms, so every
    homomorphism maps the source chain onto a contiguous forward segment of
    the target; it is determined by the offset of that segment.  Offset
    ``o`` is valid iff the words match (``source.word`` occurs in
    ``target.word`` at offset ``o``) and constants are respected: if the
    source ends in constant ``c`` then the target node ``o + |source|``
    must be the constant ``c`` -- which, since the target's only constant
    node is its last one, forces ``o + |source| == |target|`` and equal
    terminal constants.
    """
    p = source.word
    t = target.word
    result = []
    for offset in range(len(t) - len(p) + 1):
        if t.symbols[offset: offset + len(p)] != p.symbols:
            continue
        if source.terminal is not None:
            end_node = offset + len(p)
            if end_node != len(t) or target.terminal != source.terminal:
                continue
        result.append(offset)
    return result


def has_homomorphism(source: TerminalWord, target: TerminalWord) -> bool:
    """True iff there is a homomorphism from *source* to *target*."""
    return bool(homomorphism_offsets(source, target))


def has_prefix_homomorphism(source: TerminalWord, target: TerminalWord) -> bool:
    """True iff there is a *prefix* homomorphism (Definition 18): the first
    term of the source maps to the first term of the target, i.e. offset 0."""
    return 0 in homomorphism_offsets(source, target)


@dataclass(frozen=True)
class Segment:
    """A maximal constant-rooted piece of ``q \\ char(q)`` (Lemma 27).

    ``root`` is the constant the piece starts at; ``word`` its trace;
    ``end`` the constant it must end at, or ``None`` if it ends in a
    variable.
    """

    root: Term
    word: Word
    end: Optional[Term] = None

    def __str__(self) -> str:
        end = "?" if self.end is None else self.end
        return "{} -{}-> {}".format(self.root, self.word, end)


class GeneralizedPathQuery:
    """A generalized path query: word + node labels (Definition 16).

    >>> q = GeneralizedPathQuery("RSTR", {2: 0, 3: 1})   # Example 8
    >>> str(q.char())
    '[[RS, 0]]'
    """

    __slots__ = ("_word", "_nodes")

    def __init__(
        self,
        word: WordLike,
        constants: Optional[Dict[int, Term]] = None,
        nodes: Optional[Sequence[Optional[Term]]] = None,
    ) -> None:
        self._word = Word.coerce(word)
        size = len(self._word) + 1
        if nodes is not None:
            labels = list(nodes)
            if len(labels) != size:
                raise ValueError(
                    "expected {} node labels, got {}".format(size, len(labels))
                )
        else:
            labels = [VAR] * size
            for position, constant in (constants or {}).items():
                if not 0 <= position < size:
                    raise ValueError("node position {} out of range".format(position))
                labels[position] = constant
        for label in labels:
            if isinstance(label, Variable):
                raise TypeError("node labels must be constants or None")
        fixed = [c for c in labels if c is not None]
        if len(fixed) != len(set(fixed)):
            raise ValueError(
                "all terms of a generalized path query must be distinct "
                "(Definition 16): duplicate constant among {}".format(fixed)
            )
        self._nodes: Tuple[Optional[Term], ...] = tuple(labels)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def word(self) -> Word:
        return self._word

    @property
    def nodes(self) -> Tuple[Optional[Term], ...]:
        """Node labels; index i is the term shared by atoms i-1 and i."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._word)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GeneralizedPathQuery):
            return (self._word, self._nodes) == (other._word, other._nodes)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("GeneralizedPathQuery", self._word, self._nodes))

    def __str__(self) -> str:
        parts = []
        for i, relation in enumerate(self._word):
            left = self._term_name(i)
            right = self._term_name(i + 1)
            parts.append("{}({}, {})".format(relation, left, right))
        return "{" + ", ".join(parts) + "}"

    __repr__ = __str__

    def _term_name(self, i: int):
        label = self._nodes[i]
        return Variable("x{}".format(i + 1)) if label is None else label

    def constants(self) -> List[Term]:
        """All constants, in node order."""
        return [c for c in self._nodes if c is not None]

    def has_constants(self) -> bool:
        return any(c is not None for c in self._nodes)

    def is_path_query(self) -> bool:
        """True iff constant-free, i.e. an ordinary path query."""
        return not self.has_constants()

    def to_path_query(self) -> PathQuery:
        if not self.is_path_query():
            raise ValueError("query contains constants: {}".format(self))
        return PathQuery(self._word)

    def to_conjunctive_query(self) -> ConjunctiveQuery:
        atoms = []
        for i, relation in enumerate(self._word):
            atoms.append(Atom(relation, self._term_name(i), self._term_name(i + 1)))
        return ConjunctiveQuery(atoms)

    # ------------------------------------------------------------------
    # char(q), ext(q), segments (Section 8)
    # ------------------------------------------------------------------

    def first_constant_node(self) -> Optional[int]:
        """The smallest node index carrying a constant, or ``None``."""
        for index, label in enumerate(self._nodes):
            if label is not None:
                return index
        return None

    def char(self) -> TerminalWord:
        """``char(q)``: the characteristic prefix, as ``[[word, γ]]``.

        The longest atom-prefix whose key positions are all variables; its
        final term may be a constant (Definition 16).
        """
        index = self.first_constant_node()
        if index is None:
            return TerminalWord(self._word, None)
        return TerminalWord(self._word[:index], self._nodes[index])

    def char_length(self) -> int:
        """Number of atoms in ``char(q)``."""
        index = self.first_constant_node()
        return len(self._word) if index is None else index

    def remainder(self) -> "GeneralizedPathQuery":
        """``q \\ char(q)``: the atoms after the characteristic prefix.

        If nonempty, it starts at a constant node (Lemma 21 applies).
        """
        start = self.char_length()
        return GeneralizedPathQuery(
            self._word[start:], nodes=self._nodes[start:]
        )

    def segments(self) -> List[Segment]:
        """Split the remainder into constant-rooted segments (Lemma 27).

        Each segment runs from one constant node to the next (or to the
        final node).  The union of the segments is ``q \\ char(q)``; by
        Lemma 25 their certain answers combine conjunctively.
        """
        start = self.char_length()
        if start == len(self._word):
            return []
        constant_positions = [
            i for i in range(start, len(self._nodes)) if self._nodes[i] is not None
        ]
        result = []
        for rank, begin in enumerate(constant_positions):
            if begin == len(self._word):
                break
            if rank + 1 < len(constant_positions):
                stop = constant_positions[rank + 1]
            else:
                stop = len(self._word)
            result.append(
                Segment(
                    root=self._nodes[begin],
                    word=self._word[begin:stop],
                    end=self._nodes[stop],
                )
            )
        return result

    def ext(self, fresh_relation: str = "N") -> PathQuery:
        """``ext(q)`` (Definition 22): the extended constant-free query.

        If *q* is constant-free, returns *q* itself as a :class:`PathQuery`.
        Otherwise, with ``char(q) = [[p, c]]``, returns the path query
        ``p·N`` where ``N`` is a fresh relation name (*fresh_relation* is
        uniquified if it collides with a relation of *q*).
        """
        if not self.has_constants():
            return PathQuery(self._word)
        name = fresh_relation
        counter = 0
        while name in self._word.alphabet():
            counter += 1
            name = "{}{}".format(fresh_relation, counter)
        prefix = self.char().word
        return PathQuery(prefix + Word([name]))
