"""Terms and atoms (Section 2 of the paper).

We consider only binary relation names; the first position is the primary
key.  A term is a :class:`Variable` or a constant.  Constants are arbitrary
hashable Python values that are not :class:`Variable` instances (strings and
integers in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name.

    >>> Variable("x") == Variable("x")
    True
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "Variable({!r})".format(self.name)


Term = Union[Variable, str, int]


def is_variable(term: Term) -> bool:
    """True iff *term* is a query variable."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True iff *term* is a constant (i.e. not a variable)."""
    return not isinstance(term, Variable)


@dataclass(frozen=True)
class Atom:
    """A binary atom ``R(key, value)``; the first position is the primary key.

    An atom without variables is a *fact* (see :mod:`repro.db.facts`, which
    provides the dedicated :class:`~repro.db.facts.Fact` type used by
    database instances).
    """

    relation: str
    key: Term
    value: Term

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("relation name must be nonempty")

    @property
    def terms(self):
        """The pair ``(key, value)``."""
        return (self.key, self.value)

    def variables(self) -> frozenset:
        """The set of variables occurring in this atom."""
        return frozenset(t for t in self.terms if is_variable(t))

    def constants(self) -> frozenset:
        """The set of constants occurring in this atom."""
        return frozenset(t for t in self.terms if is_constant(t))

    def is_fact(self) -> bool:
        """True iff the atom contains no variables."""
        return not self.variables()

    def substitute(self, mapping) -> "Atom":
        """Apply a substitution (dict from :class:`Variable` to terms).

        Variables absent from *mapping* are left unchanged; constants are
        always left unchanged (substitutions are the identity on constants,
        Definition 18).
        """

        def apply(term: Term) -> Term:
            if is_variable(term):
                return mapping.get(term, term)
            return term

        return Atom(self.relation, apply(self.key), apply(self.value))

    def __str__(self) -> str:
        return "{}({}, {})".format(self.relation, self.key, self.value)
