"""Deterministic fault injection for the serving transports.

PR 6 could provoke exactly one failure: ``ProcessTransport.fail_replies``
hard-coded "the child commits, then dies before replying".  Chaos
testing needs the whole menagerie -- crashes before *and* after the
commit point, delayed replies that blow deadlines, duplicated
deliveries that probe idempotence -- on chosen shards, batches, and op
kinds, and it needs every run to replay bit-for-bit.  A
:class:`FaultPlan` is that surface: a seeded list of :class:`FaultRule`
triggers the transports consult once per batch (:meth:`FaultPlan.draw`)
*before* touching the wire, so the same plan injects the same faults at
the same points on every run, on both transports.

Fault kinds (what the transport does when a rule fires):

* ``crash`` -- the shard dies **after committing** the batch but before
  replying (the generalization of ``fail_replies``); recovery must
  replay the journal and must *not* re-apply the writes.
* ``drop``  -- the shard dies **before applying** the batch (the request
  reached the wire and vanished); recovery must re-run it.
* ``delay`` -- the batch is stalled for ``seconds`` before dispatch,
  long enough to push lagging requests past their deadline.
* ``dup``   -- the batch is **delivered twice**; the second delivery's
  results are discarded and sequence numbers must shield the writes.

Three further kinds target the **journal tier** rather than the wire
(consulted by
:class:`~repro.serving.replication.ReplicatedJournalStore` on primary
writes, armed through ``AsyncCertaintyServer(journal_faults=...)`` /
``--journal-chaos`` -- a *separate* plan from the transport one, so
transport draws never consume journal rule budgets or vice versa):

* ``write_error`` -- the primary store raises before applying the
  write; the replicated store must fail over and retry with zero lost
  committed writes.
* ``torn_write``  -- like ``write_error``, but the primary's persistent
  log is first torn (:meth:`~repro.serving.journal.JournalStore.tear`),
  so a later reopen of that file exercises torn-tail recovery for real.
* ``stall``       -- the primary write hangs for ``seconds`` before
  proceeding (no failover, just latency).

Rules select by shard, batch index (per-shard draw counter), op kind,
``every`` N-th batch, or probability ``p`` (seeded per ``(seed, kind,
shard, batch)``, so probabilistic schedules replay too); ``times``
bounds total firings.  The string grammar used by ``--chaos`` is
``seed=N;KIND:key=value,...;KIND...``:

>>> plan = FaultPlan.parse("seed=7;crash:op=delta,times=1;delay:seconds=0.0,every=2")
>>> [a.kind for a in plan.draw(0, ["register"])]   # batch 0: nothing matches
[]
>>> [a.kind for a in plan.draw(0, ["delta"])]      # batch 1: crash + 2nd batch
['crash', 'delay']
>>> [a.kind for a in plan.draw(0, ["delta"])]      # crash exhausted its budget
[]
>>> plan.describe()["injected"]
{'crash': 1, 'delay': 1}
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Union

#: Recognised fault kinds, in documentation order.  Transport kinds
#: first, journal kinds appended (append-only: probabilistic draws are
#: seeded by each kind's index).
FAULT_KINDS = ("crash", "drop", "delay", "dup", "write_error",
               "torn_write", "stall")

#: The kinds the replicated journal tier injects on primary writes.
JOURNAL_FAULT_KINDS = ("write_error", "torn_write", "stall")

_INT_KEYS = ("shard", "batch", "every", "times")
_FLOAT_KEYS = ("seconds", "p")


class FaultAction:
    """One fault to inject into the current batch (kind + delay)."""

    __slots__ = ("kind", "seconds")

    def __init__(self, kind: str, seconds: float = 0.0) -> None:
        self.kind = kind
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "delay":
            return "FaultAction('delay', seconds={})".format(self.seconds)
        return "FaultAction({!r})".format(self.kind)


class FaultRule:
    """A single trigger: *kind* fires when every given selector matches.

    Selectors (all optional; an unselective rule fires on every batch):

    * ``shard``   -- only this shard id.
    * ``batch``   -- only this batch index (the per-shard draw counter,
      starting at 0; retries after a crash do **not** redraw).
    * ``every``   -- every N-th batch (batches N-1, 2N-1, ...; the very
      first batch -- usually the registration -- is spared).
    * ``op``      -- only batches containing this op kind
      (``solve`` / ``delta`` / ``register`` / ``get``).
    * ``p``       -- fire with this probability, drawn deterministically
      from the plan seed and the (shard, batch) coordinates.
    * ``times``   -- stop after this many total firings.

    ``seconds`` is the stall length for ``delay`` / ``stall`` rules
    (ignored otherwise).
    """

    def __init__(
        self,
        kind: str,
        seconds: float = 0.0,
        shard: Optional[int] = None,
        batch: Optional[int] = None,
        every: Optional[int] = None,
        p: Optional[float] = None,
        op: Optional[str] = None,
        times: Optional[int] = None,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind {!r} (expected one of {})".format(
                    kind, ", ".join(FAULT_KINDS)
                )
            )
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        if every is not None and every < 1:
            raise ValueError("every must be >= 1")
        if p is not None and not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if times is not None and times < 0:
            raise ValueError("times must be >= 0")
        self.kind = kind
        self.seconds = seconds
        self.shard = shard
        self.batch = batch
        self.every = every
        self.p = p
        self.op = op
        self.times = times
        self.fired = 0

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        """Parse one ``KIND[:key=value[,key=value...]]`` segment."""
        head, _, tail = text.strip().partition(":")
        kwargs: Dict[str, Union[int, float, str]] = {}
        if tail:
            for pair in tail.split(","):
                key, sep, value = pair.strip().partition("=")
                if not sep:
                    raise ValueError(
                        "bad fault option {!r} (expected key=value)".format(pair)
                    )
                key = key.strip()
                value = value.strip()
                if key in _INT_KEYS:
                    kwargs[key] = int(value)
                elif key in _FLOAT_KEYS:
                    kwargs[key] = float(value)
                elif key == "op":
                    kwargs[key] = value
                else:
                    raise ValueError("unknown fault option {!r}".format(key))
        return cls(head.strip(), **kwargs)

    def matches(
        self,
        seed: int,
        shard_id: int,
        batch: int,
        op_kinds: Sequence[str],
    ) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.shard is not None and shard_id != self.shard:
            return False
        if self.batch is not None and batch != self.batch:
            return False
        if self.every is not None and (batch + 1) % self.every != 0:
            return False
        if self.op is not None and self.op not in op_kinds:
            return False
        if self.p is not None:
            # Int tuples hash unsalted, so the draw is identical across
            # interpreter runs -- probabilistic chaos still replays.
            draw = random.Random(
                hash((seed, FAULT_KINDS.index(self.kind), shard_id, batch))
            ).random()
            return draw < self.p
        return True

    def describe(self) -> str:
        parts = [self.kind]
        for key in ("shard", "batch", "every", "op", "p", "times"):
            value = getattr(self, key)
            if value is not None:
                parts.append("{}={}".format(key, value))
        if self.kind in ("delay", "stall"):
            parts.append("seconds={}".format(self.seconds))
        return ",".join(parts)


class FaultPlan:
    """A seeded, thread-safe schedule of faults shared by all shards.

    Transports call :meth:`draw` exactly once per *fresh* batch (never
    on a retry), passing the op kinds in the batch; the plan advances
    that shard's batch counter and returns the actions to inject.  All
    mutable state sits behind one lock, so a plan can be shared across
    shard worker threads.
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), seed: int = 0
    ) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._batches: Dict[int, int] = {}
        self.injected: Dict[str, int] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--chaos`` spec: ``;``-separated rule segments, with
        an optional ``seed=N`` segment anywhere."""
        seed = 0
        rules = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                seed = int(segment[len("seed="):])
                continue
            rules.append(FaultRule.parse(segment))
        return cls(rules, seed=seed)

    def draw(
        self, shard_id: int, op_kinds: Sequence[str] = ()
    ) -> List[FaultAction]:
        """Advance *shard_id*'s batch counter and return the faults to
        inject into this batch (possibly empty)."""
        with self._lock:
            batch = self._batches.get(shard_id, 0)
            self._batches[shard_id] = batch + 1
            actions = []
            for rule in self.rules:
                if rule.matches(self.seed, shard_id, batch, op_kinds):
                    rule.fired += 1
                    self.injected[rule.kind] = (
                        self.injected.get(rule.kind, 0) + 1
                    )
                    actions.append(FaultAction(rule.kind, rule.seconds))
            return actions

    def batches_drawn(self, shard_id: int) -> int:
        with self._lock:
            return self._batches.get(shard_id, 0)

    def describe(self) -> dict:
        """Plain-data summary for ``stats()["faults"]``."""
        with self._lock:
            return {
                "armed": True,
                "seed": self.seed,
                "rules": [rule.describe() for rule in self.rules],
                "injected": dict(sorted(self.injected.items())),
            }

    def reset(self) -> None:
        """Forget batch counters and firing history (rules stay)."""
        with self._lock:
            self._batches.clear()
            self.injected.clear()
            for rule in self.rules:
                rule.fired = 0


def make_fault_plan(
    spec: Union[None, str, FaultPlan, Iterable[FaultRule]]
) -> Optional[FaultPlan]:
    """Normalize a user-facing fault spec into a plan (or ``None``).

    Accepts ``None`` (no faults), an existing :class:`FaultPlan`, a
    ``--chaos`` spec string, or an iterable of :class:`FaultRule`.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        return FaultPlan.parse(spec)
    return FaultPlan(spec)
