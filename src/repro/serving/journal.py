"""The durable journal tier: resident state that outlives the server.

PR 5 gave every :class:`~repro.serving.transport.ProcessTransport` a
router-side **journal** -- the current facts-only snapshot of each
resident, advanced by every forwarded delta -- used for crash replay and
for rehydrating stripped lazy certificates.  That journal was an ad-hoc
in-memory dict: a child crash was survivable, a *server* restart lost
everything (ROADMAP open item 3).

This module turns the journal into a seam:

* :class:`JournalStore` -- the abstract store.  Per shard it records
  registrations (facts-only snapshots) and forwarded
  :class:`~repro.db.delta.Delta`\\ s, each stamped with the transport's
  per-shard monotonic **sequence number**, and answers the questions the
  serving layer asks: the current folded snapshot of a resident
  (:meth:`~JournalStore.get`), everything a fresh child must replay
  (:meth:`~JournalStore.residents`), the shard's high-water sequence
  (:meth:`~JournalStore.last_seq`), and where every durable resident
  lives (:meth:`~JournalStore.placements` -- the server's cold-start
  routing table).
* :class:`MemoryJournalStore` -- the status quo, behind the seam: plain
  dicts, no durability, zero overhead.
* :class:`SqliteJournalStore` -- an append-only op log in a single
  sqlite file (stdlib :mod:`sqlite3`, no new dependencies).  Snapshots
  and deltas are appended as pickled rows (the facts-only
  :meth:`~repro.db.instance.DatabaseInstance.__reduce__` contract keeps
  them process-portable); a RAM view of the folded snapshots keeps reads
  off the disk path.  Every *compact_every* delta rows per resident the
  log is **compacted**: the resident's rows are replaced by one snapshot
  row holding the folded instance, so the log stays proportional to the
  resident set, not to history.

Appends are **idempotent**: a row whose sequence number is at or below
the shard's high-water mark is a redelivery (the transport retried a
batch whose first attempt already reached the journal) and is dropped.
Together with the child-side skip in
:meth:`repro.serving.shard.ShardCore.run_batch` this gives the serving
layer at-least-once delivery with exactly-once effect.

Persistent log records are **checksummed and length-prefixed**
(:func:`pack_record` / :func:`unpack_record`): every payload carries a
little-endian ``(length, crc32)`` header, so a torn write -- a crash
mid-append, a truncated file, a flipped byte -- is *detected* on reopen
instead of replayed as garbage.  Recovery truncates the log at the
first corrupt or incomplete record, re-derives ``last_seq`` from the
intact prefix, and counts the dropped tail as ``truncated_ops`` in
:meth:`~JournalStore.health`.

Two more backends live in :mod:`repro.serving.replication` (imported
lazily by :func:`make_journal_store`): ``kv:`` journals over a minimal
get/set/append key-value interface, and ``replicated:`` -- one primary
plus follower replicas that tail the primary's op log, with promotion
on primary failure.

>>> blob = pack_record(b"payload")
>>> unpack_record(blob)
(b'payload', 15)
>>> try:
...     unpack_record(blob[:-2])
... except CorruptRecord as torn:
...     print(torn)
record payload truncated (5 of 7 bytes)

>>> store = MemoryJournalStore()
>>> journal = store.shard(0)
>>> from repro.db.instance import DatabaseInstance
>>> journal.register("toy", DatabaseInstance.from_triples([("R", 0, 1)]), seq=1)
>>> sorted(journal.residents())
['toy']
>>> journal.last_seq()
1
>>> make_journal_store("memory").kind
'memory'
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import struct
import threading
import zlib
from typing import Dict, List, Optional, Tuple, Union

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance

#: Record header: little-endian payload length + crc32 of the payload.
_FRAME = struct.Struct("<II")


class CorruptRecord(ValueError):
    """A log record failed its length or checksum check (torn tail)."""


def pack_record(data: bytes) -> bytes:
    """Frame *data* with the length + crc32 header for durable logs."""
    return _FRAME.pack(len(data), zlib.crc32(data)) + data


def unpack_record(buffer: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Read the framed record at *offset*; returns ``(data, end)``.

    *end* is the offset one past the record, so concatenated frames (the
    file-backed kv log) iterate by feeding it back in.  Raises
    :class:`CorruptRecord` when the header or payload is incomplete or
    the checksum does not match -- the torn-tail signal.
    """
    header_end = offset + _FRAME.size
    if len(buffer) < header_end:
        raise CorruptRecord(
            "record header truncated ({} of {} bytes)".format(
                len(buffer) - offset, _FRAME.size
            )
        )
    length, crc = _FRAME.unpack_from(buffer, offset)
    end = header_end + length
    if len(buffer) < end:
        raise CorruptRecord(
            "record payload truncated ({} of {} bytes)".format(
                len(buffer) - header_end, length
            )
        )
    data = bytes(buffer[header_end:end])
    if zlib.crc32(data) != crc:
        raise CorruptRecord("record checksum mismatch")
    return data, end


class JournalStore:
    """The seam between the serving layer and resident durability.

    One store serves every shard of a server; all methods take the shard
    id explicitly and must be safe to call from concurrent shard-worker
    threads.  Transports hold a :class:`ShardJournal` view bound to
    their shard (see :meth:`shard`).

    Write methods take the op's per-shard sequence number (``seq=0``
    means unstamped: always applied, never replay-protected).  A stamped
    append with ``seq <= last_seq(shard)`` is a redelivery and must be
    ignored.
    """

    #: Short name surfaced in stats (``"memory"``, ``"sqlite"``).
    kind = "abstract"

    def shard(self, shard_id: int) -> "ShardJournal":
        """A view of this store bound to one shard."""
        return ShardJournal(self, shard_id)

    # -- writes --------------------------------------------------------

    def register(
        self,
        shard_id: int,
        name: str,
        db: DatabaseInstance,
        seq: int = 0,
    ) -> None:
        """Record a registration: *db* becomes *name*'s snapshot,
        superseding any earlier ops for the name."""
        raise NotImplementedError

    def delta(
        self, shard_id: int, name: str, delta: Delta, seq: int = 0
    ) -> None:
        """Append a forwarded delta against *name*'s current snapshot.

        Raises :class:`KeyError` if the name was never registered on the
        shard -- callers guard with :meth:`get`.
        """
        raise NotImplementedError

    def seal(self, shard_id: int, seq: int) -> None:
        """Advance the shard's high-water mark to *seq* without an op.

        The replication tier uses this after snapshot-shipping a
        follower: the shipped snapshots already contain every write up
        to the primary's high-water, so the follower's ``last_seq`` must
        jump there in one step (stamping each snapshot would trip the
        redelivery guard after the first).  A seal at or below the
        current high-water is a no-op.
        """
        raise NotImplementedError

    # -- reads ---------------------------------------------------------

    def get(self, shard_id: int, name: str) -> Optional[DatabaseInstance]:
        """The current folded snapshot of *name*, or ``None``."""
        raise NotImplementedError

    def residents(self, shard_id: int) -> Dict[str, DatabaseInstance]:
        """Every resident of the shard with its folded snapshot (a copy)."""
        raise NotImplementedError

    def last_seq(self, shard_id: int) -> int:
        """The shard's high-water sequence number (0 when empty)."""
        raise NotImplementedError

    def placements(self) -> Dict[str, int]:
        """name -> shard for every durable resident: the cold-start
        routing table a reopened server pins before serving."""
        raise NotImplementedError

    def read_snapshot(
        self, shard_id: int, name: str
    ) -> Optional[DatabaseInstance]:
        """The freshest *available* snapshot of *name* -- the degraded-read
        path.  The default is :meth:`get`; the replicated store overrides
        it to fall back to the freshest caught-up replica when the
        primary cannot answer."""
        return self.get(shard_id, name)

    # -- maintenance ---------------------------------------------------

    def compact(self, shard_id: Optional[int] = None) -> int:
        """Fold delta rows into snapshot rows; returns residents compacted."""
        return 0

    def close(self) -> None:
        """Release resources; further writes may fail."""

    def tear(self, shard_id: int = 0) -> None:
        """Chaos hook: corrupt the tail of the shard's persistent log,
        as a crash mid-append would.  Durable backends append a record
        that fails its checksum; in-memory stores have no torn-tail
        surface, so the default is a no-op.  Used by the ``torn_write``
        journal fault (see :mod:`repro.serving.faults`)."""

    def health(self) -> dict:
        """Plain-data vitals for ``stats()`` / ``serve --stats``."""
        raise NotImplementedError


class ShardJournal:
    """A :class:`JournalStore` view bound to one shard.

    This is what a transport holds: the same store API minus the shard
    id, so transport code reads like the PR 5 dict it replaced.
    """

    __slots__ = ("store", "shard_id")

    def __init__(self, store: JournalStore, shard_id: int) -> None:
        self.store = store
        self.shard_id = shard_id

    @property
    def kind(self) -> str:
        return self.store.kind

    def register(self, name: str, db: DatabaseInstance, seq: int = 0) -> None:
        self.store.register(self.shard_id, name, db, seq)

    def delta(self, name: str, delta: Delta, seq: int = 0) -> None:
        self.store.delta(self.shard_id, name, delta, seq)

    def seal(self, seq: int) -> None:
        self.store.seal(self.shard_id, seq)

    def get(self, name: str) -> Optional[DatabaseInstance]:
        return self.store.get(self.shard_id, name)

    def read(self, name: str) -> Optional[DatabaseInstance]:
        """The freshest available snapshot (degraded reads); see
        :meth:`JournalStore.read_snapshot`."""
        return self.store.read_snapshot(self.shard_id, name)

    def residents(self) -> Dict[str, DatabaseInstance]:
        return self.store.residents(self.shard_id)

    def last_seq(self) -> int:
        return self.store.last_seq(self.shard_id)


class MemoryJournalStore(JournalStore):
    """The PR 5 journal behind the seam: folded snapshots in RAM.

    No durability -- a server restart starts empty -- but also no
    serialization and no disk in the write path, which keeps the default
    transports exactly as cheap as before the seam existed.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: Dict[int, Dict[str, DatabaseInstance]] = {}
        self._seqs: Dict[int, int] = {}
        self._ops = 0

    def register(self, shard_id, name, db, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            self._snapshots.setdefault(shard_id, {})[name] = db
            self._bump(shard_id, seq)

    def delta(self, shard_id, name, delta, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            shard = self._snapshots.setdefault(shard_id, {})
            base = shard.get(name)
            if base is None:
                raise KeyError(
                    "shard {} journal has no resident {!r}".format(
                        shard_id, name
                    )
                )
            shard[name] = delta.apply_to(base).commit()
            self._bump(shard_id, seq)

    def seal(self, shard_id, seq):
        with self._lock:
            if seq > self._seqs.get(shard_id, 0):
                self._seqs[shard_id] = seq

    def _bump(self, shard_id: int, seq: int) -> None:
        self._ops += 1
        if seq > self._seqs.get(shard_id, 0):
            self._seqs[shard_id] = seq

    def get(self, shard_id, name):
        with self._lock:
            return self._snapshots.get(shard_id, {}).get(name)

    def residents(self, shard_id):
        with self._lock:
            return dict(self._snapshots.get(shard_id, {}))

    def last_seq(self, shard_id):
        with self._lock:
            return self._seqs.get(shard_id, 0)

    def placements(self):
        with self._lock:
            return {
                name: shard_id
                for shard_id, shard in sorted(self._snapshots.items())
                for name in shard
            }

    def health(self):
        with self._lock:
            return {
                "store": self.kind,
                "residents": sum(
                    len(shard) for shard in self._snapshots.values()
                ),
                "shards": len(self._snapshots),
                "ops": self._ops,
                "log_rows": 0,
                "compactions": 0,
                "truncated_ops": 0,
            }


class SqliteJournalStore(JournalStore):
    """An append-only op log in one sqlite file, with compaction.

    Log format (table ``journal``): one row per op, in append order
    (``id`` is the rowid), each carrying the shard, the op's sequence
    number, the resident name, the row kind, and a **framed** payload --
    the pickled object wrapped by :func:`pack_record`, so every row
    carries its own length and crc32:

    * ``kind='snapshot'`` -- a facts-only
      :class:`~repro.db.instance.DatabaseInstance` (a registration, or
      the folded result of compaction);
    * ``kind='delta'`` -- a forwarded :class:`~repro.db.delta.Delta`;
    * ``kind='seal'`` -- a high-water advance with no payload (see
      :meth:`JournalStore.seal`).

    Reopening a path replays the log in append order to rebuild the RAM
    view of folded snapshots -- reads (:meth:`get`, :meth:`residents`)
    never touch the disk after that.  Replay is **defensive**: a record
    that fails its checksum, a row sqlite cannot read back (a truncated
    file loses whole pages), or an unreadable schema truncates the log
    at the first bad record -- the intact prefix is kept (rewritten to a
    fresh file when the old one is damaged), ``last_seq`` is re-derived
    from it, and the dropped tail is counted as ``truncated_ops`` in
    :meth:`health`.  A registration deletes the name's earlier rows (the
    snapshot supersedes them), and after *compact_every* delta rows
    against one resident the resident's rows are folded into a single
    snapshot row stamped with the shard's high-water sequence, so log
    length tracks the resident set, not history.  All methods serialize
    on one lock around one connection (``check_same_thread=False``),
    which is plenty for per-shard append traffic.
    """

    kind = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS journal (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            shard INTEGER NOT NULL,
            seq INTEGER NOT NULL,
            name TEXT NOT NULL,
            kind TEXT NOT NULL,
            payload BLOB NOT NULL
        );
        CREATE INDEX IF NOT EXISTS journal_shard_name
            ON journal (shard, name);
    """

    def __init__(self, path, compact_every: int = 64) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.path = str(path)
        self.compact_every = compact_every
        self._lock = threading.RLock()
        self._snapshots: Dict[int, Dict[str, DatabaseInstance]] = {}
        self._seqs: Dict[int, int] = {}
        #: Delta rows in the log per (shard, name) since its last
        #: snapshot row -- the compaction trigger.
        self._pending: Dict[tuple, int] = {}
        self._ops = 0
        self._compactions = 0
        #: Ops dropped by torn-tail recovery on this open.
        self._truncated_ops = 0
        self._conn = None
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.executescript(self._SCHEMA)
        except sqlite3.DatabaseError:
            # The file's header or schema pages are unreadable: nothing
            # row-wise can be salvaged, the whole log is the torn tail.
            self._truncated_ops = 1
            self._rebuild([])
        self._replay()

    def _replay(self) -> None:
        """Rebuild the RAM view by folding the log in append order.

        Recovery contract: the log is folded up to the first record that
        cannot be read back intact (checksum mismatch, torn frame,
        unreadable row pages); everything from that record on is dropped
        and counted, and a damaged file is rewritten from the intact
        prefix so the next append lands on a sound log.
        """
        rows, dropped, damaged = self._scan_log()
        if damaged:
            self._truncated_ops += dropped
            self._rebuild(rows)
        for shard_id, seq, name, kind, obj, _data in rows:
            shard = self._snapshots.setdefault(shard_id, {})
            if kind == "snapshot":
                shard[name] = obj
                self._pending[(shard_id, name)] = 0
            elif kind == "delta":
                shard[name] = obj.apply_to(shard[name]).commit()
                key = (shard_id, name)
                self._pending[key] = self._pending.get(key, 0) + 1
            # kind == "seal": no payload, only the seq bump below.
            if seq > self._seqs.get(shard_id, 0):
                self._seqs[shard_id] = seq

    def _scan_log(self):
        """Read back every intact record: ``(rows, dropped, damaged)``.

        *rows* are ``(shard, seq, name, kind, obj, data)`` tuples for
        the intact prefix; *dropped* counts the records lost to the torn
        tail (exact when sqlite can still enumerate the remaining rows,
        a floor of 1 when it cannot); *damaged* says whether the file
        needs rebuilding.
        """
        rows: List[tuple] = []
        try:
            cursor = self._conn.execute(
                "SELECT shard, seq, name, kind, payload "
                "FROM journal ORDER BY id"
            )
        except sqlite3.DatabaseError:
            return rows, 1, True
        while True:
            try:
                fetched = cursor.fetchone()
            except sqlite3.DatabaseError:
                # The row's pages are gone (truncated file).  The btree
                # may still know the total row count; fall back to "at
                # least one" when it does not.
                return rows, max(1, self._count_rows() - len(rows)), True
            if fetched is None:
                return rows, 0, False
            shard_id, seq, name, kind, payload = fetched
            try:
                data, end = unpack_record(payload)
                if end != len(payload):
                    raise CorruptRecord("trailing bytes after record")
                obj = pickle.loads(data) if kind != "seal" else None
            except Exception:
                # First corrupt record: drop it and everything after.
                dropped = 1
                while True:
                    try:
                        if cursor.fetchone() is None:
                            break
                    except sqlite3.DatabaseError:
                        break
                    dropped += 1
                return rows, dropped, True
            rows.append((shard_id, seq, name, kind, obj, data))

    def _count_rows(self) -> int:
        try:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()
            return count
        except sqlite3.DatabaseError:
            return 0

    def _rebuild(self, rows) -> None:
        """Rewrite the log file from the intact prefix *rows*."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - best effort
                pass
        for suffix in ("", "-journal", "-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except OSError:
                pass
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.executescript(self._SCHEMA)
        self._conn.executemany(
            "INSERT INTO journal (shard, seq, name, kind, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (shard_id, seq, name, kind, pack_record(data))
                for shard_id, seq, name, kind, _obj, data in rows
            ],
        )
        self._conn.commit()

    # -- writes --------------------------------------------------------

    def register(self, shard_id, name, db, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            payload = pack_record(
                pickle.dumps(db, protocol=pickle.HIGHEST_PROTOCOL)
            )
            # The fresh snapshot supersedes every earlier op for the name.
            self._conn.execute(
                "DELETE FROM journal WHERE shard = ? AND name = ?",
                (shard_id, name),
            )
            self._conn.execute(
                "INSERT INTO journal (shard, seq, name, kind, payload) "
                "VALUES (?, ?, ?, 'snapshot', ?)",
                (shard_id, seq, name, payload),
            )
            self._conn.commit()
            self._snapshots.setdefault(shard_id, {})[name] = db
            self._pending[(shard_id, name)] = 0
            self._bump(shard_id, seq)

    def delta(self, shard_id, name, delta, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            base = self._snapshots.get(shard_id, {}).get(name)
            if base is None:
                raise KeyError(
                    "shard {} journal has no resident {!r}".format(
                        shard_id, name
                    )
                )
            payload = pack_record(
                pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self._conn.execute(
                "INSERT INTO journal (shard, seq, name, kind, payload) "
                "VALUES (?, ?, ?, 'delta', ?)",
                (shard_id, seq, name, payload),
            )
            self._conn.commit()
            self._snapshots[shard_id][name] = delta.apply_to(base).commit()
            self._bump(shard_id, seq)
            key = (shard_id, name)
            self._pending[key] = self._pending.get(key, 0) + 1
            if self._pending[key] >= self.compact_every:
                self._compact_resident(shard_id, name)

    def seal(self, shard_id, seq):
        with self._lock:
            if seq <= self._seqs.get(shard_id, 0):
                return
            self._conn.execute(
                "INSERT INTO journal (shard, seq, name, kind, payload) "
                "VALUES (?, ?, '', 'seal', ?)",
                (shard_id, seq, pack_record(b"")),
            )
            self._conn.commit()
            self._seqs[shard_id] = seq

    def _bump(self, shard_id: int, seq: int) -> None:
        self._ops += 1
        if seq > self._seqs.get(shard_id, 0):
            self._seqs[shard_id] = seq

    def _compact_resident(self, shard_id: int, name: str) -> None:
        """Replace the resident's log rows with one folded snapshot row.

        The snapshot row is stamped with the shard's high-water sequence
        -- the folded state is exactly the state "as of" that sequence,
        and reopening the log must recover the same :meth:`last_seq`.
        """
        db = self._snapshots[shard_id][name]
        payload = pack_record(
            pickle.dumps(db, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._conn.execute(
            "DELETE FROM journal WHERE shard = ? AND name = ?",
            (shard_id, name),
        )
        self._conn.execute(
            "INSERT INTO journal (shard, seq, name, kind, payload) "
            "VALUES (?, ?, ?, 'snapshot', ?)",
            (shard_id, self._seqs.get(shard_id, 0), name, payload),
        )
        self._conn.commit()
        self._pending[(shard_id, name)] = 0
        self._compactions += 1

    # -- reads ---------------------------------------------------------

    def get(self, shard_id, name):
        with self._lock:
            return self._snapshots.get(shard_id, {}).get(name)

    def residents(self, shard_id):
        with self._lock:
            return dict(self._snapshots.get(shard_id, {}))

    def last_seq(self, shard_id):
        with self._lock:
            return self._seqs.get(shard_id, 0)

    def placements(self):
        with self._lock:
            return {
                name: shard_id
                for shard_id, shard in sorted(self._snapshots.items())
                for name in shard
            }

    # -- maintenance ---------------------------------------------------

    def compact(self, shard_id=None):
        with self._lock:
            targets = [
                key
                for key, pending in self._pending.items()
                if pending > 0 and (shard_id is None or key[0] == shard_id)
            ]
            for key in targets:
                self._compact_resident(*key)
            return len(targets)

    def close(self):
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def tear(self, shard_id=0):
        """Append a record that fails its checksum (chaos hook): the
        next reopen of this path exercises torn-tail recovery for real."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO journal (shard, seq, name, kind, payload) "
                "VALUES (?, 0, '', 'delta', ?)",
                (shard_id, _FRAME.pack(2 ** 20, 0) + b"torn"),
            )
            self._conn.commit()

    def health(self):
        with self._lock:
            (log_rows,) = self._conn.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()
            return {
                "store": self.kind,
                "path": self.path,
                "residents": sum(
                    len(shard) for shard in self._snapshots.values()
                ),
                "shards": len(self._snapshots),
                "ops": self._ops,
                "log_rows": log_rows,
                "compactions": self._compactions,
                "truncated_ops": self._truncated_ops,
            }


#: Built-in stores selectable by name (CLI ``serve --journal``).  The
#: replication module registers ``kv`` and ``replicated`` on import.
JOURNAL_STORES = {
    "memory": MemoryJournalStore,
    "sqlite": SqliteJournalStore,
}

#: The full ``--journal`` spec grammar, quoted by rejection errors.
SPEC_GRAMMAR = (
    "memory | sqlite:PATH | kv:memory | kv:DIR | "
    "replicated:PRIMARY;FOLLOWER[,FOLLOWER...]"
)


def make_journal_store(
    spec: Union[None, str, JournalStore],
) -> Optional[JournalStore]:
    """Resolve *spec* to a store: ``None``, a store instance, or a spec
    string from the grammar ``memory | sqlite:PATH | kv:memory | kv:DIR
    | replicated:PRIMARY;FOLLOWER[,FOLLOWER...]`` (the ``replicated:``
    sub-specs recurse through this same grammar).

    >>> make_journal_store(None) is None
    True
    >>> make_journal_store("memory").kind
    'memory'
    >>> make_journal_store("parchment")
    Traceback (most recent call last):
        ...
    ValueError: unknown journal store spec 'parchment' (grammar: memory | \
sqlite:PATH | kv:memory | kv:DIR | replicated:PRIMARY;FOLLOWER[,FOLLOWER...])
    """
    if spec is None or isinstance(spec, JournalStore):
        return spec
    if isinstance(spec, str):
        if spec == "memory":
            return MemoryJournalStore()
        if spec.startswith("sqlite:"):
            path = spec[len("sqlite:"):]
            if not path:
                raise ValueError(
                    "sqlite journal spec needs a path: sqlite:PATH"
                )
            return SqliteJournalStore(path)
        if spec.startswith("kv:"):
            from repro.serving.replication import make_kv_journal_store

            return make_kv_journal_store(spec[len("kv:"):])
        if spec.startswith("replicated:"):
            from repro.serving.replication import (
                make_replicated_journal_store,
            )

            return make_replicated_journal_store(spec[len("replicated:"):])
        raise ValueError(
            "unknown journal store spec {!r} (grammar: {})".format(
                spec, SPEC_GRAMMAR
            )
        )
    raise TypeError(
        "journal store spec must be None, a spec string, or a "
        "JournalStore; got {!r}".format(spec)
    )
