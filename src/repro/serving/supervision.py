"""Supervised restarts: budgets, backoff, and the per-shard circuit breaker.

PR 5 gave the process transport crash recovery -- restart the child,
replay the journal, retry the batch once.  That is the right reflex for
an isolated crash and the wrong one for a sick shard: a child that dies
on every batch is restarted in a tight loop, burning a replay per
request and never telling anyone it is down.  This module supplies the
two pieces of supervision the transports now consult:

* :class:`RestartPolicy` -- *how often* a shard may be restarted (a
  budget of restarts per rolling window) and *how long* to stand back
  after a failed recovery (exponential backoff with **deterministic
  jitter**: the delay for attempt *k* of shard *s* is a pure function of
  ``(seed, s, k)``, so chaos tests replay exactly).
* :class:`CircuitBreaker` -- the per-shard state machine over that
  policy.  ``closed`` is normal service.  A crash the policy refuses to
  restart (budget exhausted, or the recovery itself failed) **trips**
  the breaker: the shard is ``open`` -- down -- and requests fail fast
  with :class:`~repro.serving.shard.ShardUnavailable` (or are served
  *degraded* from the journal, see :mod:`repro.serving.transport`)
  instead of queueing behind a corpse.  Once the backoff cooldown
  elapses the breaker is ``half_open``: the next batch is a **probe**,
  allowed to restart the shard regardless of the window budget; a
  successful probe closes the breaker, a failed one re-opens it with a
  longer cooldown.

Time is injected (``RestartPolicy(clock=...)``), so every transition is
testable without sleeping:

>>> t = [0.0]
>>> policy = RestartPolicy(max_restarts=1, window=10.0, backoff_base=1.0,
...                        jitter=0.0, clock=lambda: t[0])
>>> breaker = CircuitBreaker(policy)
>>> breaker.state
'closed'
>>> breaker.record_failure(); breaker.allow_restart()   # budget: 1 per 10s
True
>>> breaker.record_restart(); breaker.record_success()  # recovery worked
>>> breaker.state
'closed'
>>> breaker.record_failure(); breaker.allow_restart()   # budget exhausted
False
>>> breaker.trip(); breaker.state                       # the shard is down
'open'
>>> t[0] = 2.0; breaker.state                           # cooldown elapsed
'half_open'
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Callable, Optional


class RestartPolicy:
    """Restart budget and backoff schedule for one shard's supervisor.

    *max_restarts* restarts are allowed per rolling *window* seconds
    (attempts count, successful or not).  After ``k`` consecutive
    failures the cooldown before the next probe is
    ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
    stretched by a deterministic jitter of up to *jitter* (a fraction):
    the jitter for attempt ``k`` of shard ``s`` is drawn from
    ``random.Random((seed, s, k))``, so two runs of the same schedule
    back off identically -- reproducible chaos, no thundering herd.

    *clock* defaults to :func:`time.monotonic`; tests inject a manual
    clock to step through breaker transitions without sleeping.

    >>> policy = RestartPolicy(backoff_base=0.5, backoff_max=4.0, seed=3)
    >>> policy.backoff(1) == policy.backoff(1)          # deterministic
    True
    >>> policy.backoff(3) > policy.backoff(2) > policy.backoff(1)
    True
    >>> RestartPolicy(backoff_base=1.0, jitter=0.0).backoff(10)  # capped
    5.0
    """

    def __init__(
        self,
        max_restarts: int = 5,
        window: float = 30.0,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 5.0,
        jitter: float = 0.1,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if window <= 0:
            raise ValueError("window must be > 0")
        if backoff_base < 0 or backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_restarts = max_restarts
        self.window = window
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.seed = seed
        self.clock = clock

    def backoff(self, attempt: int, shard_id: int = 0) -> float:
        """Cooldown before the next probe, after *attempt* consecutive
        failures (deterministic in ``(seed, shard_id, attempt)``)."""
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if not self.jitter or not base:
            return base
        # Int tuples hash deterministically (unlike salted strings), so
        # this draw replays across processes and interpreter restarts.
        draw = random.Random(hash((self.seed, shard_id, attempt))).random()
        return base * (1.0 + self.jitter * draw)


class CircuitBreaker:
    """The per-shard breaker state machine over a :class:`RestartPolicy`.

    States (reported as ``stats()["shards"][i]["transport"]["breaker"]``):

    * ``closed`` -- normal service; crashes are handled by supervised
      restart as long as :meth:`allow_restart` grants budget.
    * ``open`` -- the shard is down (budget exhausted or a recovery
      failed); callers fail fast or serve degraded until the cooldown
      (exponential in :attr:`consecutive_failures`) elapses.
    * ``half_open`` -- the cooldown elapsed; exactly the next batch is a
      probe, permitted to restart regardless of the window budget.

    The breaker records, it does not act: transports call
    :meth:`record_failure` / :meth:`record_restart` /
    :meth:`record_success` / :meth:`trip` at the corresponding points of
    their execute loop and branch on :attr:`state`.
    """

    def __init__(
        self, policy: Optional[RestartPolicy] = None, shard_id: int = 0
    ) -> None:
        self.policy = policy or RestartPolicy()
        self.shard_id = shard_id
        #: Crashes since the last successful batch; drives the backoff
        #: exponent and is surfaced in transport health.
        self.consecutive_failures = 0
        #: Times the breaker opened (monotone; health reporting).
        self.trips = 0
        self._restarts: "deque[float]" = deque()
        self._opened_at: Optional[float] = None
        self._cooldown = 0.0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self.policy.clock() - self._opened_at >= self._cooldown:
            return "half_open"
        return "open"

    def allow_restart(self) -> bool:
        """Is there restart budget left in the rolling window?"""
        now = self.policy.clock()
        while self._restarts and now - self._restarts[0] > self.policy.window:
            self._restarts.popleft()
        return len(self._restarts) < self.policy.max_restarts

    def record_restart(self) -> None:
        """Charge one restart attempt against the rolling window."""
        self._restarts.append(self.policy.clock())

    def record_failure(self) -> None:
        self.consecutive_failures += 1

    def record_success(self) -> None:
        """A batch served normally: reset failures, close the breaker."""
        self.consecutive_failures = 0
        self._opened_at = None
        self._cooldown = 0.0

    def trip(self) -> None:
        """Open the breaker with the policy's backoff for the current
        failure streak."""
        self.trips += 1
        self._cooldown = self.policy.backoff(
            self.consecutive_failures, self.shard_id
        )
        self._opened_at = self.policy.clock()

    def restarts_in_window(self) -> int:
        now = self.policy.clock()
        while self._restarts and now - self._restarts[0] > self.policy.window:
            self._restarts.popleft()
        return len(self._restarts)

    def snapshot(self) -> dict:
        """Plain-data vitals for transport health reporting."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "restarts_in_window": self.restarts_in_window(),
        }


class FailoverGuard:
    """Window-budgeted journal failovers, over a :class:`RestartPolicy`.

    The replicated journal tier (:mod:`repro.serving.replication`)
    promotes a follower when the primary store raises.  Promotion is
    cheap, but each one consumes a replica -- a primary that flaps must
    not burn through the whole replica set in seconds.  The guard reuses
    the restart policy's rolling-window budget: :meth:`allow` checks it,
    :meth:`record` charges one promotion against it.  When the guard
    refuses, the store gives up and surfaces the primary's failure
    instead of promoting.

    >>> t = [0.0]
    >>> guard = FailoverGuard(
    ...     RestartPolicy(max_restarts=2, window=10.0, clock=lambda: t[0]))
    >>> guard.allow()
    True
    >>> guard.record(); guard.record(); guard.allow()   # budget spent
    False
    >>> t[0] = 11.0; guard.allow()                      # window rolled
    True
    """

    def __init__(self, policy: Optional[RestartPolicy] = None) -> None:
        self.policy = policy or RestartPolicy()
        #: Promotions ever granted (monotone; health reporting).
        self.promotions = 0
        self._events: "deque[float]" = deque()

    def _trim(self, now: float) -> None:
        while self._events and now - self._events[0] > self.policy.window:
            self._events.popleft()

    def allow(self) -> bool:
        """Is there promotion budget left in the rolling window?"""
        now = self.policy.clock()
        self._trim(now)
        return len(self._events) < self.policy.max_restarts

    def record(self) -> None:
        """Charge one promotion against the rolling window."""
        self.promotions += 1
        self._events.append(self.policy.clock())

    def snapshot(self) -> dict:
        now = self.policy.clock()
        self._trim(now)
        return {
            "promotions": self.promotions,
            "promotions_in_window": len(self._events),
        }
