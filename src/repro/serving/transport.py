"""Pluggable shard transports: where a shard's core actually runs.

The :class:`~repro.serving.shard.ShardWorker` assembles micro-batches;
a **transport** executes them against the shard's
:class:`~repro.serving.shard.ShardCore` (residents + engine).  Two
implementations share the seam:

* :class:`ThreadTransport` -- the core lives in the worker's own thread.
  Zero serialization, results shared by reference, but every shard
  competes for the one GIL: CPU-bound routes (coNP SAT re-solves, cold
  PTIME fixpoints) serialize across shards.
* :class:`ProcessTransport` -- the core lives in a dedicated subprocess
  with a persistent engine, one per shard, so shards burn CPU in
  parallel.  The wire protocol is deliberately thin:

  - **residents ship once** as facts-only snapshots (the
    :meth:`~repro.db.instance.DatabaseInstance.__reduce__` contract:
    no compact views, no interner ids cross the pipe -- the child
    rebuilds its own view on first use);
  - **writes forward only the** :class:`~repro.db.delta.Delta`; the
    router side folds the same delta into its journal copy, so parent
    and child registries stay fact-identical;
  - **results return stripped**: the child drops lazy falsifying-repair
    certificates before pickling (an unread certificate is O(db) on the
    wire) and the router side re-attaches a
    :class:`~repro.solvers.result.LazyMinimalRepair` against its journal
    copy -- the certificate is rebuilt on first access, exactly as the
    in-process lazy path would have;
  - **crashes are survivable**: a dead child is detected on the next
    batch, restarted, and its residents replayed from the router-side
    journal (the compacted log of everything shipped), after which the
    batch is retried once.  Counters stay monotone across restarts --
    the dead generation's last snapshot is merged into a carried base
    (see :meth:`repro.engine.engine.EngineStats.merge`).

Transport health (``restarts``, ``snapshot_bytes``, ``deltas_forwarded``,
``alive``) is reported per shard via ``ShardWorker.stats()["transport"]``
and surfaces in ``python -m repro serve --stats``.

The default process start method is ``spawn``: children begin from a
fresh interpreter, which keeps the facts-only wire contract honest (a
forked child would share the parent's interner pages) and avoids
forking a multi-threaded server.  For ``spawn``, *engine_factory* must
be picklable -- the :class:`~repro.engine.CertaintyEngine` class itself,
or a ``functools.partial`` over it.

>>> make_transport("thread", 0).kind
'thread'
>>> make_transport("process", 0).kind      # not started until first use
'process'
>>> make_transport("telepathy", 0)
Traceback (most recent call last):
    ...
ValueError: unknown transport 'telepathy' (choose from process, thread)
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Callable, Dict, List, Optional, Union

from repro.db.instance import DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineStats
from repro.serving.shard import ShardCore, ShardOp, ShardRequest
from repro.solvers.result import CertaintyResult


class ShardTransportError(RuntimeError):
    """The shard's transport failed and could not recover."""


class ShardTransport:
    """The seam between micro-batch assembly and execution.

    A transport owns one shard's :class:`ShardCore` -- directly
    (:class:`ThreadTransport`) or by proxy (:class:`ProcessTransport`) --
    and executes assembled batches against it.  ``execute`` must resolve
    or fail *every* request in the batch before returning; ``snapshot``
    returns the core's execution counters (see
    :meth:`ShardCore.snapshot`), ``health`` the transport's own vitals.
    A future network front end is one more implementation of this class.
    """

    #: Short name surfaced in stats (``"thread"``, ``"process"``).
    kind = "abstract"

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def execute(self, requests: List[ShardRequest]) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def health(self) -> dict:
        raise NotImplementedError


class ThreadTransport(ShardTransport):
    """The PR 3 behavior, refactored onto the seam: the core is local.

    Results are handed to futures by reference (no serialization, lazy
    certificates stay lazy in the shared heap); all shards share the
    interpreter, so throughput is bounded by the GIL -- the right choice
    when requests are served warm (microseconds each) and the wrong one
    when every request burns CPU.
    """

    kind = "thread"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
    ) -> None:
        self.shard_id = shard_id
        self.core = ShardCore(shard_id, engine_factory=engine_factory)

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def execute(self, requests: List[ShardRequest]) -> None:
        rows = self.core.run_batch([request.as_op() for request in requests])
        for request, (ok, payload) in zip(requests, rows):
            if ok:
                request.resolve(payload)
            else:
                request.fail(payload)

    def snapshot(self) -> dict:
        return self.core.snapshot()

    def health(self) -> dict:
        return {
            "transport": self.kind,
            "alive": True,
            "restarts": 0,
            "snapshot_bytes": 0,
            "deltas_forwarded": 0,
        }


class ProcessTransport(ShardTransport):
    """One persistent subprocess per shard, behind the same seam.

    The child runs :func:`_shard_process_main`: a loop holding the
    shard's :class:`ShardCore` (engine, plan/state caches, residents)
    for the process lifetime, executing one pickled batch per message.
    The router side keeps the **journal** -- the current facts-only
    snapshot of every resident, advanced by each acknowledged delta --
    which is both the replay source after a crash and the rehydration
    source for stripped lazy certificates.
    """

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        mp_context: str = "spawn",
    ) -> None:
        self.shard_id = shard_id
        self.engine_factory = engine_factory
        self._context = multiprocessing.get_context(mp_context)
        #: The compacted router-side journal: name -> current committed
        #: instance (the registered snapshot with every forwarded delta
        #: folded in).  Replay = re-register these snapshots.
        self.journal: Dict[str, DatabaseInstance] = {}
        self.restarts = 0
        self.snapshot_bytes = 0
        self.deltas_forwarded = 0
        self.process = None
        self._conn = None
        #: Latest child-side core snapshot (piggybacked on every reply).
        self._last: Optional[dict] = None
        #: Accumulated counters of dead child generations.
        self._carry: Optional[dict] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.process is not None:
            return
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_process_main,
            args=(child_conn, self.shard_id, self.engine_factory),
            name="repro-shard-proc-{}".format(self.shard_id),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            # Leave the transport cleanly stopped: a failed start must
            # not strand a half-initialized process/pipe pair.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        self.process = process
        self._conn = parent_conn

    def stop(self) -> None:
        if self.process is None:
            return
        try:
            self._conn.send_bytes(pickle.dumps(("stop",)))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.kill()
            self.process.join(timeout=5)
        self._conn.close()
        self.process = None
        self._conn = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, requests: List[ShardRequest]) -> None:
        ops = [request.as_op() for request in requests]
        self._account_wire(ops)
        try:
            rows = self._round_trip(ops)
        except (EOFError, OSError) as first_error:
            # The child died (or the pipe broke) mid-conversation:
            # restart it, replay the journal, retry the batch once.
            try:
                self._restart_and_replay()
                rows = self._round_trip(ops)
            except (EOFError, OSError) as second_error:
                failure = ShardTransportError(
                    "shard {} subprocess failed twice ({!r} then {!r}); "
                    "giving up on this batch".format(
                        self.shard_id, first_error, second_error
                    )
                )
                for request in requests:
                    request.fail(failure)
                return
        self._finish(requests, rows)

    def _round_trip(self, ops: List[ShardOp]):
        self.start()
        # Serialize once and send the raw bytes: the payload size is the
        # snapshot_bytes metric, so counting it must not cost a second
        # pickling pass over a large resident.
        payload = pickle.dumps(("batch", ops), protocol=pickle.HIGHEST_PROTOCOL)
        if any(op[0] == "register" for op in ops):
            self.snapshot_bytes += len(payload)
        self._conn.send_bytes(payload)
        kind, rows, snapshot = self._conn.recv()
        assert kind == "results", kind
        self._last = snapshot
        return rows

    def _account_wire(self, ops: List[ShardOp]) -> None:
        for op in ops:
            if op[0] == "delta":
                self.deltas_forwarded += 1

    def _restart_and_replay(self) -> None:
        self.restarts += 1
        self._carry = merge_snapshots(self._carry, self._last)
        self._last = None
        self.stop()
        self.start()
        if not self.journal:
            return
        replay: List[ShardOp] = [
            ("register", name, db, None, None, "auto")
            for name, db in sorted(self.journal.items())
        ]
        self._account_wire(replay)
        rows = self._round_trip(replay)
        for ok, payload in ((row[0], row[1]) for row in rows):
            if not ok:  # pragma: no cover - register cannot fail
                raise ShardTransportError(
                    "shard {} journal replay failed: {!r}".format(
                        self.shard_id, payload
                    )
                )

    def _finish(self, requests: List[ShardRequest], rows) -> None:
        for request, (ok, payload, was_lazy) in zip(requests, rows):
            if not ok:
                request.fail(payload)
                continue
            # Mirror acknowledged writes into the journal *before*
            # rehydration: a delta's certificate refers to the updated
            # instance.
            if request.op == "register":
                self.journal[request.name] = request.db
            elif request.op == "delta":
                base = self.journal.get(request.name)
                if base is not None:
                    self.journal[request.name] = (
                        request.delta.apply_to(base).commit()
                    )
            if was_lazy and isinstance(payload, CertaintyResult):
                payload.rehydrate(self._rehydration_db(request), request.query)
            request.resolve(payload)

    def _rehydration_db(
        self, request: ShardRequest
    ) -> Optional[DatabaseInstance]:
        if request.db is not None:
            return request.db
        if request.name is not None:
            return self.journal.get(request.name)
        return None  # pragma: no cover - solve always has a db or a name

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        live = self._last if self._last is not None else ShardCore.empty_snapshot()
        return merge_snapshots(self._carry, live)

    def health(self) -> dict:
        return {
            "transport": self.kind,
            "alive": self.process is not None and self.process.is_alive(),
            "restarts": self.restarts,
            #: Wire bytes of every batch message that carried a resident
            #: snapshot (registration and journal replay).
            "snapshot_bytes": self.snapshot_bytes,
            "deltas_forwarded": self.deltas_forwarded,
        }


#: Built-in transports selectable by name (CLI ``--transport``).
TRANSPORTS = {
    "thread": ThreadTransport,
    "process": ProcessTransport,
}


def make_transport(
    spec: Union[str, Callable, ShardTransport],
    shard_id: int,
    engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
    **options,
) -> ShardTransport:
    """Resolve *spec* -- a name, a factory, or an instance -- to a transport."""
    if isinstance(spec, ShardTransport):
        return spec
    if isinstance(spec, str):
        try:
            factory = TRANSPORTS[spec]
        except KeyError:
            raise ValueError(
                "unknown transport {!r} (choose from {})".format(
                    spec, ", ".join(sorted(TRANSPORTS))
                )
            )
        return factory(shard_id, engine_factory=engine_factory, **options)
    return spec(shard_id, engine_factory=engine_factory, **options)


def merge_snapshots(base: Optional[dict], snapshot: Optional[dict]) -> dict:
    """Fold two core snapshots: counters add, latest structure wins.

    Used to keep per-shard statistics monotone across child restarts:
    *base* accumulates dead generations, *snapshot* is the live child's
    cumulative view.  Engine counters merge through
    :meth:`~repro.engine.engine.EngineStats.merge`.
    """
    if snapshot is None:
        snapshot = ShardCore.empty_snapshot()
    if base is None:
        return dict(snapshot)
    merged = dict(snapshot)
    for key in ("requests", "coalesced", "errors", "warm_hits", "cold_solves"):
        merged[key] = base.get(key, 0) + snapshot.get(key, 0)
    merged["engine"] = (
        EngineStats.from_dict(base.get("engine", {}))
        .merge(snapshot.get("engine", {}))
        .as_dict()
    )
    return merged


def _shard_process_main(conn, shard_id: int, engine_factory) -> None:
    """The shard subprocess: one persistent core, one batch per message.

    Protocol (parent->child messages arrive as explicitly pickled byte
    frames -- the parent serializes once and bills resident snapshots by
    the frame size; replies go back as plain ``conn.send`` objects):

    * ``("batch", ops)`` -> ``("results", rows, snapshot)`` where each
      row is ``(ok, payload, was_lazy)`` aligned with *ops* and
      *snapshot* is the core's cumulative counters;
    * ``("stop",)`` or EOF -> the process exits.

    Lazy falsifying-repair certificates are stripped before the reply is
    pickled (``was_lazy`` tells the router side to rehydrate against its
    journal); materialized certificates (e.g. SAT counterexamples) ship
    as-is.
    """
    core = ShardCore(shard_id, engine_factory=engine_factory)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        _, ops = message
        rows = []
        for ok, payload in core.run_batch(ops):
            was_lazy = (
                ok
                and isinstance(payload, CertaintyResult)
                and payload.has_lazy_repair
            )
            if was_lazy:
                payload.strip()
            rows.append((ok, payload, was_lazy))
        reply = ("results", rows, core.snapshot())
        try:
            conn.send(reply)
        except Exception:  # pragma: no cover - unpicklable payload
            # Keep the protocol alive, and keep batch-companion
            # isolation: only the rows that actually cannot cross the
            # pipe are replaced with a stringified error.
            fallback = []
            for ok, payload, was_lazy in rows:
                try:
                    pickle.dumps(payload)
                except Exception:
                    ok, was_lazy = False, False
                    payload = ShardTransportError(
                        "unpicklable shard result: {!r}".format(payload)
                    )
                fallback.append((ok, payload, was_lazy))
            conn.send(("results", fallback, core.snapshot()))
