"""Pluggable shard transports: where a shard's core actually runs.

The :class:`~repro.serving.shard.ShardWorker` assembles micro-batches;
a **transport** executes them against the shard's
:class:`~repro.serving.shard.ShardCore` (residents + engine).  Two
implementations share the seam:

* :class:`ThreadTransport` -- the core lives in the worker's own thread.
  Zero serialization, results shared by reference, but every shard
  competes for the one GIL: CPU-bound routes (coNP SAT re-solves, cold
  PTIME fixpoints) serialize across shards.
* :class:`ProcessTransport` -- the core lives in a dedicated subprocess
  with a persistent engine, one per shard, so shards burn CPU in
  parallel.  The wire protocol is deliberately thin:

  - **residents ship once** as facts-only snapshots (the
    :meth:`~repro.db.instance.DatabaseInstance.__reduce__` contract:
    no compact views, no interner ids cross the pipe -- the child
    rebuilds its own view on first use); snapshots whose estimated
    payload clears the transport's ``shm_threshold`` ship through a
    ``multiprocessing.shared_memory`` segment as flat snapshot-local
    int arrays instead of a pickled frame (same facts-only contract,
    enforced by bounds checks on decode), with the segment unlinked by
    the parent once the batch -- including any crash retry -- resolves;
  - **writes forward only the** :class:`~repro.db.delta.Delta`, and are
    **journaled ahead of dispatch**: registrations and deltas are
    recorded in the shard's journal (a
    :class:`~repro.serving.journal.ShardJournal` view -- in-memory by
    default, sqlite-durable when the server is opened with one) before
    the batch crosses the pipe, so parent-side journal and child
    registry stay fact-identical even across a child crash;
  - **writes are stamped** with a per-shard monotonic sequence number;
    the child acks the highest applied sequence in its snapshot and
    skips redelivered writes, so the crash-retry path is at-least-once
    delivery with exactly-once effect;
  - **results return stripped**: the child drops lazy falsifying-repair
    certificates before pickling (an unread certificate is O(db) on the
    wire) and the router side re-attaches a
    :class:`~repro.solvers.result.LazyMinimalRepair` against its journal
    copy -- the certificate is rebuilt on first access, exactly as the
    in-process lazy path would have;
  - **crashes are survivable**: a dead child is detected on the next
    batch, restarted, and its residents replayed from the journal (the
    folded log of everything shipped), after which the batch is retried
    once.  Counters stay monotone across restarts -- the dead
    generation's last snapshot is merged into a carried base (see
    :meth:`repro.engine.engine.EngineStats.merge`), and only after the
    replacement child is known good.

Restarts are **supervised** (see :mod:`repro.serving.supervision`): a
:class:`~repro.serving.supervision.RestartPolicy` budgets restarts per
rolling window, and each transport carries a per-shard
:class:`~repro.serving.supervision.CircuitBreaker`.  A crash the policy
refuses to restart trips the breaker: the shard is *down*, and until
the backoff cooldown admits a half-open probe, requests fail fast with
:class:`~repro.serving.shard.ShardUnavailable` -- except reads of
durable residents, which (by default) are served **degraded** from a
transport-side fallback engine over the journal's folded snapshots:
the journal *is* the committed state, so a degraded answer is stale
only with respect to writes that were never acknowledged.

Both transports also consult an optional
:class:`~repro.serving.faults.FaultPlan` once per fresh batch -- the
deterministic chaos surface (crash/drop/delay/dup) that generalizes the
old ``fail_replies`` hook, identical across transports: ``crash`` dies
after the commit point, ``drop`` before it, ``delay`` stalls dispatch,
``dup`` delivers the batch twice (sequence stamps shield the writes).
The thread transport *emulates* a crash by discarding its core and
rebuilding it from the journal -- the same recovery contract the
process transport exercises for real.

Transport health (``restarts``, ``breaker``, ``consecutive_failures``,
``snapshot_bytes``, ``snapshot_shm``, ``deltas_forwarded``,
``journal``, ``alive``) is reported per shard via
``ShardWorker.stats()["transport"]`` and surfaces in ``python -m repro
serve --stats``.

The default process start method is ``spawn``: children begin from a
fresh interpreter, which keeps the facts-only wire contract honest (a
forked child would share the parent's interner pages) and avoids
forking a multi-threaded server.  For ``spawn``, *engine_factory* must
be picklable -- the :class:`~repro.engine.CertaintyEngine` class itself,
or a ``functools.partial`` over it.

>>> make_transport("thread", 0).kind
'thread'
>>> make_transport("process", 0).kind      # not started until first use
'process'
>>> make_transport("telepathy", 0)
Traceback (most recent call last):
    ...
ValueError: unknown transport 'telepathy' (choose from process, thread)
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from array import array
from typing import Callable, List, Optional, Tuple, Union

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no shm backend
    _shared_memory = None

from repro.db.facts import Fact
from repro.db.instance import Block, DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineStats
from repro.serving.faults import make_fault_plan
from repro.serving.journal import MemoryJournalStore, ShardJournal
from repro.serving.shard import (
    EMPTY_DELTA,
    ShardCore,
    ShardOp,
    ShardRequest,
    ShardUnavailable,
)
from repro.serving.supervision import CircuitBreaker, RestartPolicy
from repro.solvers.result import CertaintyResult


class ShardTransportError(ShardUnavailable):
    """The shard's transport failed and could not recover.

    A subclass of :class:`~repro.serving.shard.ShardUnavailable`: a
    batch lost to an unrecoverable transport failure and a batch shed by
    an open breaker are the same event to the caller -- the shard is
    down right now; retry later or accept a degraded read.
    """


class ShardTransport:
    """The seam between micro-batch assembly and execution.

    A transport owns one shard's :class:`ShardCore` -- directly
    (:class:`ThreadTransport`) or by proxy (:class:`ProcessTransport`) --
    and executes assembled batches against it.  ``execute`` must resolve
    or fail *every* request in the batch before returning; ``snapshot``
    returns the core's execution counters (see
    :meth:`ShardCore.snapshot`), ``health`` the transport's own vitals.
    A future network front end is one more implementation of this class.
    """

    #: Short name surfaced in stats (``"thread"``, ``"process"``).
    kind = "abstract"

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def execute(self, requests: List[ShardRequest]) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def health(self) -> dict:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared resilience machinery (both built-in transports)
    # ------------------------------------------------------------------

    def _init_resilience(
        self,
        shard_id: int,
        engine_factory,
        faults,
        restart_policy: Optional[RestartPolicy],
        degraded: bool,
    ) -> None:
        self.faults = make_fault_plan(faults)
        self.breaker = CircuitBreaker(
            restart_policy or RestartPolicy(), shard_id
        )
        #: Serve reads of journaled residents from a fallback engine
        #: while the breaker is open (instead of failing them fast).
        self.degraded = degraded
        self.degraded_served = 0
        self.unavailable_shed = 0
        self._fallback_engine: Optional[CertaintyEngine] = None
        self._engine_factory = engine_factory

    def _draw_faults(
        self, requests: List[ShardRequest]
    ) -> Tuple[int, bool]:
        """Consult the fault plan once for this fresh batch.

        Applies ``delay`` actions inline (stalling dispatch) and returns
        ``(crash_mode, dup)``: crash_mode 0 = none, 1 = die after the
        commit point, 2 = die before it; *dup* delivers the batch twice.
        """
        if self.faults is None:
            return 0, False
        crash_mode, dup = 0, False
        actions = self.faults.draw(
            self.shard_id, [request.op for request in requests]
        )
        for action in actions:
            if action.kind == "delay":
                if action.seconds > 0:
                    time.sleep(action.seconds)
            elif action.kind == "dup":
                dup = True
            elif action.kind == "crash":
                crash_mode = 1
            elif action.kind == "drop":
                crash_mode = 2
        return crash_mode, dup

    def _shed_unavailable(self, requests: List[ShardRequest]) -> None:
        """The shard is down: serve journal-backed reads degraded (when
        enabled), fail everything else fast with ShardUnavailable."""
        for request in requests:
            try:
                served = self._try_degraded(request)
            except BaseException as error:  # noqa: BLE001 - forwarded
                request.fail(error)
                continue
            if served is not None:
                self.degraded_served += 1
                request.resolve(served[0])
                continue
            self.unavailable_shed += 1
            request.fail(
                ShardUnavailable(
                    "shard {} is down (breaker {}, {} consecutive"
                    " failures)".format(
                        self.shard_id,
                        self.breaker.state,
                        self.breaker.consecutive_failures,
                    )
                )
            )

    def _try_degraded(self, request: ShardRequest):
        """Serve a read from the journal's committed state.

        Returns a 1-tuple holding the payload (so a legitimate ``None``
        payload is distinguishable), or ``None`` when the request cannot
        be served degraded (writes, unknown names, degraded disabled).
        The journal holds the *committed* folded snapshot of every
        durable resident, so the answer is exact up to unacknowledged
        writes -- not a stale cache.
        """
        if not self.degraded:
            return None
        if request.op == "solve" and request.db is not None:
            # Ad-hoc read: carries its own instance, needs no shard
            # state at all -- always servable from the fallback engine.
            return (
                self._fallback().solve(
                    request.db, request.query, request.method
                ),
            )
        journal = getattr(self, "journal", None)
        if journal is None or request.name is None:
            return None
        if request.op not in ("solve", "get"):
            return None
        # read() (not get()) is the degraded path: a replicated store
        # answers from the freshest caught-up replica when the primary
        # itself cannot serve the snapshot.
        db = journal.read(request.name)
        if db is None:
            return None
        if request.op == "get":
            return (db,)
        engine = self._fallback()
        if request.method == "auto":
            # Same warm path the core uses: the fallback engine keeps
            # maintained state across degraded reads of the same name.
            return (engine.solve_delta(db, EMPTY_DELTA, request.query),)
        return (engine.solve(db, request.query, request.method),)

    def _fallback(self) -> CertaintyEngine:
        if self._fallback_engine is None:
            self._fallback_engine = self._engine_factory()
        return self._fallback_engine

    def _resilience_health(self) -> dict:
        return {
            "breaker": self.breaker.state,
            "consecutive_failures": self.breaker.consecutive_failures,
            "breaker_trips": self.breaker.trips,
            "degraded_served": self.degraded_served,
            "unavailable_shed": self.unavailable_shed,
            "faults": "armed" if self.faults is not None else "none",
        }


class ThreadTransport(ShardTransport):
    """The PR 3 behavior, refactored onto the seam: the core is local.

    Results are handed to futures by reference (no serialization, lazy
    certificates stay lazy in the shared heap); all shards share the
    interpreter, so throughput is bounded by the GIL -- the right choice
    when requests are served warm (microseconds each) and the wrong one
    when every request burns CPU.
    """

    kind = "thread"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        journal: Optional[ShardJournal] = None,
        faults=None,
        restart_policy: Optional[RestartPolicy] = None,
        degraded: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.engine_factory = engine_factory
        self._init_resilience(
            shard_id, engine_factory, faults, restart_policy, degraded
        )
        if self.faults is not None and journal is None:
            # Chaos needs a replay source: an emulated crash discards
            # the core and rebuilds it from the journal, exactly as the
            # process transport restores a dead child.
            journal = MemoryJournalStore().shard(shard_id)
        self.journal = journal
        self.core = ShardCore(shard_id, engine_factory=engine_factory)
        self.restarts = 0
        self._seq = 0
        self._carry: Optional[dict] = None
        if journal is not None:
            # Cold start from a warm journal: adopt its residents and
            # its sequence high-water before serving anything.
            self.core.instances.update(journal.residents())
            self.core.applied_seq = journal.last_seq()
            self._seq = journal.last_seq()

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def execute(self, requests: List[ShardRequest]) -> None:
        state = self.breaker.state
        if state == "open":
            self._shed_unavailable(requests)
            return
        probe = state == "half_open"
        if self.core is None:
            # The emulated shard died when the breaker tripped; the
            # probe (or a re-closed breaker) resurrects it from the
            # journal -- a supervised restart, charged to the window.
            self._restart_core()
        crash_mode, dup = self._draw_faults(requests)
        if crash_mode == 2:
            # Drop: the batch dies before the core applies anything.
            self._recover(requests, probe)
            return
        rows = self._run(requests, dup=dup)
        if crash_mode == 1:
            # Crash after commit: the writes above are applied and
            # journaled, but the replies are lost with the core.
            self._recover(requests, probe)
            return
        self._resolve(requests, rows)
        if self.breaker.consecutive_failures or probe:
            self.breaker.record_success()

    def _run(self, requests: List[ShardRequest], dup: bool = False):
        if self.journal is not None:
            for request in requests:
                if request.op in ("register", "delta") and request.seq == 0:
                    self._seq += 1
                    request.seq = self._seq
        ops = [request.as_op() for request in requests]
        rows = self.core.run_batch(ops)
        self._journal_applied(requests)
        if dup:
            # Duplicated delivery: the same ops run again; sequence
            # stamps shield the writes and the duplicate rows are
            # discarded -- at-least-once delivery, exactly-once effect.
            self.core.run_batch(ops)
        return rows

    @staticmethod
    def _resolve(requests: List[ShardRequest], rows) -> None:
        for request, (ok, payload) in zip(requests, rows):
            if ok:
                request.resolve(payload)
            else:
                request.fail(payload)

    def _recover(self, requests: List[ShardRequest], probe: bool) -> None:
        """The emulated child died.  Supervise a restart (same contract
        as the process transport: rebuild the core from the journal,
        retry the batch once) or trip the breaker and shed."""
        self.breaker.record_failure()
        if not (probe or self.breaker.allow_restart()):
            self.breaker.trip()
            # The shard is down for real: fold the dead core's counters
            # away so the half-open probe must restart from the journal
            # (mirroring the process transport, whose child is a corpse
            # until the probe respawns it).
            if self.core is not None:
                self._carry = merge_snapshots(self._carry, self.core.snapshot())
                self.core = None
            self._shed_unavailable(requests)
            return
        self._restart_core()
        # No redraw, no duplication: a retry is a plain delivery.
        # Already-journaled writes carry their stamp and are skipped.
        rows = self._run(requests)
        self._resolve(requests, rows)
        self.breaker.record_success()

    def _restart_core(self) -> None:
        self.breaker.record_restart()
        if self.core is not None:
            self._carry = merge_snapshots(self._carry, self.core.snapshot())
        self.core = ShardCore(
            self.shard_id, engine_factory=self.engine_factory
        )
        if self.journal is not None:
            self.core.instances.update(self.journal.residents())
            self.core.applied_seq = self.journal.last_seq()
        self.restarts += 1

    def _journal_applied(self, requests: List[ShardRequest]) -> None:
        """Mirror every write the core applied into the journal.

        The core is local, so there is no crash window to journal ahead
        of: recording after the batch sees exactly the applied writes
        (``seq <= applied_seq`` -- a delta whose read half failed still
        counts: the core commits the write regardless).
        """
        if self.journal is None:
            return
        for request in requests:
            if request.seq == 0 or request.seq > self.core.applied_seq:
                continue
            if request.op == "register":
                self.journal.register(request.name, request.db, request.seq)
            elif (
                request.op == "delta"
                and self.journal.get(request.name) is not None
            ):
                # An unknown-name delta fails without applying; its seq
                # can still sit below the batch's final high-water, so
                # the resident check (not the seq) excludes it here.
                self.journal.delta(request.name, request.delta, request.seq)

    def snapshot(self) -> dict:
        live = self.core.snapshot() if self.core is not None else None
        if self._carry is None and live is not None:
            return live
        return merge_snapshots(self._carry, live)

    def health(self) -> dict:
        health = {
            "transport": self.kind,
            "alive": self.core is not None,
            "restarts": self.restarts,
            "snapshot_bytes": 0,
            "snapshot_shm": 0,
            "deltas_forwarded": 0,
            "journal": self.journal.kind if self.journal else "none",
        }
        health.update(self._resilience_health())
        return health


#: Estimated shm payload bytes above which a register op's snapshot ships
#: through a shared-memory segment instead of its pickled frame slice.
SHM_SNAPSHOT_THRESHOLD = 256 * 1024


def _estimate_snapshot_bytes(db: DatabaseInstance) -> int:
    """Cheap upper-bound estimate of a snapshot's shm payload size.

    The flat stream costs 8 bytes per fact plus 24 per block plus the
    pickled symbol tables; ``16 * facts`` over-counts the stream enough
    to stand in for the tables without touching them.
    """
    return 16 * len(db.facts)


def _encode_snapshot(db: DatabaseInstance) -> bytes:
    """Flatten *db* into the facts-only shm wire format.

    Layout: an 8-byte little-endian length, the pickled symbol tables
    ``(relations, consts)``, then a flat ``array('q')`` stream of block
    records ``rel_id, key_id, n_values, value_id...`` -- every id a
    **snapshot-local** dense index into the shipped tables, never a
    process-wide interner id (the same hygiene contract as
    :meth:`DatabaseInstance.__reduce__`; ``_decode_snapshot`` rejects
    any id outside the shipped tables).  Block records emit values in
    the parent's sorted block order, so the receiver can assemble
    presorted blocks without re-sorting.
    """
    local: dict = {}
    consts: list = []
    rel_ids: dict = {}
    rels: list = []
    stream = array("q")
    append = stream.append
    lookup = local.get
    for (key, rel), facts in db._out_index.items():
        rel_id = rel_ids.get(rel)
        if rel_id is None:
            rel_id = rel_ids[rel] = len(rels)
            rels.append(rel)
        key_id = lookup(key)
        if key_id is None:
            key_id = local[key] = len(consts)
            consts.append(key)
        append(rel_id)
        append(key_id)
        append(len(facts))
        for fact in facts:
            value_id = lookup(fact.value)
            if value_id is None:
                value_id = local[fact.value] = len(consts)
                consts.append(fact.value)
            append(value_id)
    tables = pickle.dumps((rels, consts), protocol=pickle.HIGHEST_PROTOCOL)
    return len(tables).to_bytes(8, "little") + tables + stream.tobytes()


def _decode_snapshot(payload: bytes) -> DatabaseInstance:
    """Rebuild a :class:`DatabaseInstance` from the shm wire format.

    Every id in the stream is bounds-checked against the shipped symbol
    tables: an out-of-range id means the segment carries something other
    than snapshot-local indexes (e.g. a process-wide interner id leaked
    into the encoding) and the snapshot is rejected outright rather than
    silently resolved against the receiver's interner.
    """
    tables_len = int.from_bytes(payload[:8], "little")
    rels, consts = pickle.loads(payload[8 : 8 + tables_len])
    stream = array("q")
    stream.frombytes(payload[8 + tables_len :])
    ids = stream.tolist()
    blocks: dict = {}
    out_index: dict = {}
    all_facts: list = []
    index = 0
    end = len(ids)
    n_consts = len(consts)
    n_rels = len(rels)
    presorted = Block.presorted
    extend = all_facts.extend
    new_fact = Fact.__new__
    while index < end:
        rel_id = ids[index]
        key_id = ids[index + 1]
        count = ids[index + 2]
        if not (0 <= rel_id < n_rels and 0 <= key_id < n_consts):
            raise ShardTransportError(
                "shm snapshot carries non-local ids (interner leak?)"
            )
        rel = rels[rel_id]
        key = consts[key_id]
        index += 3
        values = ids[index : index + count]
        index += count
        if values and not (0 <= min(values) and max(values) < n_consts):
            raise ShardTransportError(
                "shm snapshot carries non-local ids (interner leak?)"
            )
        block_facts = []
        for value_id in values:
            fact = new_fact(Fact)
            state = fact.__dict__
            state["relation"] = rel
            state["key"] = key
            state["value"] = consts[value_id]
            block_facts.append(fact)
        facts = tuple(block_facts)
        block_id = (rel, key)
        blocks[block_id] = presorted(block_id, facts)
        out_index[(key, rel)] = facts
        extend(facts)
    # Every symbol-table entry is referenced by construction (encode
    # interns on first use), so the tables are exactly the active domain.
    return DatabaseInstance._from_parts(
        frozenset(all_facts), blocks, frozenset(consts), out_index
    )


class _ShmSnapshot:
    """Wire marker standing in for a register op's snapshot payload.

    The parent replaces the op's :class:`DatabaseInstance` with this
    marker before pickling the frame; the child resolves it by attaching
    the named segment, decoding the facts-only payload, and detaching.
    The parent owns the segment's lifetime (unlinked once the batch --
    including any crash retry, which re-reads it -- has fully resolved).
    """

    def __init__(self, name: str, nbytes: int) -> None:
        self.name = name
        self.nbytes = nbytes

    def load(self) -> DatabaseInstance:
        if _shared_memory is None:  # pragma: no cover - guarded by sender
            raise ShardTransportError("shared memory is unavailable")
        segment = _shared_memory.SharedMemory(name=self.name)
        try:
            payload = bytes(segment.buf[: self.nbytes])
        finally:
            # Close the mapping only -- the parent owns the segment and
            # unlinks it once the batch resolves.  The attach's resource
            # -tracker registration is shared with (and deduplicated
            # against) the parent's, so the parent's unlink retires it.
            segment.close()
        return _decode_snapshot(payload)

    def __repr__(self) -> str:
        return "_ShmSnapshot({!r}, {} bytes)".format(self.name, self.nbytes)


def _resolve_shm_op(op: ShardOp) -> ShardOp:
    """Child-side: swap a register op's shm marker for the decoded db."""
    if op[0] == "register" and isinstance(op[2], _ShmSnapshot):
        return (op[0], op[1], op[2].load()) + tuple(op[3:])
    return op


class ProcessTransport(ShardTransport):
    """One persistent subprocess per shard, behind the same seam.

    The child runs :func:`_shard_process_main`: a loop holding the
    shard's :class:`ShardCore` (engine, plan/state caches, residents)
    for the process lifetime, executing one pickled batch per message.
    The router side writes every registration and forwarded delta to the
    shard's **journal** (a :class:`~repro.serving.journal.ShardJournal`
    view) *before* dispatching the batch; the journal's folded snapshots
    are both the replay source after a crash (or a server restart, with
    a durable store) and the rehydration source for stripped lazy
    certificates.  Write ops are stamped with a per-shard monotonic
    sequence number so a retried batch never applies a write twice (the
    child skips sequences at or below its applied high-water).
    """

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        mp_context: str = "spawn",
        journal: Optional[ShardJournal] = None,
        faults=None,
        restart_policy: Optional[RestartPolicy] = None,
        degraded: bool = True,
        stop_timeout: float = 5.0,
        shm_threshold: Optional[int] = SHM_SNAPSHOT_THRESHOLD,
    ) -> None:
        self.shard_id = shard_id
        self.engine_factory = engine_factory
        self._init_resilience(
            shard_id, engine_factory, faults, restart_policy, degraded
        )
        #: Estimated payload bytes above which register snapshots ship
        #: via shared memory; ``None`` (or a missing shm backend) keeps
        #: every snapshot on the pickled-frame path.
        self.shm_threshold = (
            shm_threshold if _shared_memory is not None else None
        )
        #: Seconds to wait at each escalation step of :meth:`stop`
        #: (protocol stop -> terminate -> kill).
        self.stop_timeout = stop_timeout
        self._context = multiprocessing.get_context(mp_context)
        #: The shard's journal view: name -> current folded instance
        #: (the registered snapshot with every forwarded delta folded
        #: in).  Replay = re-register these snapshots.  Without an
        #: injected journal the transport keeps a private in-memory one
        #: -- the PR 5 behavior.
        self.journal = (
            journal
            if journal is not None
            else MemoryJournalStore().shard(shard_id)
        )
        #: Per-shard write sequence counter; resumes from the journal's
        #: high-water so fresh writes on a reopened log are never
        #: mistaken for redeliveries.
        self._seq = self.journal.last_seq()
        #: A non-empty journal at construction means a cold start (e.g.
        #: a reopened server): the first batch replays it into the fresh
        #: child before serving.
        self._needs_replay = self._seq > 0 or bool(self.journal.residents())
        self.restarts = 0
        self.snapshot_bytes = 0
        self.snapshot_shm = 0
        self.deltas_forwarded = 0
        #: Live shared-memory segments for the batch in flight; released
        #: (closed + unlinked) once the batch fully resolves -- retries
        #: against a restarted child re-read the same segments.
        self._segments: List = []
        #: Fault-injection hook (tests only): the child executes the
        #: next N batches normally -- commits and all -- but exits
        #: before replying, simulating a crash between commit and ack.
        self.fail_replies = 0
        self.process = None
        self._conn = None
        #: Latest child-side core snapshot (piggybacked on every reply).
        self._last: Optional[dict] = None
        #: Accumulated counters of dead child generations.
        self._carry: Optional[dict] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.process is not None:
            return
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_process_main,
            args=(child_conn, self.shard_id, self.engine_factory),
            name="repro-shard-proc-{}".format(self.shard_id),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            # Leave the transport cleanly stopped: a failed start must
            # not strand a half-initialized process/pipe pair.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        self.process = process
        self._conn = parent_conn

    def stop(self) -> None:
        """Stop the child, escalating until it is actually gone.

        Protocol stop first (graceful: the child drains and exits),
        then ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL, which
        not even a stopped or wedged child can ignore), each step
        bounded by :attr:`stop_timeout` -- ``stop()`` can never hang on
        or leak a stuck child.  Requests still queued at the *worker*
        are failed with ``ServerClosed`` by ``ShardWorker.stop()``
        before it calls this.
        """
        if self.process is None:
            return
        try:
            self._conn.send_bytes(pickle.dumps(("stop",)))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=self.stop_timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.terminate()
            self.process.join(timeout=self.stop_timeout)
        if self.process.is_alive():  # pragma: no cover - wedged child
            self.process.kill()
            self.process.join(timeout=self.stop_timeout)
        self._conn.close()
        self.process = None
        self._conn = None
        self._release_segments()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, requests: List[ShardRequest]) -> None:
        state = self.breaker.state
        if state == "open":
            self._shed_unavailable(requests)
            return
        try:
            self._execute(requests, probe=state == "half_open")
        finally:
            # The batch is fully resolved (or failed for good): every
            # shm segment it shipped has been consumed and can go.  A
            # batch abandoned mid-crash still releases here -- segments
            # never outlive their batch.
            self._release_segments()

    def _execute(self, requests: List[ShardRequest], probe: bool) -> None:
        crash_mode, dup = self._draw_faults(requests)
        for request in requests:
            if request.op in ("register", "delta") and request.seq == 0:
                self._seq += 1
                request.seq = self._seq
        ops = [request.as_op() for request in requests]
        # Serialize each op to its own frame slice *before* journaling:
        # an unpicklable payload must fail the batch without leaving a
        # journal entry behind (it could never be replayed anyway).
        blobs = self._serialize(ops)
        self._account_wire(ops, blobs)
        # Write-ahead journaling: the journal records the write before
        # the child sees it, so a child that commits and dies before
        # acking is replayed to the exact committed state -- and the
        # retry's stamped ops are then skipped child-side.
        self._journal_ahead(requests)
        try:
            rows = self._round_trip(blobs, crash_mode)
            if dup:
                # Duplicated delivery: ship the same frames again; the
                # child skips the stamped writes and the second reply's
                # rows are discarded (its snapshot still refreshes the
                # counters) -- exactly-once effect under redelivery.
                self._round_trip(blobs)
        except (EOFError, OSError) as first_error:
            # The child died (or the pipe broke) mid-conversation.
            # Supervision decides what happens next: restart + replay +
            # one retry if the policy grants it (a half-open probe
            # always may), otherwise trip the breaker and shed.
            self.breaker.record_failure()
            if not (probe or self.breaker.allow_restart()):
                self.breaker.trip()
                self._shed_unavailable(requests)
                return
            try:
                self._restart_and_replay()
                rows = self._round_trip(blobs)
            except (EOFError, OSError) as second_error:
                self.breaker.record_failure()
                self.breaker.trip()
                failure = ShardTransportError(
                    "shard {} subprocess failed twice ({!r} then {!r}); "
                    "giving up on this batch".format(
                        self.shard_id, first_error, second_error
                    )
                )
                for request in requests:
                    request.fail(failure)
                return
        if self.breaker.consecutive_failures or probe:
            self.breaker.record_success()
        self._finish(requests, rows)

    def _serialize(self, ops: List[ShardOp]) -> List[bytes]:
        """One pickled frame slice per op (a single pickling pass: the
        slices are sent as-is, and sizing register slices separately is
        what keeps ``snapshot_bytes`` honest about mixed batches).
        Register snapshots whose estimated payload clears
        :attr:`shm_threshold` are diverted to a shared-memory segment:
        the frame then carries only a tiny :class:`_ShmSnapshot` marker
        and the segment (billed to ``snapshot_shm``) carries the flat
        facts-only arrays."""
        return [
            pickle.dumps(
                self._maybe_shm(op), protocol=pickle.HIGHEST_PROTOCOL
            )
            for op in ops
        ]

    def _maybe_shm(self, op: ShardOp) -> ShardOp:
        if (
            self.shm_threshold is None
            or op[0] != "register"
            or not isinstance(op[2], DatabaseInstance)
            or _estimate_snapshot_bytes(op[2]) < self.shm_threshold
        ):
            return op
        payload = _encode_snapshot(op[2])
        segment = _shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        segment.buf[: len(payload)] = payload
        self._segments.append(segment)
        self.snapshot_shm += len(payload)
        marker = _ShmSnapshot(segment.name, len(payload))
        return (op[0], op[1], marker) + tuple(op[3:])

    def _release_segments(self) -> None:
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already gone
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def _round_trip(self, blobs: List[bytes], crash_mode: int = 0):
        if self._needs_replay:
            # Cold start against a warm (durable) journal: restore the
            # residents before the first real batch.
            self._needs_replay = False
            self.start()
            self._replay()
        self.start()
        if self.fail_replies > 0:
            # The legacy hook is now a shorthand for crash mode 1
            # (commit, then die before acking).
            self.fail_replies -= 1
            crash_mode = 1
        self._conn.send_bytes(
            pickle.dumps(
                ("batch", blobs, crash_mode),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        kind, rows, snapshot = self._conn.recv()
        assert kind == "results", kind
        self._last = snapshot
        return rows

    def _account_wire(self, ops: List[ShardOp], blobs: List[bytes]) -> None:
        """Health counters, billed once per batch (retries reuse the
        same frames): forwarded deltas by count, resident snapshots by
        their own wire size -- solve/delta companions in a mixed batch
        never inflate ``snapshot_bytes``."""
        for op, blob in zip(ops, blobs):
            if op[0] == "delta":
                self.deltas_forwarded += 1
            elif op[0] == "register":
                self.snapshot_bytes += len(blob)

    def _journal_ahead(self, requests: List[ShardRequest]) -> None:
        for request in requests:
            if request.op == "register":
                self.journal.register(request.name, request.db, request.seq)
            elif (
                request.op == "delta"
                and self.journal.get(request.name) is not None
            ):
                # Unknown names are not journaled: the child will fail
                # the op without applying it.
                self.journal.delta(request.name, request.delta, request.seq)

    def _restart_and_replay(self) -> None:
        # The attempt is charged against the rolling window whether or
        # not the replay below succeeds -- a shard that keeps dying
        # during recovery burns budget just like one dying in service.
        self.breaker.record_restart()
        dead = self._last
        self.stop()
        self.start()
        self._replay()
        # Only a fully successful restart+replay moves the recovery
        # counters: on failure everything above raised, the dead
        # generation's snapshot is still in ``_last``, and the *next*
        # recovery merges it exactly once -- stats stay monotone and
        # never double-count.
        self.restarts += 1
        self._carry = merge_snapshots(self._carry, dead)
        if self._last is dead:
            # Empty journal: no replay round trip refreshed ``_last``.
            self._last = None

    def _replay(self) -> None:
        """Re-register the journal's folded residents into a fresh child.

        The replay batch ends with a ``seal`` op carrying the journal's
        sequence high-water: the snapshots already contain every write
        up to it, so the child acks them all and a subsequent retry of
        an already-journaled write is skipped instead of applied twice.
        """
        self._needs_replay = False
        residents = self.journal.residents()
        if not residents:
            return
        replay: List[ShardOp] = [
            ("register", name, db, None, None, "auto", 0, None)
            for name, db in sorted(residents.items())
        ]
        replay.append(
            (
                "seal",
                None,
                None,
                None,
                None,
                "auto",
                self.journal.last_seq(),
                None,
            )
        )
        blobs = self._serialize(replay)
        self._account_wire(replay, blobs)
        rows = self._round_trip(blobs)
        for ok, payload in ((row[0], row[1]) for row in rows):
            if not ok:  # pragma: no cover - register cannot fail
                raise ShardTransportError(
                    "shard {} journal replay failed: {!r}".format(
                        self.shard_id, payload
                    )
                )

    def _finish(self, requests: List[ShardRequest], rows) -> None:
        for request, (ok, payload, was_lazy) in zip(requests, rows):
            if not ok:
                request.fail(payload)
                continue
            if was_lazy and isinstance(payload, CertaintyResult):
                # The journal was written ahead of dispatch, so for a
                # delta it already holds the updated instance the
                # certificate refers to.
                payload.rehydrate(self._rehydration_db(request), request.query)
            request.resolve(payload)

    def _rehydration_db(
        self, request: ShardRequest
    ) -> Optional[DatabaseInstance]:
        if request.db is not None:
            return request.db
        if request.name is not None:
            return self.journal.read(request.name)
        return None  # pragma: no cover - solve always has a db or a name

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        live = self._last if self._last is not None else ShardCore.empty_snapshot()
        return merge_snapshots(self._carry, live)

    def health(self) -> dict:
        health = {
            "transport": self.kind,
            "alive": self.process is not None and self.process.is_alive(),
            "restarts": self.restarts,
            #: Wire bytes of every register op shipped to the child
            #: (client registrations and journal replay) -- measured per
            #: op, so mixed-batch solve/delta traffic is not billed.
            #: Snapshots diverted to shared memory bill their segment
            #: bytes to ``snapshot_shm`` instead (their frame slice --
            #: just the marker -- still counts as wire bytes).
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_shm": self.snapshot_shm,
            "deltas_forwarded": self.deltas_forwarded,
            "journal": self.journal.kind,
        }
        health.update(self._resilience_health())
        return health


#: Built-in transports selectable by name (CLI ``--transport``).
TRANSPORTS = {
    "thread": ThreadTransport,
    "process": ProcessTransport,
}


def make_transport(
    spec: Union[str, Callable, ShardTransport],
    shard_id: int,
    engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
    **options,
) -> ShardTransport:
    """Resolve *spec* -- a name, a factory, or an instance -- to a transport."""
    if isinstance(spec, ShardTransport):
        return spec
    if isinstance(spec, str):
        try:
            factory = TRANSPORTS[spec]
        except KeyError:
            raise ValueError(
                "unknown transport {!r} (choose from {})".format(
                    spec, ", ".join(sorted(TRANSPORTS))
                )
            )
        return factory(shard_id, engine_factory=engine_factory, **options)
    return spec(shard_id, engine_factory=engine_factory, **options)


def merge_snapshots(base: Optional[dict], snapshot: Optional[dict]) -> dict:
    """Fold two core snapshots: counters add, latest structure wins.

    Used to keep per-shard statistics monotone across child restarts:
    *base* accumulates dead generations, *snapshot* is the live child's
    cumulative view.  Engine counters merge through
    :meth:`~repro.engine.engine.EngineStats.merge`.
    """
    if snapshot is None:
        snapshot = ShardCore.empty_snapshot()
    if base is None:
        return dict(snapshot)
    merged = dict(snapshot)
    for key in (
        "requests",
        "coalesced",
        "errors",
        "deadline_shed",
        "warm_hits",
        "cold_solves",
    ):
        merged[key] = base.get(key, 0) + snapshot.get(key, 0)
    merged["engine"] = (
        EngineStats.from_dict(base.get("engine", {}))
        .merge(snapshot.get("engine", {}))
        .as_dict()
    )
    return merged


def _shard_process_main(conn, shard_id: int, engine_factory) -> None:
    """The shard subprocess: one persistent core, one batch per message.

    Protocol (parent->child messages arrive as explicitly pickled byte
    frames; each op inside a batch is its own pickled slice -- the
    parent serializes once per op and bills register slices as
    ``snapshot_bytes``; replies go back as plain ``conn.send`` objects):

    * ``("batch", blobs, crash_mode)`` -> ``("results", rows, snapshot)``
      where *blobs* are the pickled :data:`~repro.serving.shard.ShardOp`
      tuples, each row is ``(ok, payload, was_lazy)`` aligned with them,
      and *snapshot* is the core's cumulative counters (including its
      ``applied_seq`` write high-water);
    * ``("stop",)`` or EOF -> the process exits.

    *crash_mode* is the fault-injection hook (see
    :mod:`repro.serving.faults`): ``1`` runs the batch to completion --
    writes commit -- then exits without replying (the commit-to-ack
    window, where the retry path must not double-apply); ``2`` exits on
    receipt, before the core sees the batch (a dropped delivery, where
    the retry path *must* apply).

    Lazy falsifying-repair certificates are stripped before the reply is
    pickled (``was_lazy`` tells the router side to rehydrate against its
    journal); materialized certificates (e.g. SAT counterexamples) ship
    as-is.
    """
    core = ShardCore(shard_id, engine_factory=engine_factory)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        _, blobs, crash_mode = message
        if crash_mode == 2:
            # Drop injection: the delivery vanishes before the core
            # sees it -- die without applying (or acking) anything.
            conn.close()
            os._exit(1)
        ops = [_resolve_shm_op(pickle.loads(blob)) for blob in blobs]
        rows = []
        for ok, payload in core.run_batch(ops):
            was_lazy = (
                ok
                and isinstance(payload, CertaintyResult)
                and payload.has_lazy_repair
            )
            if was_lazy:
                payload.strip()
            rows.append((ok, payload, was_lazy))
        if crash_mode:
            # Crash injection (mode 1): the writes above are committed;
            # die in the commit-to-ack window without a reply.
            conn.close()
            os._exit(1)
        reply = ("results", rows, core.snapshot())
        try:
            conn.send(reply)
        except Exception:  # pragma: no cover - unpicklable payload
            # Keep the protocol alive, and keep batch-companion
            # isolation: only the rows that actually cannot cross the
            # pipe are replaced with a stringified error.
            fallback = []
            for ok, payload, was_lazy in rows:
                try:
                    pickle.dumps(payload)
                except Exception:
                    ok, was_lazy = False, False
                    payload = ShardTransportError(
                        "unpicklable shard result: {!r}".format(payload)
                    )
                fallback.append((ok, payload, was_lazy))
            conn.send(("results", fallback, core.snapshot()))
