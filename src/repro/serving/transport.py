"""Pluggable shard transports: where a shard's core actually runs.

The :class:`~repro.serving.shard.ShardWorker` assembles micro-batches;
a **transport** executes them against the shard's
:class:`~repro.serving.shard.ShardCore` (residents + engine).  Two
implementations share the seam:

* :class:`ThreadTransport` -- the core lives in the worker's own thread.
  Zero serialization, results shared by reference, but every shard
  competes for the one GIL: CPU-bound routes (coNP SAT re-solves, cold
  PTIME fixpoints) serialize across shards.
* :class:`ProcessTransport` -- the core lives in a dedicated subprocess
  with a persistent engine, one per shard, so shards burn CPU in
  parallel.  The wire protocol is deliberately thin:

  - **residents ship once** as facts-only snapshots (the
    :meth:`~repro.db.instance.DatabaseInstance.__reduce__` contract:
    no compact views, no interner ids cross the pipe -- the child
    rebuilds its own view on first use);
  - **writes forward only the** :class:`~repro.db.delta.Delta`, and are
    **journaled ahead of dispatch**: registrations and deltas are
    recorded in the shard's journal (a
    :class:`~repro.serving.journal.ShardJournal` view -- in-memory by
    default, sqlite-durable when the server is opened with one) before
    the batch crosses the pipe, so parent-side journal and child
    registry stay fact-identical even across a child crash;
  - **writes are stamped** with a per-shard monotonic sequence number;
    the child acks the highest applied sequence in its snapshot and
    skips redelivered writes, so the crash-retry path is at-least-once
    delivery with exactly-once effect;
  - **results return stripped**: the child drops lazy falsifying-repair
    certificates before pickling (an unread certificate is O(db) on the
    wire) and the router side re-attaches a
    :class:`~repro.solvers.result.LazyMinimalRepair` against its journal
    copy -- the certificate is rebuilt on first access, exactly as the
    in-process lazy path would have;
  - **crashes are survivable**: a dead child is detected on the next
    batch, restarted, and its residents replayed from the journal (the
    folded log of everything shipped), after which the batch is retried
    once.  Counters stay monotone across restarts -- the dead
    generation's last snapshot is merged into a carried base (see
    :meth:`repro.engine.engine.EngineStats.merge`), and only after the
    replacement child is known good.

Transport health (``restarts``, ``snapshot_bytes``, ``deltas_forwarded``,
``journal``, ``alive``) is reported per shard via
``ShardWorker.stats()["transport"]`` and surfaces in
``python -m repro serve --stats``.

The default process start method is ``spawn``: children begin from a
fresh interpreter, which keeps the facts-only wire contract honest (a
forked child would share the parent's interner pages) and avoids
forking a multi-threaded server.  For ``spawn``, *engine_factory* must
be picklable -- the :class:`~repro.engine.CertaintyEngine` class itself,
or a ``functools.partial`` over it.

>>> make_transport("thread", 0).kind
'thread'
>>> make_transport("process", 0).kind      # not started until first use
'process'
>>> make_transport("telepathy", 0)
Traceback (most recent call last):
    ...
ValueError: unknown transport 'telepathy' (choose from process, thread)
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Callable, List, Optional, Union

from repro.db.instance import DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineStats
from repro.serving.journal import MemoryJournalStore, ShardJournal
from repro.serving.shard import ShardCore, ShardOp, ShardRequest
from repro.solvers.result import CertaintyResult


class ShardTransportError(RuntimeError):
    """The shard's transport failed and could not recover."""


class ShardTransport:
    """The seam between micro-batch assembly and execution.

    A transport owns one shard's :class:`ShardCore` -- directly
    (:class:`ThreadTransport`) or by proxy (:class:`ProcessTransport`) --
    and executes assembled batches against it.  ``execute`` must resolve
    or fail *every* request in the batch before returning; ``snapshot``
    returns the core's execution counters (see
    :meth:`ShardCore.snapshot`), ``health`` the transport's own vitals.
    A future network front end is one more implementation of this class.
    """

    #: Short name surfaced in stats (``"thread"``, ``"process"``).
    kind = "abstract"

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def execute(self, requests: List[ShardRequest]) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def health(self) -> dict:
        raise NotImplementedError


class ThreadTransport(ShardTransport):
    """The PR 3 behavior, refactored onto the seam: the core is local.

    Results are handed to futures by reference (no serialization, lazy
    certificates stay lazy in the shared heap); all shards share the
    interpreter, so throughput is bounded by the GIL -- the right choice
    when requests are served warm (microseconds each) and the wrong one
    when every request burns CPU.
    """

    kind = "thread"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        journal: Optional[ShardJournal] = None,
    ) -> None:
        self.shard_id = shard_id
        self.core = ShardCore(shard_id, engine_factory=engine_factory)
        self.journal = journal
        self._seq = 0
        if journal is not None:
            # Cold start from a warm journal: adopt its residents and
            # its sequence high-water before serving anything.
            self.core.instances.update(journal.residents())
            self.core.applied_seq = journal.last_seq()
            self._seq = journal.last_seq()

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def execute(self, requests: List[ShardRequest]) -> None:
        if self.journal is not None:
            for request in requests:
                if request.op in ("register", "delta"):
                    self._seq += 1
                    request.seq = self._seq
        rows = self.core.run_batch([request.as_op() for request in requests])
        self._journal_applied(requests)
        for request, (ok, payload) in zip(requests, rows):
            if ok:
                request.resolve(payload)
            else:
                request.fail(payload)

    def _journal_applied(self, requests: List[ShardRequest]) -> None:
        """Mirror every write the core applied into the journal.

        The core is local, so there is no crash window to journal ahead
        of: recording after the batch sees exactly the applied writes
        (``seq <= applied_seq`` -- a delta whose read half failed still
        counts: the core commits the write regardless).
        """
        if self.journal is None:
            return
        for request in requests:
            if request.seq == 0 or request.seq > self.core.applied_seq:
                continue
            if request.op == "register":
                self.journal.register(request.name, request.db, request.seq)
            elif (
                request.op == "delta"
                and self.journal.get(request.name) is not None
            ):
                # An unknown-name delta fails without applying; its seq
                # can still sit below the batch's final high-water, so
                # the resident check (not the seq) excludes it here.
                self.journal.delta(request.name, request.delta, request.seq)

    def snapshot(self) -> dict:
        return self.core.snapshot()

    def health(self) -> dict:
        return {
            "transport": self.kind,
            "alive": True,
            "restarts": 0,
            "snapshot_bytes": 0,
            "deltas_forwarded": 0,
            "journal": self.journal.kind if self.journal else "none",
        }


class ProcessTransport(ShardTransport):
    """One persistent subprocess per shard, behind the same seam.

    The child runs :func:`_shard_process_main`: a loop holding the
    shard's :class:`ShardCore` (engine, plan/state caches, residents)
    for the process lifetime, executing one pickled batch per message.
    The router side writes every registration and forwarded delta to the
    shard's **journal** (a :class:`~repro.serving.journal.ShardJournal`
    view) *before* dispatching the batch; the journal's folded snapshots
    are both the replay source after a crash (or a server restart, with
    a durable store) and the rehydration source for stripped lazy
    certificates.  Write ops are stamped with a per-shard monotonic
    sequence number so a retried batch never applies a write twice (the
    child skips sequences at or below its applied high-water).
    """

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        mp_context: str = "spawn",
        journal: Optional[ShardJournal] = None,
    ) -> None:
        self.shard_id = shard_id
        self.engine_factory = engine_factory
        self._context = multiprocessing.get_context(mp_context)
        #: The shard's journal view: name -> current folded instance
        #: (the registered snapshot with every forwarded delta folded
        #: in).  Replay = re-register these snapshots.  Without an
        #: injected journal the transport keeps a private in-memory one
        #: -- the PR 5 behavior.
        self.journal = (
            journal
            if journal is not None
            else MemoryJournalStore().shard(shard_id)
        )
        #: Per-shard write sequence counter; resumes from the journal's
        #: high-water so fresh writes on a reopened log are never
        #: mistaken for redeliveries.
        self._seq = self.journal.last_seq()
        #: A non-empty journal at construction means a cold start (e.g.
        #: a reopened server): the first batch replays it into the fresh
        #: child before serving.
        self._needs_replay = self._seq > 0 or bool(self.journal.residents())
        self.restarts = 0
        self.snapshot_bytes = 0
        self.deltas_forwarded = 0
        #: Fault-injection hook (tests only): the child executes the
        #: next N batches normally -- commits and all -- but exits
        #: before replying, simulating a crash between commit and ack.
        self.fail_replies = 0
        self.process = None
        self._conn = None
        #: Latest child-side core snapshot (piggybacked on every reply).
        self._last: Optional[dict] = None
        #: Accumulated counters of dead child generations.
        self._carry: Optional[dict] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.process is not None:
            return
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_process_main,
            args=(child_conn, self.shard_id, self.engine_factory),
            name="repro-shard-proc-{}".format(self.shard_id),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            # Leave the transport cleanly stopped: a failed start must
            # not strand a half-initialized process/pipe pair.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        self.process = process
        self._conn = parent_conn

    def stop(self) -> None:
        if self.process is None:
            return
        try:
            self._conn.send_bytes(pickle.dumps(("stop",)))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.kill()
            self.process.join(timeout=5)
        self._conn.close()
        self.process = None
        self._conn = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, requests: List[ShardRequest]) -> None:
        for request in requests:
            if request.op in ("register", "delta"):
                self._seq += 1
                request.seq = self._seq
        ops = [request.as_op() for request in requests]
        # Serialize each op to its own frame slice *before* journaling:
        # an unpicklable payload must fail the batch without leaving a
        # journal entry behind (it could never be replayed anyway).
        blobs = self._serialize(ops)
        self._account_wire(ops, blobs)
        # Write-ahead journaling: the journal records the write before
        # the child sees it, so a child that commits and dies before
        # acking is replayed to the exact committed state -- and the
        # retry's stamped ops are then skipped child-side.
        self._journal_ahead(requests)
        try:
            rows = self._round_trip(blobs)
        except (EOFError, OSError) as first_error:
            # The child died (or the pipe broke) mid-conversation:
            # restart it, replay the journal, retry the batch once.
            try:
                self._restart_and_replay()
                rows = self._round_trip(blobs)
            except (EOFError, OSError) as second_error:
                failure = ShardTransportError(
                    "shard {} subprocess failed twice ({!r} then {!r}); "
                    "giving up on this batch".format(
                        self.shard_id, first_error, second_error
                    )
                )
                for request in requests:
                    request.fail(failure)
                return
        self._finish(requests, rows)

    def _serialize(self, ops: List[ShardOp]) -> List[bytes]:
        """One pickled frame slice per op (a single pickling pass: the
        slices are sent as-is, and sizing register slices separately is
        what keeps ``snapshot_bytes`` honest about mixed batches)."""
        return [
            pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL) for op in ops
        ]

    def _round_trip(self, blobs: List[bytes]):
        if self._needs_replay:
            # Cold start against a warm (durable) journal: restore the
            # residents before the first real batch.
            self._needs_replay = False
            self.start()
            self._replay()
        self.start()
        crash = False
        if self.fail_replies > 0:
            self.fail_replies -= 1
            crash = True
        self._conn.send_bytes(
            pickle.dumps(
                ("batch", blobs, crash), protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        kind, rows, snapshot = self._conn.recv()
        assert kind == "results", kind
        self._last = snapshot
        return rows

    def _account_wire(self, ops: List[ShardOp], blobs: List[bytes]) -> None:
        """Health counters, billed once per batch (retries reuse the
        same frames): forwarded deltas by count, resident snapshots by
        their own wire size -- solve/delta companions in a mixed batch
        never inflate ``snapshot_bytes``."""
        for op, blob in zip(ops, blobs):
            if op[0] == "delta":
                self.deltas_forwarded += 1
            elif op[0] == "register":
                self.snapshot_bytes += len(blob)

    def _journal_ahead(self, requests: List[ShardRequest]) -> None:
        for request in requests:
            if request.op == "register":
                self.journal.register(request.name, request.db, request.seq)
            elif (
                request.op == "delta"
                and self.journal.get(request.name) is not None
            ):
                # Unknown names are not journaled: the child will fail
                # the op without applying it.
                self.journal.delta(request.name, request.delta, request.seq)

    def _restart_and_replay(self) -> None:
        dead = self._last
        self.stop()
        self.start()
        self._replay()
        # Only a fully successful restart+replay moves the recovery
        # counters: on failure everything above raised, the dead
        # generation's snapshot is still in ``_last``, and the *next*
        # recovery merges it exactly once -- stats stay monotone and
        # never double-count.
        self.restarts += 1
        self._carry = merge_snapshots(self._carry, dead)
        if self._last is dead:
            # Empty journal: no replay round trip refreshed ``_last``.
            self._last = None

    def _replay(self) -> None:
        """Re-register the journal's folded residents into a fresh child.

        The replay batch ends with a ``seal`` op carrying the journal's
        sequence high-water: the snapshots already contain every write
        up to it, so the child acks them all and a subsequent retry of
        an already-journaled write is skipped instead of applied twice.
        """
        self._needs_replay = False
        residents = self.journal.residents()
        if not residents:
            return
        replay: List[ShardOp] = [
            ("register", name, db, None, None, "auto", 0)
            for name, db in sorted(residents.items())
        ]
        replay.append(
            ("seal", None, None, None, None, "auto", self.journal.last_seq())
        )
        blobs = self._serialize(replay)
        self._account_wire(replay, blobs)
        rows = self._round_trip(blobs)
        for ok, payload in ((row[0], row[1]) for row in rows):
            if not ok:  # pragma: no cover - register cannot fail
                raise ShardTransportError(
                    "shard {} journal replay failed: {!r}".format(
                        self.shard_id, payload
                    )
                )

    def _finish(self, requests: List[ShardRequest], rows) -> None:
        for request, (ok, payload, was_lazy) in zip(requests, rows):
            if not ok:
                request.fail(payload)
                continue
            if was_lazy and isinstance(payload, CertaintyResult):
                # The journal was written ahead of dispatch, so for a
                # delta it already holds the updated instance the
                # certificate refers to.
                payload.rehydrate(self._rehydration_db(request), request.query)
            request.resolve(payload)

    def _rehydration_db(
        self, request: ShardRequest
    ) -> Optional[DatabaseInstance]:
        if request.db is not None:
            return request.db
        if request.name is not None:
            return self.journal.get(request.name)
        return None  # pragma: no cover - solve always has a db or a name

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        live = self._last if self._last is not None else ShardCore.empty_snapshot()
        return merge_snapshots(self._carry, live)

    def health(self) -> dict:
        return {
            "transport": self.kind,
            "alive": self.process is not None and self.process.is_alive(),
            "restarts": self.restarts,
            #: Wire bytes of every register op shipped to the child
            #: (client registrations and journal replay) -- measured per
            #: op, so mixed-batch solve/delta traffic is not billed.
            "snapshot_bytes": self.snapshot_bytes,
            "deltas_forwarded": self.deltas_forwarded,
            "journal": self.journal.kind,
        }


#: Built-in transports selectable by name (CLI ``--transport``).
TRANSPORTS = {
    "thread": ThreadTransport,
    "process": ProcessTransport,
}


def make_transport(
    spec: Union[str, Callable, ShardTransport],
    shard_id: int,
    engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
    **options,
) -> ShardTransport:
    """Resolve *spec* -- a name, a factory, or an instance -- to a transport."""
    if isinstance(spec, ShardTransport):
        return spec
    if isinstance(spec, str):
        try:
            factory = TRANSPORTS[spec]
        except KeyError:
            raise ValueError(
                "unknown transport {!r} (choose from {})".format(
                    spec, ", ".join(sorted(TRANSPORTS))
                )
            )
        return factory(shard_id, engine_factory=engine_factory, **options)
    return spec(shard_id, engine_factory=engine_factory, **options)


def merge_snapshots(base: Optional[dict], snapshot: Optional[dict]) -> dict:
    """Fold two core snapshots: counters add, latest structure wins.

    Used to keep per-shard statistics monotone across child restarts:
    *base* accumulates dead generations, *snapshot* is the live child's
    cumulative view.  Engine counters merge through
    :meth:`~repro.engine.engine.EngineStats.merge`.
    """
    if snapshot is None:
        snapshot = ShardCore.empty_snapshot()
    if base is None:
        return dict(snapshot)
    merged = dict(snapshot)
    for key in ("requests", "coalesced", "errors", "warm_hits", "cold_solves"):
        merged[key] = base.get(key, 0) + snapshot.get(key, 0)
    merged["engine"] = (
        EngineStats.from_dict(base.get("engine", {}))
        .merge(snapshot.get("engine", {}))
        .as_dict()
    )
    return merged


def _shard_process_main(conn, shard_id: int, engine_factory) -> None:
    """The shard subprocess: one persistent core, one batch per message.

    Protocol (parent->child messages arrive as explicitly pickled byte
    frames; each op inside a batch is its own pickled slice -- the
    parent serializes once per op and bills register slices as
    ``snapshot_bytes``; replies go back as plain ``conn.send`` objects):

    * ``("batch", blobs, fail_reply)`` -> ``("results", rows, snapshot)``
      where *blobs* are the pickled :data:`~repro.serving.shard.ShardOp`
      tuples, each row is ``(ok, payload, was_lazy)`` aligned with them,
      and *snapshot* is the core's cumulative counters (including its
      ``applied_seq`` write high-water);
    * ``("stop",)`` or EOF -> the process exits.

    *fail_reply* is the crash-injection hook behind the at-least-once
    regression tests: when set, the batch runs to completion -- writes
    commit -- but the process exits without replying, exactly the
    window where the retry path must not double-apply.

    Lazy falsifying-repair certificates are stripped before the reply is
    pickled (``was_lazy`` tells the router side to rehydrate against its
    journal); materialized certificates (e.g. SAT counterexamples) ship
    as-is.
    """
    core = ShardCore(shard_id, engine_factory=engine_factory)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        _, blobs, fail_reply = message
        ops = [pickle.loads(blob) for blob in blobs]
        rows = []
        for ok, payload in core.run_batch(ops):
            was_lazy = (
                ok
                and isinstance(payload, CertaintyResult)
                and payload.has_lazy_repair
            )
            if was_lazy:
                payload.strip()
            rows.append((ok, payload, was_lazy))
        if fail_reply:
            # Crash injection: the writes above are committed; die in
            # the commit-to-ack window without a reply.
            conn.close()
            os._exit(1)
        reply = ("results", rows, core.snapshot())
        try:
            conn.send(reply)
        except Exception:  # pragma: no cover - unpicklable payload
            # Keep the protocol alive, and keep batch-companion
            # isolation: only the rows that actually cannot cross the
            # pipe are replaced with a stringified error.
            fallback = []
            for ok, payload, was_lazy in rows:
                try:
                    pickle.dumps(payload)
                except Exception:
                    ok, was_lazy = False, False
                    payload = ShardTransportError(
                        "unpicklable shard result: {!r}".format(payload)
                    )
                fallback.append((ok, payload, was_lazy))
            conn.send(("results", fallback, core.snapshot()))
