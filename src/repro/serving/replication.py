"""The replicated journal tier: kv backends, log shipping, and failover.

PR 6 cut the :class:`~repro.serving.journal.JournalStore` seam and PR 7
made one store the safety net for supervised restarts and degraded
reads -- but a single store is a single point of failure: one corrupt
sqlite file or one dead primary and every durable resident is gone.
This module is the step from "durable on one store" to "survives the
store", in two layers:

* :class:`KVJournalStore` -- a third backend that journals over a
  **minimal key-value interface** (:class:`KVBackend`: get / set /
  append / keys / delete).  Two implementations ship, neither adding a
  dependency: :class:`MemoryKV` (a dict of byte strings) and
  :class:`FileKV` (a directory of per-key files with atomic ``set``).
  Remote stores -- redis, s3, a network block device -- slot in later by
  implementing the same five methods.  The journal itself is one
  append-only log per shard (key ``shard-N.log``) of checksummed,
  length-prefixed records (:func:`~repro.serving.journal.pack_record`),
  so a torn tail is detected and truncated on replay exactly as in the
  sqlite backend.

* :class:`ReplicatedJournalStore` -- one **primary** plus N
  **followers**, each any journal store (memory, sqlite, kv, mixed).
  Every committed primary write is recorded in an in-RAM op log and
  **shipped** to the followers in batches of *ship_every* ops; a
  follower therefore warms by tailing the primary's op log, and
  ``health()`` reports each replica's **lag** (committed seqs it has
  not yet applied).  Shipping reuses the stores' own idempotent-append
  contract: a redelivered op is dropped by the follower's sequence
  guard, so tailing is safe under at-least-once delivery.

**Failover.**  When a primary write raises -- a real fault, or one
injected through the journal-fault kinds of
:mod:`repro.serving.faults` (``write_error`` / ``torn_write`` /
``stall``, armed via :meth:`ReplicatedJournalStore.arm`) -- the store
ships the committed op log to the survivors, asks its
:class:`~repro.serving.supervision.FailoverGuard` for promotion budget,
promotes the **most-caught-up** follower (highest summed ``last_seq``,
ties to the lowest index), and retries the failed write on the new
primary.  The caller never sees the fault and no committed write is
lost: an op enters the op log only after the primary applied it, and
the op log is shipped before promotion.  When no follower is left (or
the guard refuses), writes raise :class:`JournalUnavailable`.  Degraded
reads (:meth:`~repro.serving.journal.JournalStore.read_snapshot`) never
promote: they fall back to the freshest caught-up replica that can
answer.

>>> from repro.db.instance import DatabaseInstance
>>> db = DatabaseInstance.from_triples([("R", 0, 1)])
>>> kv = KVJournalStore(MemoryKV())
>>> kv.register(0, "toy", db, seq=1)
>>> reopened = KVJournalStore(kv.backend)      # replay from the same kv
>>> sorted(reopened.residents(0)), reopened.last_seq(0)
(['toy'], 1)
>>> kv.tear(0)                                 # crash mid-append
>>> torn = KVJournalStore(kv.backend)
>>> torn.health()["truncated_ops"], torn.last_seq(0)
(1, 1)

>>> store = make_replicated_journal_store("memory;memory,memory")
>>> store.register(0, "toy", db, seq=1)
>>> store.flush()                              # ship the op log
>>> store.health()["replication"]["replicas"]
[{'kind': 'memory', 'lag': 0}, {'kind': 'memory', 'lag': 0}]
>>> store.arm("write_error:times=1")           # next primary write fails
>>> store.register(0, "toy2", db, seq=2)       # -> failover, then retry
>>> h = store.health()["replication"]
>>> h["failovers"], h["primary"], len(h["replicas"])
(1, 'memory', 1)
>>> store.get(0, "toy2") is not None
True
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.serving.faults import FaultPlan, make_fault_plan
from repro.serving.journal import (
    _FRAME,
    JOURNAL_STORES,
    JournalStore,
    make_journal_store,
    pack_record,
    unpack_record,
)
from repro.serving.supervision import FailoverGuard, RestartPolicy


class JournalFault(RuntimeError):
    """An injected journal fault (see ``JOURNAL_FAULT_KINDS``)."""


class JournalUnavailable(RuntimeError):
    """The primary failed and no follower could be promoted."""


# ---------------------------------------------------------------------------
# The minimal kv interface and its two built-in implementations.
# ---------------------------------------------------------------------------


class KVBackend:
    """The five-method contract :class:`KVJournalStore` journals over.

    Values are byte strings; keys are short names (``shard-0.log``).
    ``get`` returns ``None`` for a missing key; ``append`` creates the
    key when absent.  Implementations must be safe to call from
    concurrent shard-worker threads.
    """

    #: Short name surfaced in ``health()["backend"]``.
    kind = "abstract"

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def set(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def append(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemoryKV(KVBackend):
    """The kv contract over a dict of bytearrays (no durability)."""

    kind = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, bytearray] = {}

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            return bytes(value) if value is not None else None

    def set(self, key, data):
        with self._lock:
            self._data[key] = bytearray(data)

    def append(self, key, data):
        with self._lock:
            self._data.setdefault(key, bytearray()).extend(data)

    def keys(self):
        with self._lock:
            return sorted(self._data)

    def delete(self, key):
        with self._lock:
            self._data.pop(key, None)


class FileKV(KVBackend):
    """The kv contract over a directory of per-key files.

    ``set`` is atomic (write to a temp file, then :func:`os.replace`),
    so a crash mid-``set`` leaves the old value intact; ``append`` is a
    plain ``"ab"`` write, so a crash mid-``append`` leaves a torn tail
    -- exactly the failure :func:`~repro.serving.journal.unpack_record`
    detects on replay.
    """

    kind = "file"

    def __init__(self, root) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key)

    def get(self, key):
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def set(self, key, data):
        with self._lock:
            tmp = self._path(key) + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, self._path(key))

    def append(self, key, data):
        with self._lock:
            with open(self._path(key), "ab") as handle:
                handle.write(data)

    def keys(self):
        return sorted(
            name
            for name in os.listdir(self.root)
            if not name.endswith(".tmp")
        )

    def delete(self, key):
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# The kv-backed journal store.
# ---------------------------------------------------------------------------


class KVJournalStore(JournalStore):
    """A journal store over a :class:`KVBackend`: one log per shard.

    Key ``shard-N.log`` holds shard *N*'s op log -- concatenated framed
    records (:func:`~repro.serving.journal.pack_record`), each framing a
    pickled ``(seq, name, kind, obj)`` tuple with the same three kinds
    as the sqlite log (``snapshot`` / ``delta`` / ``seal``).  Replay
    folds each log front to back into the RAM view; the first record
    that fails its checksum or frame truncates the log there (the
    intact prefix is written back with ``set``) and counts one
    ``truncated_ops`` -- a byte stream cannot enumerate what the torn
    tail destroyed, so the count is a floor.  After *compact_every*
    delta records against one resident the shard's log is rewritten as
    one snapshot record per resident, stamped with the shard's
    high-water sequence.
    """

    kind = "kv"

    def __init__(self, backend: KVBackend, compact_every: int = 64) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.backend = backend
        self.compact_every = compact_every
        self._lock = threading.RLock()
        self._snapshots: Dict[int, Dict[str, object]] = {}
        self._seqs: Dict[int, int] = {}
        self._pending: Dict[tuple, int] = {}
        self._rows: Dict[int, int] = {}
        self._ops = 0
        self._compactions = 0
        self._truncated_ops = 0
        self._replay()

    @staticmethod
    def _key(shard_id: int) -> str:
        return "shard-{}.log".format(shard_id)

    def _replay(self) -> None:
        for key in self.backend.keys():
            if not key.startswith("shard-") or not key.endswith(".log"):
                continue
            try:
                shard_id = int(key[len("shard-"):-len(".log")])
            except ValueError:
                continue
            buffer = self.backend.get(key) or b""
            shard = self._snapshots.setdefault(shard_id, {})
            offset = 0
            while offset < len(buffer):
                try:
                    data, end = unpack_record(buffer, offset)
                    seq, name, kind, obj = pickle.loads(data)
                except Exception:
                    # Torn tail: keep the intact prefix, drop the rest.
                    self.backend.set(key, buffer[:offset])
                    self._truncated_ops += 1
                    break
                if kind == "snapshot":
                    shard[name] = obj
                    self._pending[(shard_id, name)] = 0
                elif kind == "delta":
                    shard[name] = obj.apply_to(shard[name]).commit()
                    pkey = (shard_id, name)
                    self._pending[pkey] = self._pending.get(pkey, 0) + 1
                # kind == "seal": only the seq bump below.
                if seq > self._seqs.get(shard_id, 0):
                    self._seqs[shard_id] = seq
                self._rows[shard_id] = self._rows.get(shard_id, 0) + 1
                offset = end

    def _append(self, shard_id, seq, name, kind, obj) -> None:
        data = pickle.dumps(
            (seq, name, kind, obj), protocol=pickle.HIGHEST_PROTOCOL
        )
        self.backend.append(self._key(shard_id), pack_record(data))
        self._rows[shard_id] = self._rows.get(shard_id, 0) + 1

    def _bump(self, shard_id: int, seq: int) -> None:
        self._ops += 1
        if seq > self._seqs.get(shard_id, 0):
            self._seqs[shard_id] = seq

    # -- writes --------------------------------------------------------

    def register(self, shard_id, name, db, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            self._append(shard_id, seq, name, "snapshot", db)
            self._snapshots.setdefault(shard_id, {})[name] = db
            self._pending[(shard_id, name)] = 0
            self._bump(shard_id, seq)

    def delta(self, shard_id, name, delta, seq=0):
        with self._lock:
            if seq and seq <= self._seqs.get(shard_id, 0):
                return
            base = self._snapshots.get(shard_id, {}).get(name)
            if base is None:
                raise KeyError(
                    "shard {} journal has no resident {!r}".format(
                        shard_id, name
                    )
                )
            self._append(shard_id, seq, name, "delta", delta)
            self._snapshots[shard_id][name] = delta.apply_to(base).commit()
            self._bump(shard_id, seq)
            key = (shard_id, name)
            self._pending[key] = self._pending.get(key, 0) + 1
            if self._pending[key] >= self.compact_every:
                self._compact_shard(shard_id)

    def seal(self, shard_id, seq):
        with self._lock:
            if seq <= self._seqs.get(shard_id, 0):
                return
            self._append(shard_id, seq, "", "seal", None)
            self._seqs[shard_id] = seq

    # -- reads ---------------------------------------------------------

    def get(self, shard_id, name):
        with self._lock:
            return self._snapshots.get(shard_id, {}).get(name)

    def residents(self, shard_id):
        with self._lock:
            return dict(self._snapshots.get(shard_id, {}))

    def last_seq(self, shard_id):
        with self._lock:
            return self._seqs.get(shard_id, 0)

    def placements(self):
        with self._lock:
            return {
                name: shard_id
                for shard_id, shard in sorted(self._snapshots.items())
                for name in shard
            }

    # -- maintenance ---------------------------------------------------

    def _compact_shard(self, shard_id: int) -> None:
        """Rewrite the shard's log as one stamped snapshot per resident."""
        seq = self._seqs.get(shard_id, 0)
        frames = []
        for name, db in self._snapshots.get(shard_id, {}).items():
            frames.append(
                pack_record(
                    pickle.dumps(
                        (seq, name, "snapshot", db),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                )
            )
        self.backend.set(self._key(shard_id), b"".join(frames))
        self._rows[shard_id] = len(frames)
        for key in list(self._pending):
            if key[0] == shard_id:
                self._pending[key] = 0
        self._compactions += 1

    def compact(self, shard_id=None):
        with self._lock:
            targets = [
                key
                for key, pending in self._pending.items()
                if pending > 0 and (shard_id is None or key[0] == shard_id)
            ]
            for sid in sorted({key[0] for key in targets}):
                self._compact_shard(sid)
            return len(targets)

    def close(self):
        self.backend.close()

    def tear(self, shard_id=0):
        """Append a record that fails its checksum (chaos hook): the
        next replay of this backend exercises torn-tail recovery."""
        with self._lock:
            self.backend.append(
                self._key(shard_id), _FRAME.pack(2 ** 20, 0) + b"torn"
            )

    def health(self):
        with self._lock:
            return {
                "store": self.kind,
                "backend": self.backend.kind,
                "residents": sum(
                    len(shard) for shard in self._snapshots.values()
                ),
                "shards": len(self._snapshots),
                "ops": self._ops,
                "log_rows": sum(self._rows.values()),
                "compactions": self._compactions,
                "truncated_ops": self._truncated_ops,
            }


# ---------------------------------------------------------------------------
# The replicated store: primary + followers, log shipping, failover.
# ---------------------------------------------------------------------------


class ReplicatedJournalStore(JournalStore):
    """One primary plus N follower journal stores, with failover.

    Sub-stores are given as spec strings (resolved through
    :func:`~repro.serving.journal.make_journal_store` and **owned** --
    closed by :meth:`close` and on promotion of a replacement) or as
    ready store instances (not owned).  Every committed primary write is
    recorded in an in-RAM per-shard op log; followers tail it in
    shipments of *ship_every* ops (:meth:`flush` ships immediately).
    The op log is trimmed at the slowest follower's cursor, so its
    length is bounded by the worst replica lag.

    Writes retry through failover (see the module docstring); reads
    (:meth:`get` / :meth:`residents` / :meth:`last_seq` /
    :meth:`placements`) do the same, so a dead primary is transparent
    to the serving layer while any follower survives.
    :meth:`read_snapshot` -- the PR 7 degraded-read path -- instead
    falls back to the **freshest caught-up replica** without promoting.

    A :class:`~repro.serving.supervision.FailoverGuard` budgets
    promotions per rolling window, so a flapping primary cannot burn
    the whole replica set in seconds.
    """

    kind = "replicated"

    def __init__(
        self,
        primary: Union[str, JournalStore],
        followers: Tuple[Union[str, JournalStore], ...] = (),
        ship_every: int = 8,
        guard: Optional[FailoverGuard] = None,
    ) -> None:
        if ship_every < 1:
            raise ValueError("ship_every must be >= 1")
        self._owned_ids: set = set()
        self.primary = self._resolve(primary)
        self.followers = [self._resolve(f) for f in followers]
        if not self.followers:
            raise ValueError(
                "replicated journal store needs at least one follower"
            )
        self.ship_every = ship_every
        self.guard = guard or FailoverGuard(
            RestartPolicy(max_restarts=8, window=30.0)
        )
        self._lock = threading.RLock()
        #: Per-shard op log of committed primary writes:
        #: ``(seq, name, kind, obj)`` in apply order.
        self._oplog: Dict[int, List[tuple]] = {}
        #: Absolute index of ``_oplog[shard][0]`` (the log is trimmed).
        self._bases: Dict[int, int] = {}
        #: Per follower: shard -> absolute index consumed.
        self._cursors: List[Dict[int, int]] = [{} for _ in self.followers]
        self._shards = set(self.primary.placements().values())
        self._ops = 0
        self._unshipped = 0
        self._failovers = 0
        self._followers_lost = 0
        self._faults: Optional[FaultPlan] = None
        for follower in self.followers:
            self._sync_follower(follower)

    def _resolve(self, spec) -> JournalStore:
        store = make_journal_store(spec)
        if store is None:
            raise ValueError("replicated journal sub-spec must not be None")
        if isinstance(spec, str):
            self._owned_ids.add(id(store))
        return store

    def _sync_follower(self, follower: JournalStore) -> None:
        """Snapshot-ship the primary's current state to a follower.

        Registrations go **unstamped** (stamping several with the same
        seq would trip the follower's redelivery guard after the first)
        and one :meth:`~repro.serving.journal.JournalStore.seal` jumps
        the follower's high-water to the primary's -- the PR 6
        consistent replay point.
        """
        for shard_id in sorted(self._shards):
            for name, db in self.primary.residents(shard_id).items():
                follower.register(shard_id, name, db, seq=0)
            follower.seal(shard_id, self.primary.last_seq(shard_id))

    # -- fault injection ----------------------------------------------

    def arm(self, faults) -> None:
        """Arm (or disarm with ``None``) a journal-fault plan; primary
        writes consult it once each (see :mod:`repro.serving.faults`)."""
        with self._lock:
            self._faults = make_fault_plan(faults)

    def _inject(self, actions, shard_id: int) -> None:
        for action in actions:
            if action.kind == "stall":
                time.sleep(action.seconds)
            elif action.kind == "torn_write":
                try:
                    self.primary.tear(shard_id)
                except Exception:
                    pass
                raise JournalFault("injected torn_write on primary journal")
            elif action.kind == "write_error":
                raise JournalFault("injected write_error on primary journal")
            # Transport kinds in a journal plan are ignored.

    # -- log shipping --------------------------------------------------

    def _ship_follower(self, index: int) -> None:
        follower = self.followers[index]
        cursor = self._cursors[index]
        for shard_id, ops in self._oplog.items():
            base = self._bases.get(shard_id, 0)
            start = max(cursor.get(shard_id, 0) - base, 0)
            for seq, name, kind, obj in ops[start:]:
                if kind == "register":
                    follower.register(shard_id, name, obj, seq)
                elif kind == "delta":
                    follower.delta(shard_id, name, obj, seq)
                else:  # "seal"
                    follower.seal(shard_id, seq)
            cursor[shard_id] = base + len(ops)

    def _ship(self) -> None:
        """Apply every unshipped op to every follower; drop (and close,
        when owned) a follower whose own store raises; trim the log."""
        dead = []
        for index in range(len(self.followers)):
            try:
                self._ship_follower(index)
            except Exception:
                dead.append(index)
        for index in reversed(dead):
            follower = self.followers.pop(index)
            self._cursors.pop(index)
            self._followers_lost += 1
            self._close_store(follower)
        self._trim()
        self._unshipped = 0

    def _trim(self) -> None:
        for shard_id, ops in self._oplog.items():
            base = self._bases.get(shard_id, 0)
            end = base + len(ops)
            if self.followers:
                low = min(
                    cursor.get(shard_id, 0) for cursor in self._cursors
                )
            else:
                low = end
            if low > base:
                del ops[: low - base]
                self._bases[shard_id] = low

    def flush(self) -> None:
        """Ship the op log to every follower now (lag drops to 0)."""
        with self._lock:
            self._ship()

    # -- failover ------------------------------------------------------

    def _failover(self, cause: BaseException) -> None:
        """Ship, then promote the most-caught-up follower to primary.

        Raises :class:`JournalUnavailable` when no follower is left or
        the guard refuses the promotion budget.
        """
        self._ship()
        if not self.followers:
            raise JournalUnavailable(
                "primary journal failed and no follower is available: "
                "{!r}".format(cause)
            )
        if not self.guard.allow():
            raise JournalUnavailable(
                "primary journal failed and the failover guard refused "
                "promotion (budget exhausted): {!r}".format(cause)
            )
        scores = []
        for follower in self.followers:
            try:
                scores.append(
                    sum(
                        follower.last_seq(shard_id)
                        for shard_id in self._shards
                    )
                )
            except Exception:
                scores.append(-1)
        index = max(range(len(scores)), key=lambda i: (scores[i], -i))
        old = self.primary
        self.primary = self.followers.pop(index)
        self._cursors.pop(index)
        self.guard.record()
        self._failovers += 1
        self._close_store(old)

    def _close_store(self, store: JournalStore) -> None:
        if id(store) in self._owned_ids:
            try:
                store.close()
            except Exception:
                pass

    # -- writes --------------------------------------------------------

    def _apply(self, kind, shard_id, name, obj, seq) -> None:
        with self._lock:
            self._shards.add(shard_id)
            pending = (
                self._faults.draw(shard_id, [kind]) if self._faults else []
            )
            while True:
                try:
                    if pending:
                        actions, pending = pending, []
                        self._inject(actions, shard_id)
                    if kind == "register":
                        self.primary.register(shard_id, name, obj, seq)
                    elif kind == "delta":
                        self.primary.delta(shard_id, name, obj, seq)
                    else:  # "seal"
                        self.primary.seal(shard_id, seq)
                except KeyError:
                    # Unknown resident is the caller's bug, not a store
                    # failure -- surfacing it must not burn a replica.
                    raise
                except Exception as exc:
                    self._failover(exc)
                    continue
                break
            self._oplog.setdefault(shard_id, []).append(
                (seq, name, kind, obj)
            )
            self._bases.setdefault(shard_id, 0)
            self._ops += 1
            self._unshipped += 1
            if self._unshipped >= self.ship_every:
                self._ship()

    def register(self, shard_id, name, db, seq=0):
        self._apply("register", shard_id, name, db, seq)

    def delta(self, shard_id, name, delta, seq=0):
        self._apply("delta", shard_id, name, delta, seq)

    def seal(self, shard_id, seq):
        self._apply("seal", shard_id, "", None, seq)

    # -- reads ---------------------------------------------------------

    def _read(self, fn):
        with self._lock:
            while True:
                try:
                    return fn(self.primary)
                except KeyError:
                    raise
                except Exception as exc:
                    self._failover(exc)

    def get(self, shard_id, name):
        return self._read(lambda store: store.get(shard_id, name))

    def residents(self, shard_id):
        return self._read(lambda store: store.residents(shard_id))

    def last_seq(self, shard_id):
        return self._read(lambda store: store.last_seq(shard_id))

    def placements(self):
        return self._read(lambda store: store.placements())

    def read_snapshot(self, shard_id, name):
        """Degraded read: the primary if it answers, else the freshest
        caught-up replica that does.  Never promotes."""
        with self._lock:
            try:
                db = self.primary.get(shard_id, name)
                if db is not None:
                    return db
            except Exception:
                pass
            try:
                self._ship()
            except Exception:
                pass
            best, best_seq = None, -1
            for follower in self.followers:
                try:
                    db = follower.get(shard_id, name)
                    seq = follower.last_seq(shard_id)
                except Exception:
                    continue
                if db is not None and seq > best_seq:
                    best, best_seq = db, seq
            return best

    # -- maintenance ---------------------------------------------------

    def compact(self, shard_id=None):
        return self._read(lambda store: store.compact(shard_id))

    def tear(self, shard_id=0):
        with self._lock:
            self.primary.tear(shard_id)

    def close(self):
        with self._lock:
            try:
                self._ship()
            except Exception:
                pass
            self._close_store(self.primary)
            for follower in self.followers:
                self._close_store(follower)

    def health(self):
        with self._lock:
            try:
                merged = dict(self.primary.health())
            except Exception:
                merged = {}
            merged["store"] = self.kind
            replicas = []
            for follower in self.followers:
                try:
                    lag = sum(
                        max(
                            0,
                            self.primary.last_seq(shard_id)
                            - follower.last_seq(shard_id),
                        )
                        for shard_id in self._shards
                    )
                except Exception:
                    lag = -1
                replicas.append({"kind": follower.kind, "lag": lag})
            merged["replication"] = {
                "primary": self.primary.kind,
                "failovers": self._failovers,
                "followers_lost": self._followers_lost,
                "ship_every": self.ship_every,
                "promotions_in_window": self.guard.snapshot()[
                    "promotions_in_window"
                ],
                "replicas": replicas,
            }
            return merged


# ---------------------------------------------------------------------------
# Spec-string factories (the ``kv:`` / ``replicated:`` grammar arms).
# ---------------------------------------------------------------------------


def make_kv_journal_store(spec: str) -> KVJournalStore:
    """Resolve the tail of a ``kv:`` spec: ``memory`` or a directory.

    >>> make_kv_journal_store("memory").backend.kind
    'memory'
    """
    if not spec:
        raise ValueError(
            "kv journal spec needs a backend: kv:memory | kv:DIR"
        )
    if spec == "memory":
        return KVJournalStore(MemoryKV())
    return KVJournalStore(FileKV(spec))


def make_replicated_journal_store(spec: str) -> ReplicatedJournalStore:
    """Resolve the tail of a ``replicated:`` spec:
    ``PRIMARY;FOLLOWER[,FOLLOWER...]`` -- each side any journal spec.

    >>> store = make_replicated_journal_store("memory;memory")
    >>> store.kind, store.primary.kind, len(store.followers)
    ('replicated', 'memory', 1)
    """
    primary, sep, tail = spec.partition(";")
    followers = [part.strip() for part in tail.split(",") if part.strip()]
    if not primary.strip() or not sep or not followers:
        raise ValueError(
            "replicated journal spec needs a primary and at least one "
            "follower: replicated:PRIMARY;FOLLOWER[,FOLLOWER...]"
        )
    return ReplicatedJournalStore(primary.strip(), tuple(followers))


JOURNAL_STORES["kv"] = KVJournalStore
JOURNAL_STORES["replicated"] = ReplicatedJournalStore
