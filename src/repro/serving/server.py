"""The asyncio front door: admission, routing, and micro-batched dispatch.

:class:`AsyncCertaintyServer` is the serving subsystem's public surface.
Client coroutines ``await`` CERTAINTY decisions; the server routes each
request to the shard owning its instance (via the
:class:`~repro.serving.shard.ShardRouter`), where a persistent
:class:`~repro.serving.shard.ShardWorker` drains requests in
micro-batches through its warm engine.  Because everything stays in one
process, plans and maintained fixpoint states are *shared by reference*
between requests -- the cross-process plan-sharing problem of
spawn-start multiprocessing pools does not exist here.

>>> import asyncio
>>> from repro.db.instance import DatabaseInstance
>>> async def demo():
...     async with AsyncCertaintyServer(num_shards=2) as server:
...         db = DatabaseInstance.from_triples(
...             [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)])
...         await server.register("toy", db)
...         first = await server.solve("toy", "RRX")
...         again = await server.solve("toy", "RRX")   # served shard-warm
...         return first.answer, again.answer
>>> asyncio.run(demo())
(True, True)
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineQuery
from repro.serving.shard import (
    ServerClosed,
    ServerOverloaded,
    ShardRequest,
    ShardRouter,
    ShardWorker,
)
from repro.solvers.result import CertaintyResult

Target = Union[str, DatabaseInstance]


class AsyncCertaintyServer:
    """Async serving layer over sharded certainty engines.

    *num_shards* workers are spawned on :meth:`start` (or on entering the
    ``async with`` block); each owns a private engine built by
    *engine_factory*.  *max_batch* / *max_delay* tune the per-shard
    micro-batcher: the first request of a batch waits at most *max_delay*
    seconds for companions, so worst-case added latency is bounded while
    bursts are served in one drain (identical concurrent reads coalesce
    into a single engine call).

    *transport* picks where each shard's engine lives (see
    :mod:`repro.serving.transport`): ``"thread"`` (default) keeps every
    shard in this process, ``"process"`` gives each shard a persistent
    subprocess so CPU-bound shards run in parallel.  The client API is
    identical either way.

    *journal_store* makes residents durable (see
    :mod:`repro.serving.journal`): ``None`` (default) keeps the PR 5
    in-memory behavior, ``"memory"`` shares one
    :class:`~repro.serving.journal.MemoryJournalStore` across shards,
    and ``"sqlite:PATH"`` (or a
    :class:`~repro.serving.journal.SqliteJournalStore` instance) logs
    every registration and delta to disk.  ``"kv:..."`` journals over
    the minimal key-value interface and
    ``"replicated:PRIMARY;FOLLOWER,..."`` adds read replicas tailing
    the primary's op log with promotion on primary failure (see
    :mod:`repro.serving.replication`).  A server opened on a non-empty
    store **cold-starts** from it: the durable residents are re-pinned
    to their recorded shards before serving and replayed into each
    shard on first use -- no client re-registration.  A store the
    server built from a string spec is closed by :meth:`close`
    (a replicated store closes its own string-built sub-stores the same
    way); caller-supplied instances stay open.

    Resilience (all optional; see :mod:`repro.serving.supervision` and
    :mod:`repro.serving.faults`):

    * ``max_in_flight`` caps admitted-but-unresolved requests
      server-wide; ``queue_limit`` bounds each shard's queue.  Either
      limit sheds with :class:`~repro.serving.shard.ServerOverloaded`
      -- fail-fast, counted in ``stats()["admission"]``.
    * ``timeout=`` on the read coroutines sets a deadline that rides
      the request onto the wire; expired requests are shed with
      :class:`~repro.serving.shard.DeadlineExceeded` at batch assembly
      (or mid-batch), before engine work is spent.
    * ``restart_policy`` supervises shard restarts (budget + backoff);
      a shard over budget is *down* -- its breaker opens, requests fail
      fast with :class:`~repro.serving.shard.ShardUnavailable`, and
      reads of journaled residents are served degraded (disable with
      ``degraded_reads=False``).
    * ``faults`` arms a deterministic
      :class:`~repro.serving.faults.FaultPlan` (or a ``--chaos`` spec
      string) that the transports consult once per batch.
    * ``journal_faults`` arms a *separate* plan of journal-fault rules
      (``write_error`` / ``torn_write`` / ``stall``; CLI
      ``--journal-chaos``) against the replicated journal's primary
      writes -- the chaos harness for failover.  Requires a journal
      store with an ``arm`` method, i.e. ``replicated:...``.

    The server must be used from a running event loop; all public
    coroutines are safe to call concurrently.  Operations on the *same*
    instance are totally ordered by its shard's queue, so a ``solve``
    awaited after a ``solve_delta`` on the same name observes the update.
    """

    def __init__(
        self,
        num_shards: int = 4,
        router: Optional[ShardRouter] = None,
        max_batch: int = 32,
        max_delay: float = 0.002,
        engine_factory=CertaintyEngine,
        transport="thread",
        transport_options: Optional[dict] = None,
        journal_store: Union[None, str, "JournalStore"] = None,
        max_in_flight: Optional[int] = None,
        queue_limit: Optional[int] = None,
        faults=None,
        journal_faults=None,
        restart_policy=None,
        degraded_reads: Optional[bool] = None,
    ) -> None:
        from repro.serving.faults import make_fault_plan
        from repro.serving.journal import JournalStore, make_journal_store

        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")

        self.router = router or ShardRouter(num_shards)
        if router is not None:
            num_shards = router.num_shards
        #: Stores resolved from a string spec are owned (and closed) by
        #: the server; injected instances belong to the caller.
        self._owns_journal = not isinstance(journal_store, JournalStore)
        self.journal_store = make_journal_store(journal_store)
        if self.journal_store is not None:
            # Cold start: pin every durable resident back onto its
            # recorded shard before any request is admitted.
            for name, shard in sorted(self.journal_store.placements().items()):
                if not 0 <= shard < num_shards:
                    raise ValueError(
                        "journal places {!r} on shard {} but the server "
                        "has {} shards; reopen with at least {} shards".format(
                            name, shard, num_shards, shard + 1
                        )
                    )
                self.router.register(name, shard=shard)
        #: One shared plan across shards: per-shard batch counters live
        #: inside the plan, keyed by shard id.
        self.faults = make_fault_plan(faults)
        #: A separate plan for the journal tier, so transport draws
        #: never consume journal rule budgets (and vice versa).
        self.journal_faults = make_fault_plan(journal_faults)
        if self.journal_faults is not None:
            if not hasattr(self.journal_store, "arm"):
                raise ValueError(
                    "journal_faults requires a replicated journal store "
                    "(journal_store='replicated:PRIMARY;FOLLOWER,...'); "
                    "got {}".format(
                        self.journal_store.kind
                        if self.journal_store is not None
                        else None
                    )
                )
            self.journal_store.arm(self.journal_faults)
        self.max_in_flight = max_in_flight
        self.workers: List[ShardWorker] = [
            ShardWorker(
                shard,
                engine_factory=engine_factory,
                max_batch=max_batch,
                max_delay=max_delay,
                transport=transport,
                transport_options=transport_options,
                journal_store=self.journal_store,
                queue_limit=queue_limit,
                faults=self.faults,
                restart_policy=restart_policy,
                degraded=degraded_reads,
            )
            for shard in range(num_shards)
        ]
        self._started = False
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._overload_shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "AsyncCertaintyServer":
        """Spawn the shard workers (idempotent until :meth:`close`)."""
        if self._closed:
            raise ServerClosed("server is closed")
        if not self._started:
            for worker in self.workers:
                worker.start()
            self._started = True
        return self

    def close(self) -> None:
        """Graceful shutdown (idempotent).

        Each shard finishes the micro-batch it is currently executing,
        then every still-queued request -- and every request admitted
        afterwards -- fails with :class:`ServerClosed` instead of
        leaving its future pending.  Process transports terminate their
        shard subprocesses.  A closed server cannot be restarted.
        """
        if self._started:
            for worker in self.workers:
                worker.stop()
        self._started = False
        if not self._closed and self._owns_journal and self.journal_store:
            self.journal_store.close()
        self._closed = True

    async def __aenter__(self) -> "AsyncCertaintyServer":
        return self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    async def _dispatch(self, shard: int, request: ShardRequest):
        if self._closed:
            raise ServerClosed("server is closed")
        if not self._started:
            raise RuntimeError(
                "server not running (use 'async with' or call start())"
            )
        if self.max_in_flight is not None:
            in_flight = self._submitted - self._completed - self._failed
            if in_flight >= self.max_in_flight:
                self._overload_shed += 1
                raise ServerOverloaded(
                    "server at max_in_flight={} ({} requests unresolved);"
                    " retry later".format(self.max_in_flight, in_flight)
                )
        loop = asyncio.get_running_loop()
        request.loop = loop
        request.future = loop.create_future()
        request.future.add_done_callback(self._account)
        self._submitted += 1
        self.workers[shard].submit(request)
        return await request.future

    def _account(self, future: "asyncio.Future") -> None:
        if future.cancelled() or future.exception() is not None:
            self._failed += 1
        else:
            self._completed += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def register(
        self,
        name: str,
        db: DatabaseInstance,
        shard: Optional[int] = None,
    ) -> int:
        """Make *db* resident under *name*; returns its shard.

        Placement is sticky (see :meth:`ShardRouter.register`);
        re-registering a name on its own shard replaces the instance.
        """
        placed = self.router.register(name, shard=shard)
        await self._dispatch(placed, ShardRequest("register", name=name, db=db))
        return placed

    @staticmethod
    def _deadline(timeout: Optional[float]) -> Optional[float]:
        """An absolute monotonic deadline, riding the request onto the
        wire (``timeout=0`` is a valid "already expired" probe)."""
        if timeout is None:
            return None
        return time.monotonic() + timeout

    async def solve(
        self,
        target: Target,
        query: EngineQuery,
        method: str = "auto",
        timeout: Optional[float] = None,
    ) -> CertaintyResult:
        """Decide CERTAINTY(query) for *target*.

        A string *target* names a resident instance -- served from the
        shard's warm state (``method="auto"``) or through a forced
        solver.  A raw :class:`DatabaseInstance` rides through its
        content-hash shard with a warm plan cache but no resident state.
        With *timeout* (seconds), the request carries a deadline: once
        it passes, the request is shed with
        :class:`~repro.serving.shard.DeadlineExceeded` instead of
        executed.
        """
        shard = self.router.shard_of(target)
        deadline = self._deadline(timeout)
        if isinstance(target, str):
            request = ShardRequest(
                "solve", name=target, query=query, method=method,
                deadline=deadline,
            )
        else:
            request = ShardRequest(
                "solve", db=target, query=query, method=method,
                deadline=deadline,
            )
        return await self._dispatch(shard, request)

    async def solve_delta(
        self,
        name: str,
        delta: Delta,
        query: EngineQuery,
        method: str = "auto",
        timeout: Optional[float] = None,
    ) -> CertaintyResult:
        """Apply *delta* to the resident instance *name* and decide
        CERTAINTY(query) on the result.

        The shard folds the delta into its maintained state (O(delta)
        solver work on the C3 routes) and advances the registry, so
        subsequent reads observe -- and stay warm on -- the updated
        instance.  A *timeout* deadline is honoured conservatively for
        writes: expiry before the batch is assembled sheds the whole
        request, but once the write half has committed only the read
        half is shed -- a :class:`DeadlineExceeded` from a delta means
        "the answer is late", never "the write was rolled back".
        """
        shard = self.router.shard_of(name)
        request = ShardRequest(
            "delta", name=name, delta=delta, query=query, method=method,
            deadline=self._deadline(timeout),
        )
        return await self._dispatch(shard, request)

    async def solve_many(
        self,
        requests: Iterable[Tuple[Target, EngineQuery]],
        method: str = "auto",
        timeout: Optional[float] = None,
    ) -> List[CertaintyResult]:
        """Gather ``solve`` over *requests*, preserving order.

        Concurrent admission is the point: requests hitting the same
        shard coalesce into micro-batches, different shards proceed
        independently.  *timeout* applies per request, measured from
        admission of the gather.
        """
        return list(
            await asyncio.gather(
                *(
                    self.solve(target, query, method=method, timeout=timeout)
                    for target, query in requests
                )
            )
        )

    async def get_instance(
        self, name: str, timeout: Optional[float] = None
    ) -> DatabaseInstance:
        """The current resident instance for *name* (shard-ordered read)."""
        shard = self.router.shard_of(name)
        return await self._dispatch(
            shard,
            ShardRequest("get", name=name, deadline=self._deadline(timeout)),
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Admission counters plus per-shard worker/engine statistics.

        Each shard entry carries a ``"transport"`` sub-dict with the
        transport's health: kind, liveness, ``restarts``,
        ``snapshot_bytes`` shipped, ``deltas_forwarded``, and the
        current ``queue_depth``.
        """
        completed = self._completed
        failed = self._failed
        shard_stats = [worker.stats() for worker in self.workers]
        return {
            "admission": {
                "submitted": self._submitted,
                "completed": completed,
                "failed": failed,
                "in_flight": self._submitted - completed - failed,
                # Server-cap rejections plus per-shard bounded-queue
                # rejections; deadline sheds aggregate across shards.
                "overload_shed": self._overload_shed
                + sum(s.get("overload_shed", 0) for s in shard_stats),
                "deadline_shed": sum(
                    s.get("deadline_shed", 0) for s in shard_stats
                ),
            },
            "placement": self.router.assignments(),
            "journal": (
                self.journal_store.health()
                if self.journal_store is not None
                else {"store": "none"}
            ),
            "faults": (
                self.faults.describe()
                if self.faults is not None
                else {"armed": False}
            ),
            "journal_faults": (
                self.journal_faults.describe()
                if self.journal_faults is not None
                else {"armed": False}
            ),
            "shards": shard_stats,
        }
