"""Shards: locality-aware placement of instances and persistent workers.

A flat multiprocessing fan-out (the engine's ``workers=N`` pools) ships
every instance to whichever process is free, so nothing stays warm: on
spawn-start platforms each call re-pickles the database and the worker
recompiles plans it has seen before.  The serving layer instead treats
registered :class:`~repro.db.instance.DatabaseInstance`\\ s as residents
of **shards**.  A :class:`ShardRouter` assigns every instance name to a
shard -- by stable hash, or by explicit placement for operators who know
their hot keys -- and every request for that instance is routed to the
same shard forever.  Each shard is served by one :class:`ShardWorker`: a
persistent thread owning a private :class:`~repro.engine.CertaintyEngine`
(its plan LRU and its :class:`~repro.solvers.state_cache.StateCache` of
maintained :class:`~repro.solvers.fixpoint.FixpointState`\\ s), so
repeated queries against a resident instance are answered from warm
incremental state -- no pickling, no recompilation, no re-running the
fixpoint.

>>> router = ShardRouter(num_shards=4)
>>> router.register("orders")  in range(4)      # stable hash placement
True
>>> router.register("users", shard=2)           # explicit placement
2
>>> router.shard_of("users")
2
>>> router.shard_of("orders") == router.shard_of("orders")
True
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from typing import Callable, Dict, Hashable, List, Optional, Union

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineQuery

#: The empty update batch: routes a plain read through ``solve_delta`` so
#: it is served from (and installs) the maintained fixpoint state.
EMPTY_DELTA = Delta()

_STOP = object()


def stable_shard(name: str, num_shards: int) -> int:
    """Deterministic shard of *name* (crc32, stable across processes)."""
    return zlib.crc32(name.encode("utf-8")) % num_shards


class ShardRouter:
    """Partitions instance names over ``num_shards`` shards.

    Placement is sticky: a name registered once keeps its shard for the
    router's lifetime (explicit placement wins over the hash).  Routing
    unregistered names is allowed -- they fall back to the stable hash --
    so the router never blocks admission; the worker decides whether the
    name actually resolves to a resident instance.
    """

    def __init__(
        self,
        num_shards: int = 4,
        placement: Optional[Dict[str, int]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._placement: Dict[str, int] = {}
        for name, shard in (placement or {}).items():
            self.register(name, shard=shard)

    def register(self, name: str, shard: Optional[int] = None) -> int:
        """Pin *name* to a shard (explicit, or the stable hash) and return it."""
        if shard is None:
            shard = self._placement.get(name, stable_shard(name, self.num_shards))
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                "shard {} out of range [0, {})".format(shard, self.num_shards)
            )
        current = self._placement.get(name)
        if current is not None and current != shard:
            raise ValueError(
                "{!r} is already placed on shard {}".format(name, current)
            )
        self._placement[name] = shard
        return shard

    def shard_of(self, target: Union[str, DatabaseInstance]) -> int:
        """The shard serving *target* (a registered/ad-hoc name, or a raw
        instance routed by its content hash)."""
        if isinstance(target, str):
            placed = self._placement.get(target)
            if placed is not None:
                return placed
            return stable_shard(target, self.num_shards)
        return hash(target) % self.num_shards

    def assignments(self) -> Dict[str, int]:
        """Registered name -> shard (a copy)."""
        return dict(self._placement)


class ShardRequest:
    """One operation bound for a shard worker.

    *op* is ``"solve"``, ``"delta"``, ``"register"`` or ``"get"``.  The
    worker fulfils the request by calling :meth:`resolve` or :meth:`fail`;
    with an asyncio *loop* and *future* attached the completion is posted
    thread-safely onto the loop, otherwise it is stored on the request
    (the synchronous path used by direct ``execute()`` calls and tests).
    """

    __slots__ = (
        "op",
        "name",
        "db",
        "delta",
        "query",
        "method",
        "loop",
        "future",
        "result",
        "error",
    )

    def __init__(
        self,
        op: str,
        name: Optional[str] = None,
        db: Optional[DatabaseInstance] = None,
        delta: Optional[Delta] = None,
        query: Optional[EngineQuery] = None,
        method: str = "auto",
        loop=None,
        future=None,
    ) -> None:
        self.op = op
        self.name = name
        self.db = db
        self.delta = delta
        self.query = query
        self.method = method
        self.loop = loop
        self.future = future
        self.result = None
        self.error: Optional[BaseException] = None

    def resolve(self, result) -> None:
        self.result = result
        if self.future is not None:
            self.loop.call_soon_threadsafe(self._set_result, result)

    def fail(self, error: BaseException) -> None:
        self.error = error
        if self.future is not None:
            self.loop.call_soon_threadsafe(self._set_error, error)

    def _set_result(self, result) -> None:
        if not self.future.done():
            self.future.set_result(result)

    def _set_error(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)


class ShardWorker:
    """A persistent worker serving one shard.

    Owns the shard's resident instances (``name -> DatabaseInstance``,
    advanced in place by delta requests) and a private engine whose plan
    cache and state cache stay warm across requests.  Requests arrive on
    a queue and are drained in **micro-batches**: the first request of a
    batch waits at most *max_delay* seconds for companions (up to
    *max_batch*), and identical concurrent reads inside one batch are
    **coalesced** into a single engine call whose result fans out to all
    of their futures.

    The worker thread is the only mutator of the shard's registry and
    engine state, so per-shard operations are totally ordered: a solve
    enqueued after a delta observes the updated instance
    (read-your-writes per shard).
    """

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        max_batch: int = 32,
        max_delay: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.shard_id = shard_id
        self.engine = engine_factory()
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.instances: Dict[str, DatabaseInstance] = {}
        self.requests = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_observed = 0
        self.coalesced = 0
        self.errors = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run,
            name="repro-shard-{}".format(self.shard_id),
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._queue.put(_STOP)
        self._thread.join()
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def submit(self, request: ShardRequest) -> None:
        self._queue.put(request)

    # ------------------------------------------------------------------
    # The micro-batching loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch, stopped = self._drain()
            if batch:
                self.execute(batch)
            if stopped:
                return

    def _drain(self):
        """Block for one request, then gather companions until the batch
        is full or *max_delay* has elapsed."""
        first = self._queue.get()
        if first is _STOP:
            return [], True
        batch: List[ShardRequest] = [first]
        deadline = time.monotonic() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, batch: List[ShardRequest]) -> None:
        """Serve *batch* in arrival order, coalescing duplicate reads.

        Public so tests (and synchronous embedders) can drive a worker
        without its thread; the threaded loop calls it too.
        """
        self.batches += 1
        self.batched_requests += len(batch)
        self.max_batch_observed = max(self.max_batch_observed, len(batch))
        memo: Dict[Hashable, object] = {}
        for request in batch:
            self.requests += 1
            try:
                if request.op == "solve":
                    self._execute_solve(request, memo)
                elif request.op == "delta":
                    # Writes invalidate coalesced reads of the same name.
                    self._forget(memo, request.name)
                    self._execute_delta(request)
                elif request.op == "register":
                    self._forget(memo, request.name)
                    self.instances[request.name] = request.db
                    request.resolve(request.name)
                elif request.op == "get":
                    request.resolve(self._resident(request.name))
                else:
                    raise ValueError("unknown op {!r}".format(request.op))
            except BaseException as error:  # noqa: BLE001 - forwarded
                self.errors += 1
                request.fail(error)

    def _resident(self, name: str) -> DatabaseInstance:
        db = self.instances.get(name)
        if db is None:
            raise KeyError(
                "shard {} has no instance named {!r}".format(
                    self.shard_id, name
                )
            )
        return db

    @staticmethod
    def _forget(memo: Dict[Hashable, object], name: Optional[str]) -> None:
        for key in [k for k in memo if k[0] == name]:
            del memo[key]

    def _execute_solve(self, request: ShardRequest, memo: Dict) -> None:
        if request.db is not None:
            # Ad-hoc instance riding through the shard: plan cache warm,
            # no resident state to serve from.
            request.resolve(
                self.engine.solve(request.db, request.query, request.method)
            )
            return
        db = self._resident(request.name)
        memo_key = (
            request.name,
            CertaintyEngine._cache_key(request.query),
            request.method,
        )
        cached = memo.get(memo_key)
        if cached is not None:
            self.coalesced += 1
            request.resolve(cached)
            return
        if request.method == "auto":
            # The empty delta reads the answer off the maintained state
            # (installing it on first sight) -- the shard-warm hot path.
            result = self.engine.solve_delta(db, EMPTY_DELTA, request.query)
        else:
            result = self.engine.solve(db, request.query, request.method)
        memo[memo_key] = result
        request.resolve(result)

    def _execute_delta(self, request: ShardRequest) -> None:
        db = self._resident(request.name)
        overlay = request.delta.apply_to(db)
        result = self.engine.solve_delta(
            db, overlay, request.query, method=request.method
        )
        # commit() is memoized, so this is the instance the engine keyed
        # the maintained state under -- future reads hit it directly.
        self.instances[request.name] = overlay.commit()
        request.resolve(result)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Shard counters plus the owned engine's cache/stat counters."""
        engine_stats = self.engine.stats
        return {
            "shard": self.shard_id,
            "residents": sorted(self.instances),
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            "max_batch_size": self.max_batch_observed,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "warm_hits": engine_stats.incremental_hits,
            "cold_solves": engine_stats.full_resolves,
            "engine": engine_stats.as_dict(),
            "plan_cache": self.engine.cache_info(),
            "state_cache": self.engine.state_cache.info(),
        }
