"""Shards: locality-aware placement of instances and persistent workers.

A flat multiprocessing fan-out (the engine's ``workers=N`` pools) ships
every instance to whichever process is free, so nothing stays warm: on
spawn-start platforms each call re-pickles the database and the worker
recompiles plans it has seen before.  The serving layer instead treats
registered :class:`~repro.db.instance.DatabaseInstance`\\ s as residents
of **shards**.  A :class:`ShardRouter` assigns every instance name to a
shard -- by stable hash, or by explicit placement for operators who know
their hot keys -- and every request for that instance is routed to the
same shard forever.

Each shard is served by one :class:`ShardWorker` -- the micro-batch
assembly loop -- driving a :class:`ShardCore` -- the transport-agnostic
execution logic -- through a pluggable
:class:`~repro.serving.transport.ShardTransport`:

* the worker owns the request queue and the drain loop (first request of
  a batch waits at most *max_delay* seconds for companions, up to
  *max_batch*) plus graceful shutdown;
* the core owns the shard's resident instances and a private
  :class:`~repro.engine.CertaintyEngine` (its plan LRU and its
  :class:`~repro.solvers.state_cache.StateCache` of maintained
  :class:`~repro.solvers.fixpoint.FixpointState`\\ s), and executes one
  batch at a time: duplicate reads coalesced, writes advancing the
  registry, warm reads answered from maintained incremental state;
* the transport decides *where* the core lives -- in the worker's own
  thread (:class:`~repro.serving.transport.ThreadTransport`, shared
  memory, GIL-bound) or in a dedicated subprocess
  (:class:`~repro.serving.transport.ProcessTransport`, true CPU
  parallelism across shards).

>>> router = ShardRouter(num_shards=4)
>>> router.register("orders")  in range(4)      # stable hash placement
True
>>> router.register("users", shard=2)           # explicit placement
2
>>> router.shard_of("users")
2
>>> router.shard_of("orders") == router.shard_of("orders")
True
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine.engine import CertaintyEngine, EngineQuery

#: The empty update batch: routes a plain read through ``solve_delta`` so
#: it is served from (and installs) the maintained fixpoint state.
EMPTY_DELTA = Delta()

_STOP = object()

#: The wire shape of one shard operation: ``(op, name, db, delta, query,
#: method, seq, deadline)``.  Everything in it is picklable (instances
#: ship facts-only, see
#: :meth:`repro.db.instance.DatabaseInstance.__reduce__`), so the same
#: tuple drives an in-thread core and a subprocess core.  *seq* is the
#: transport's per-shard monotonic sequence number for write ops (``0``
#: on reads and unstamped writes): it makes redelivery after a
#: crash-retry detectable (see :meth:`ShardCore.run_batch`).  *deadline*
#: is an absolute :func:`time.monotonic` instant (or ``None``): past it
#: the op is shed with :class:`DeadlineExceeded` instead of executed --
#: ``CLOCK_MONOTONIC`` is system-wide on Linux, so the instant compares
#: meaningfully inside a shard subprocess too.
ShardOp = Tuple[
    str,
    Optional[str],
    Optional[DatabaseInstance],
    Optional[Delta],
    Optional[EngineQuery],
    str,
    int,
    Optional[float],
]


class ServerClosed(RuntimeError):
    """The serving layer is shutting down; the request was not served."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before it could be (fully) served.

    Raised at batch-assembly time (the request never reached the
    engine) or at execution time inside the core.  Committed writes are
    never rolled back: a ``delta`` whose deadline expires after its
    write half applied keeps the write and sheds only the read half.
    """


class ServerOverloaded(RuntimeError):
    """Admission control shed the request: a bounded shard queue was
    full, or the server-wide in-flight cap was reached.  Fail-fast by
    design -- retry with backoff or widen the limits."""


class ShardUnavailable(RuntimeError):
    """The shard is down: its circuit breaker is open (restart budget
    exhausted, see :mod:`repro.serving.supervision`) and the request
    could not be served degraded from the journal."""


def stable_shard(name: str, num_shards: int) -> int:
    """Deterministic shard of *name* (crc32, stable across processes)."""
    return zlib.crc32(name.encode("utf-8")) % num_shards


class ShardRouter:
    """Partitions instance names over ``num_shards`` shards.

    Placement is sticky: a name registered once keeps its shard for the
    router's lifetime (explicit placement wins over the hash).  Routing
    unregistered names is allowed -- they fall back to the stable hash --
    so the router never blocks admission; the worker decides whether the
    name actually resolves to a resident instance.
    """

    def __init__(
        self,
        num_shards: int = 4,
        placement: Optional[Dict[str, int]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._placement: Dict[str, int] = {}
        for name, shard in (placement or {}).items():
            self.register(name, shard=shard)

    def register(self, name: str, shard: Optional[int] = None) -> int:
        """Pin *name* to a shard (explicit, or the stable hash) and return it."""
        if shard is None:
            shard = self._placement.get(name, stable_shard(name, self.num_shards))
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                "shard {} out of range [0, {})".format(shard, self.num_shards)
            )
        current = self._placement.get(name)
        if current is not None and current != shard:
            raise ValueError(
                "{!r} is already placed on shard {}".format(name, current)
            )
        self._placement[name] = shard
        return shard

    def shard_of(self, target: Union[str, DatabaseInstance]) -> int:
        """The shard serving *target* (a registered/ad-hoc name, or a raw
        instance routed by its content hash)."""
        if isinstance(target, str):
            placed = self._placement.get(target)
            if placed is not None:
                return placed
            return stable_shard(target, self.num_shards)
        return hash(target) % self.num_shards

    def assignments(self) -> Dict[str, int]:
        """Registered name -> shard (a copy)."""
        return dict(self._placement)


class ShardRequest:
    """One operation bound for a shard worker.

    *op* is ``"solve"``, ``"delta"``, ``"register"`` or ``"get"``.  The
    worker fulfils the request by calling :meth:`resolve` or :meth:`fail`;
    with an asyncio *loop* and *future* attached the completion is posted
    thread-safely onto the loop, otherwise it is stored on the request
    (the synchronous path used by direct ``execute()`` calls and tests).
    """

    __slots__ = (
        "op",
        "name",
        "db",
        "delta",
        "query",
        "method",
        "seq",
        "deadline",
        "loop",
        "future",
        "result",
        "error",
    )

    def __init__(
        self,
        op: str,
        name: Optional[str] = None,
        db: Optional[DatabaseInstance] = None,
        delta: Optional[Delta] = None,
        query: Optional[EngineQuery] = None,
        method: str = "auto",
        deadline: Optional[float] = None,
        loop=None,
        future=None,
    ) -> None:
        self.op = op
        self.name = name
        self.db = db
        self.delta = delta
        self.query = query
        self.method = method
        #: Per-shard write sequence number, stamped by the transport at
        #: execute time (0 = unstamped; reads are never stamped).
        self.seq = 0
        #: Absolute ``time.monotonic()`` deadline (None = no deadline).
        self.deadline = deadline
        self.loop = loop
        self.future = future
        self.result = None
        self.error: Optional[BaseException] = None

    def as_op(self) -> ShardOp:
        """The picklable wire form of this request (no loop, no future)."""
        return (
            self.op,
            self.name,
            self.db,
            self.delta,
            self.query,
            self.method,
            self.seq,
            self.deadline,
        )

    def resolve(self, result) -> None:
        self.result = result
        if self.future is not None:
            self.loop.call_soon_threadsafe(self._set_result, result)

    def fail(self, error: BaseException) -> None:
        self.error = error
        if self.future is not None:
            self.loop.call_soon_threadsafe(self._set_error, error)

    def _set_result(self, result) -> None:
        if not self.future.done():
            self.future.set_result(result)

    def _set_error(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)


class ShardCore:
    """The transport-agnostic execution logic of one shard.

    Owns the shard's resident instances (``name -> DatabaseInstance``,
    advanced in place by delta ops) and a private engine whose plan cache
    and state cache stay warm across batches.  The core runs wherever its
    transport puts it -- inside the worker's thread
    (:class:`~repro.serving.transport.ThreadTransport`) or inside a
    dedicated shard subprocess
    (:class:`~repro.serving.transport.ProcessTransport`) -- and is driven
    one batch at a time, so it needs no locking of its own: whoever calls
    :meth:`run_batch` is the sole mutator of the registry and the engine
    state, and per-shard operations are totally ordered (a solve after a
    delta observes the updated instance -- read-your-writes per shard).
    """

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
    ) -> None:
        self.shard_id = shard_id
        self.engine = engine_factory()
        self.instances: Dict[str, DatabaseInstance] = {}
        self.requests = 0
        self.coalesced = 0
        self.errors = 0
        #: Ops shed inside the core because their deadline had already
        #: passed when their turn in the batch came.
        self.deadline_shed = 0
        #: High-water mark of applied write sequence numbers.  Writes are
        #: delivered in sequence order, so a stamped write at or below
        #: this mark is a redelivery (the transport retried a batch whose
        #: first attempt was applied before the child died) and must not
        #: be applied again -- at-least-once delivery, exactly-once
        #: effect.
        self.applied_seq = 0

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def run_batch(self, ops: List[ShardOp]) -> List[Tuple[bool, object]]:
        """Execute *ops* in arrival order, coalescing duplicate reads.

        Returns one ``(ok, payload)`` row per op, aligned by index:
        ``(True, result)`` for served ops, ``(False, exception)`` for
        failed ones -- a failing op never aborts its batch companions.
        Identical concurrent reads of the same resident inside one batch
        run the engine once; the *same* result object is returned for
        every coalesced row (transports fan it out to all futures).
        """
        memo: Dict[Hashable, object] = {}
        rows: List[Tuple[bool, object]] = []
        for op, name, db, delta, query, method, seq, deadline in ops:
            self.requests += 1
            try:
                rows.append(
                    (
                        True,
                        self._run_op(
                            op, name, db, delta, query, method, seq,
                            deadline, memo,
                        ),
                    )
                )
            except BaseException as error:  # noqa: BLE001 - forwarded
                self.errors += 1
                rows.append((False, error))
        return rows

    def _check_deadline(self, op: str, deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            self.deadline_shed += 1
            raise DeadlineExceeded(
                "shard {} shed {} op: deadline passed before it ran".format(
                    self.shard_id, op
                )
            )

    def _run_op(self, op, name, db, delta, query, method, seq, deadline,
                memo):
        if op == "solve":
            self._check_deadline(op, deadline)
            return self._solve(name, db, query, method, memo)
        if op in ("delta", "register") and seq and seq <= self.applied_seq:
            # Redelivered write (a transport retry after journal replay
            # already restored the post-write state): skip the write,
            # serve only its read half.
            self._forget(memo, name)
            if op == "register":
                return name
            self._check_deadline(op, deadline)
            return self._solve(name, None, query, method, memo)
        if op == "delta":
            # Writes invalidate coalesced reads of the same name.
            self._forget(memo, name)
            return self._delta(name, delta, query, method, seq, deadline)
        if op == "register":
            self._forget(memo, name)
            self.instances[name] = db
            if seq:
                self.applied_seq = seq
            return name
        if op == "get":
            self._check_deadline(op, deadline)
            return self._resident(name)
        if op == "seal":
            # Journal replay epilogue: the replayed snapshots already
            # contain every write up to *seq*, so acknowledge them all.
            self.applied_seq = max(self.applied_seq, seq)
            return self.applied_seq
        raise ValueError("unknown op {!r}".format(op))

    def _resident(self, name: str) -> DatabaseInstance:
        db = self.instances.get(name)
        if db is None:
            raise KeyError(
                "shard {} has no instance named {!r}".format(
                    self.shard_id, name
                )
            )
        return db

    @staticmethod
    def _forget(memo: Dict[Hashable, object], name: Optional[str]) -> None:
        for key in [k for k in memo if k[0] == name]:
            del memo[key]

    def _solve(self, name, db, query, method, memo):
        if db is not None:
            # Ad-hoc instance riding through the shard: plan cache warm,
            # no resident state to serve from.
            return self.engine.solve(db, query, method)
        resident = self._resident(name)
        memo_key = (name, CertaintyEngine._cache_key(query), method)
        cached = memo.get(memo_key)
        if cached is not None:
            self.coalesced += 1
            return cached
        if method == "auto":
            # The empty delta reads the answer off the maintained state
            # (installing it on first sight) -- the shard-warm hot path.
            result = self.engine.solve_delta(resident, EMPTY_DELTA, query)
        else:
            result = self.engine.solve(resident, query, method)
        memo[memo_key] = result
        return result

    def _delta(self, name, delta, query, method, seq=0, deadline=None):
        db = self._resident(name)
        overlay = delta.apply_to(db)
        # The write half commits before (and regardless of) the read
        # half: once the name resolves, the delta is applied even if the
        # solve raises -- the registry must agree with the transport's
        # write-ahead journal, which recorded the delta before dispatch.
        # commit() is memoized, so this is the instance the engine keys
        # the maintained state under -- future reads hit it directly.
        self.instances[name] = overlay.commit()
        if seq:
            self.applied_seq = seq
        # Deadlines never roll back a committed write: only the read
        # half is shed once the registry (and journal) hold the delta.
        self._check_deadline("delta", deadline)
        return self.engine.solve_delta(db, overlay, query, method=method)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Execution counters plus the owned engine's cache/stat infos.

        The snapshot is plain picklable data: process transports ship it
        back with every batch reply so the router side always holds the
        latest child-side counters (and can merge them across restarts).
        """
        engine_stats = self.engine.stats
        return {
            "residents": sorted(self.instances),
            "applied_seq": self.applied_seq,
            "requests": self.requests,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "deadline_shed": self.deadline_shed,
            "warm_hits": engine_stats.incremental_hits,
            "cold_solves": engine_stats.full_resolves,
            "engine": engine_stats.as_dict(),
            "plan_cache": self.engine.cache_info(),
            "state_cache": self.engine.state_cache.info(),
        }

    @staticmethod
    def empty_snapshot() -> dict:
        """The zero-counter snapshot of a core that served nothing yet."""
        from repro.engine.engine import EngineStats

        return {
            "residents": [],
            "applied_seq": 0,
            "requests": 0,
            "coalesced": 0,
            "errors": 0,
            "deadline_shed": 0,
            "warm_hits": 0,
            "cold_solves": 0,
            "engine": EngineStats().as_dict(),
            "plan_cache": {},
            "state_cache": {},
        }


class ShardWorker:
    """A persistent worker serving one shard through a transport.

    The worker owns the shard's request queue and the **micro-batch
    assembly loop**: the first request of a batch waits at most
    *max_delay* seconds for companions (up to *max_batch*), and the
    assembled batch is handed to the shard's
    :class:`~repro.serving.transport.ShardTransport` for execution.  The
    transport decides where the shard's :class:`ShardCore` (residents +
    engine) lives:

    * ``transport="thread"`` -- the core runs in this worker's thread
      (shared memory; the PR 3 behavior);
    * ``transport="process"`` -- the core runs in a dedicated subprocess
      with a persistent engine; batches cross a pipe, residents ship
      once as facts-only snapshots, and a crashed child is restarted
      from the router-side journal.

    *transport* may also be a callable ``(shard_id, engine_factory,
    **options) -> ShardTransport`` for custom transports.

    With a *journal_store* (see :mod:`repro.serving.journal`) the worker
    hands the transport a :class:`~repro.serving.journal.ShardJournal`
    view bound to this shard: every registration and forwarded delta is
    recorded there, and a transport that starts against a non-empty
    journal replays its residents before serving -- with a durable store
    (``SqliteJournalStore``) that is how a reopened server restores its
    shards with zero client re-registration.

    Shutdown is graceful: :meth:`stop` lets the batch currently being
    executed finish, then fails every still-queued request with
    :class:`ServerClosed` instead of leaving its future pending, and
    rejects later submissions the same way.
    """

    def __init__(
        self,
        shard_id: int,
        engine_factory: Callable[[], CertaintyEngine] = CertaintyEngine,
        max_batch: int = 32,
        max_delay: float = 0.002,
        transport: Union[str, Callable] = "thread",
        transport_options: Optional[dict] = None,
        journal_store=None,
        queue_limit: Optional[int] = None,
        faults=None,
        restart_policy=None,
        degraded: Optional[bool] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        from repro.serving.transport import make_transport

        self.shard_id = shard_id
        self.max_batch = max_batch
        self.max_delay = max_delay
        #: Bounded-queue admission: submissions beyond this many queued
        #: requests fail fast with :class:`ServerOverloaded` (None =
        #: unbounded, the pre-resilience behavior).
        self.queue_limit = queue_limit
        options = dict(transport_options or {})
        if journal_store is not None:
            options.setdefault("journal", journal_store.shard(shard_id))
        # Resilience knobs ride into the transport the same way the
        # journal does; None means "don't mention it", so custom
        # transport callables with narrower signatures keep working.
        if faults is not None:
            options.setdefault("faults", faults)
        if restart_policy is not None:
            options.setdefault("restart_policy", restart_policy)
        if degraded is not None:
            options.setdefault("degraded", degraded)
        self.transport = make_transport(
            transport, shard_id, engine_factory, **options
        )
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_observed = 0
        #: Requests rejected by the bounded queue.
        self.overload_shed = 0
        #: Requests shed at batch-assembly time (deadline already past
        #: before the transport was consulted).
        self.deadline_shed = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread: Optional[threading.Thread] = None
        self._closing = False

    # ------------------------------------------------------------------
    # Thread-transport conveniences (tests, synchronous embedders)
    # ------------------------------------------------------------------

    @property
    def engine(self) -> CertaintyEngine:
        """The shard's engine (thread transport only -- the core is local)."""
        return self.transport.core.engine

    @property
    def instances(self) -> Dict[str, DatabaseInstance]:
        """The resident registry (thread transport only)."""
        return self.transport.core.instances

    @property
    def coalesced(self) -> int:
        return self.transport.snapshot()["coalesced"]

    @property
    def errors(self) -> int:
        return self.transport.snapshot()["errors"]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self.transport.start()
        self._thread = threading.Thread(
            target=self._run,
            name="repro-shard-{}".format(self.shard_id),
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful shutdown: finish the in-flight batch, fail the rest.

        Idempotent.  The batch currently being executed (if any) runs to
        completion and resolves its futures; every request still queued
        -- and every request submitted afterwards -- fails with
        :class:`ServerClosed`.  Finally the transport is stopped (a
        process transport terminates its child here).
        """
        self._closing = True
        if self._thread is not None:
            self._queue.put(_STOP)
            self._thread.join()
            self._thread = None
        self._fail_queued()
        self.transport.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def submit(self, request: ShardRequest) -> None:
        if self._closing:
            request.fail(self._closed_error())
            return
        if (
            self.queue_limit is not None
            and self.queue_depth() >= self.queue_limit
        ):
            self.overload_shed += 1
            request.fail(
                ServerOverloaded(
                    "shard {} queue is full ({} queued >= limit {})".format(
                        self.shard_id, self.queue_depth(), self.queue_limit
                    )
                )
            )
            return
        self._queue.put(request)
        # A stop() racing between the check and the put has already
        # drained the queue; fail anything it missed rather than strand
        # a future forever.  Preserve the _STOP sentinel: the worker
        # thread may still be waiting for it.
        if self._closing:
            self._fail_queued(preserve_stop=True)

    def queue_depth(self) -> int:
        """Requests admitted but not yet drained into a batch."""
        try:
            return self._queue.qsize()
        except NotImplementedError:  # pragma: no cover - macOS SimpleQueue
            return -1

    def _closed_error(self) -> ServerClosed:
        return ServerClosed(
            "shard {} is shut down; the request was not served".format(
                self.shard_id
            )
        )

    def _fail_queued(self, preserve_stop: bool = False) -> None:
        saw_stop = False
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                saw_stop = True
                continue
            item.fail(self._closed_error())
        if saw_stop and preserve_stop:
            self._queue.put(_STOP)

    # ------------------------------------------------------------------
    # The micro-batching loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch, stopped = self._drain()
            if batch:
                if self._closing:
                    # Still-queued at close time: fail, do not execute.
                    for request in batch:
                        request.fail(self._closed_error())
                else:
                    try:
                        self.execute(batch)
                    except BaseException as error:  # noqa: BLE001
                        # A transport-level failure (e.g. an unpicklable
                        # constant aborting the pipe send) must fail the
                        # batch, not kill the drain thread and strand
                        # every future behind it.  Requests the
                        # transport already resolved ignore the fail().
                        for request in batch:
                            request.fail(error)
            if stopped:
                self._fail_queued()
                return

    def _drain(self):
        """Block for one request, then gather companions until the batch
        is full or *max_delay* has elapsed.

        The assembly deadline is recomputed from a fresh monotonic
        reading *after* the blocking ``get()`` returns -- never from a
        timestamp taken before it -- and the loop breaks the moment
        ``remaining <= 0``, so a first item arriving right at (or past)
        a clock edge can never turn into a zero-or-negative timeout that
        blocks ``queue.get()`` indefinitely.  If the first request
        carries its own deadline that is *earlier* than the assembly
        window, the window shrinks to it (floored at "now"): a nearly
        expired request is dispatched immediately instead of waiting the
        full *max_delay* for companions it cannot afford.
        """
        first = self._queue.get()
        if first is _STOP:
            return [], True
        batch: List[ShardRequest] = [first]
        now = time.monotonic()
        deadline = now + self.max_delay
        if first.deadline is not None:
            deadline = min(deadline, max(first.deadline, now))
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, batch: List[ShardRequest]) -> None:
        """Serve *batch* through the transport, resolving every request.

        Requests whose deadline already passed are shed here, at batch
        assembly -- before any engine (or wire) work is spent on them.
        Public so tests (and synchronous embedders) can drive a worker
        without its thread; the threaded loop calls it too.
        """
        batch = self._shed_expired(batch)
        if not batch:
            return
        self.batches += 1
        self.batched_requests += len(batch)
        self.max_batch_observed = max(self.max_batch_observed, len(batch))
        self.transport.execute(batch)

    def _shed_expired(
        self, batch: List[ShardRequest]
    ) -> List[ShardRequest]:
        now = time.monotonic()
        live: List[ShardRequest] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                self.deadline_shed += 1
                request.fail(
                    DeadlineExceeded(
                        "deadline passed {:.4f}s before shard {} assembled"
                        " its batch".format(
                            now - request.deadline, self.shard_id
                        )
                    )
                )
            else:
                live.append(request)
        return live

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Assembly counters, core execution counters, transport health."""
        snapshot = self.transport.snapshot()
        health = self.transport.health()
        health["queue_depth"] = self.queue_depth()
        return {
            "shard": self.shard_id,
            "residents": snapshot["residents"],
            "requests": snapshot["requests"],
            "batches": self.batches,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            "max_batch_size": self.max_batch_observed,
            "coalesced": snapshot["coalesced"],
            "errors": snapshot["errors"],
            # Core-side sheds (mid-batch) plus assembly-time sheds.
            "deadline_shed": snapshot.get("deadline_shed", 0)
            + self.deadline_shed,
            "overload_shed": self.overload_shed,
            "warm_hits": snapshot["warm_hits"],
            "cold_solves": snapshot["cold_solves"],
            "engine": snapshot["engine"],
            "plan_cache": snapshot["plan_cache"],
            "state_cache": snapshot["state_cache"],
            "transport": health,
        }
