"""The serving benchmark: shard-warm async throughput vs per-call solves.

Shared by ``python -m repro bench-serve`` and
``benchmarks/test_bench_serving.py`` so the CLI demo and the pinned
assertion measure the same workload the same way.

The workload is the serving scenario the subsystem exists for: a fixed
fleet of resident databases, a mixed FO / NL-complete / PTIME-complete
query set, and a request stream that keeps re-asking those pairs (as
traffic from many clients does).  The **naive** baseline answers each
request with a per-call solve through a warm *plan* cache -- PR 1's
``solve_batch``, re-running the per-instance solver every time.  The
**serving** path routes the same stream through the
:class:`~repro.serving.server.AsyncCertaintyServer`: after one cold solve
per distinct ``(instance, query)`` pair, every request is answered from
the shard's maintained fixpoint state.

A second benchmark, :func:`run_transport_benchmark`, races the shard
transports against each other on a **CPU-bound** stream (every request a
forced full fixpoint run): thread-per-shard serializes on the GIL,
process-per-shard runs the shards in parallel.

Two resilience benchmarks back ``benchmarks/test_bench_resilience.py``:
:func:`run_fault_overhead_benchmark` measures what an *armed but silent*
:class:`~repro.serving.faults.FaultPlan` costs on the shard-warm stream
(the hook must be ~free when no fault fires), and
:func:`run_recovery_benchmark` measures time-to-first-answer after an
injected shard crash (supervised restart + journal replay + retry).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Tuple

from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.serving.faults import FaultPlan, FaultRule, make_fault_plan
from repro.serving.server import AsyncCertaintyServer
from repro.serving.shard import (
    DeadlineExceeded,
    ServerOverloaded,
    ShardRequest,
    ShardUnavailable,
    ShardWorker,
)
from repro.serving.supervision import RestartPolicy
from repro.workloads.generators import chain_instance

#: One query per polynomial-time route of the tetrachotomy (all C3, so
#: the maintained state answers them exactly).
MIXED_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
)


def mixed_workload(
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
) -> Tuple[Dict[str, DatabaseInstance], List[Tuple[str, str]]]:
    """Named chain instances plus a round-robin request stream.

    Chains are built per query family (so every query has instances it
    can traverse) with a conflicting dead-end branch every few nodes;
    sizes stagger with the index so shards hold unequal residents.
    """
    instances: Dict[str, DatabaseInstance] = {}
    for i in range(num_instances):
        query = MIXED_QUERIES[i % len(MIXED_QUERIES)][0]
        instances["db{}".format(i)] = chain_instance(
            query,
            repetitions=repetitions + 3 * i,
            conflict_every=4,
        )
    names = sorted(instances)
    # Walk every (instance, query) combination so each shard maintains
    # several states per resident, not one hot pair.
    requests = [
        (
            names[i % len(names)],
            MIXED_QUERIES[(i // len(names)) % len(MIXED_QUERIES)][0],
        )
        for i in range(n_requests)
    ]
    return instances, requests


def _classify_outcome(result) -> str:
    """Bucket a gathered serving result for the chaos report."""
    if isinstance(result, DeadlineExceeded):
        return "deadline_exceeded"
    if isinstance(result, ServerOverloaded):
        return "overloaded"
    if isinstance(result, ShardUnavailable):
        return "unavailable"
    if isinstance(result, BaseException):
        return "other_error"
    return "answered"


async def _solve_stream(server: AsyncCertaintyServer, pairs):
    """Gather ``solve`` over *pairs*, keeping per-request exceptions in
    place (chaos runs must report outcomes, not abort on the first)."""
    return await asyncio.gather(
        *(server.solve(name, query) for name, query in pairs),
        return_exceptions=True,
    )


def run_serving_benchmark(
    num_shards: int = 4,
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
    max_batch: int = 32,
    max_delay: float = 0.001,
    transport: str = "thread",
    chaos=None,
) -> Dict[str, object]:
    """Measure the request stream both ways; returns the comparison.

    The returned dict carries ``naive_seconds`` / ``serving_seconds``
    (measured over the same *n_requests* stream, shard states warm),
    ``speedup``, both throughputs in requests/second, ``agrees`` (every
    answered request matches the naive stream -- with no chaos that
    means *all* of them), per-request ``outcomes`` buckets, and the
    server's final ``stats()``.  *chaos* arms a
    :class:`~repro.serving.faults.FaultPlan` (or ``--chaos`` spec
    string) on the serving side only; faulted requests resolve to
    ``DeadlineExceeded`` / ``ShardUnavailable`` / ``ServerOverloaded``
    buckets instead of aborting the run.
    """
    instances, requests = mixed_workload(
        num_instances=num_instances,
        repetitions=repetitions,
        n_requests=n_requests,
    )
    plan = make_fault_plan(chaos)

    # -- Naive per-call baseline: warm plans, cold per-instance solves.
    naive_engine = CertaintyEngine()
    for _, query in MIXED_QUERIES:
        naive_engine.compile(query)
    pairs = [(instances[name], query) for name, query in requests]
    start = time.perf_counter()
    naive_results = naive_engine.solve_batch(pairs)
    naive_seconds = time.perf_counter() - start

    # -- Sharded serving: register, warm each distinct pair once, then
    #    time the identical stream end-to-end through the async API.
    async def _serve():
        async with AsyncCertaintyServer(
            num_shards=num_shards,
            max_batch=max_batch,
            max_delay=max_delay,
            transport=transport,
            faults=plan,
        ) as server:
            for name, db in sorted(instances.items()):
                if plan is None:
                    await server.register(name, db)
                else:
                    try:
                        await server.register(name, db)
                    except Exception:
                        # Chaos hit the registration batch; the solves
                        # on this name will surface it per request.
                        pass
            distinct = sorted(set(requests))
            await _solve_stream(server, distinct)  # one cold solve per pair
            start = time.perf_counter()
            results = await _solve_stream(server, requests)
            seconds = time.perf_counter() - start
            return results, seconds, server.stats()

    serving_results, serving_seconds, server_stats = asyncio.run(_serve())

    outcomes = {
        "answered": 0,
        "deadline_exceeded": 0,
        "overloaded": 0,
        "unavailable": 0,
        "other_error": 0,
    }
    agrees = True
    for naive_result, serving_result in zip(naive_results, serving_results):
        bucket = _classify_outcome(serving_result)
        outcomes[bucket] += 1
        if bucket == "answered":
            if serving_result.answer != naive_result.answer:
                agrees = False
        elif plan is None:
            # Without chaos every request must be answered.
            agrees = False
    warm_hits = sum(s["warm_hits"] for s in server_stats["shards"])
    return {
        "requests": len(requests),
        "num_shards": num_shards,
        "transport": transport,
        "naive_seconds": naive_seconds,
        "serving_seconds": serving_seconds,
        "speedup": naive_seconds / serving_seconds,
        "naive_rps": len(requests) / naive_seconds,
        "serving_rps": len(requests) / serving_seconds,
        "agrees": agrees,
        "outcomes": outcomes,
        "warm_hits": warm_hits,
        "server_stats": server_stats,
    }


#: The PTIME-complete route: forced ``method="fixpoint"`` runs the full
#: Figure 5 kernel per request -- no warm shortcut, pure CPU.
CPU_BOUND_QUERY = "RXRYRY"


def cpu_bound_workload(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
):
    """One large resident pinned per shard, plus a round-robin stream.

    Every request forces ``method="fixpoint"`` on its shard's resident,
    so each one re-runs the polynomial-time kernel on ~``6*repetitions``
    facts (about 8 ms at the default size): the workload is CPU-bound by
    construction, which is exactly where a thread-per-shard layout
    serializes on the GIL and a process-per-shard layout does not.
    """
    instances = {
        "cpu{}".format(shard): chain_instance(
            CPU_BOUND_QUERY, repetitions=repetitions, conflict_every=4
        )
        for shard in range(num_shards)
    }
    names = sorted(instances)
    requests = [
        (names[i % len(names)], CPU_BOUND_QUERY) for i in range(n_requests)
    ]
    return instances, requests


def run_transport_benchmark(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
    transports=("thread", "process"),
) -> Dict[str, object]:
    """Race the shard transports on the CPU-bound forced-fixpoint stream.

    The identical request stream runs once per transport through an
    :class:`AsyncCertaintyServer` (registration and a one-per-shard
    warm-up solve happen before the timed window, so process start-up
    and plan compilation are excluded).  Returns per-transport seconds
    and requests/second, ``speedup`` (thread seconds / process seconds
    when both ran), and ``agrees`` (identical answer streams).  On a
    single-core machine the speedup degrades to IPC overhead -- the
    pinned ``>= 1.5x`` gate in ``benchmarks/test_bench_serving.py``
    skips there.
    """
    instances, requests = cpu_bound_workload(
        num_shards=num_shards,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    async def _stream(transport: str):
        # max_batch=1: identical reads coalesce within a micro-batch,
        # which would collapse the forced stream to one kernel run per
        # shard -- here every request must pay its own kernel, because
        # per-request CPU is precisely what the transports race on.
        async with AsyncCertaintyServer(
            num_shards=num_shards, max_batch=1, max_delay=0.0,
            transport=transport,
        ) as server:
            for shard, name in enumerate(sorted(instances)):
                await server.register(name, instances[name], shard=shard)
            # Warm-up: ship snapshots, compile plans, fault in the
            # compact views -- everything but the per-request kernel.
            await server.solve_many(
                [(name, CPU_BOUND_QUERY) for name in sorted(instances)],
                method="fixpoint",
            )
            start = time.perf_counter()
            results = await server.solve_many(requests, method="fixpoint")
            seconds = time.perf_counter() - start
            return [r.answer for r in results], seconds

    report: Dict[str, object] = {
        "requests": len(requests),
        "num_shards": num_shards,
        "repetitions": repetitions,
        "transports": {},
    }
    answer_streams = []
    for transport in transports:
        answers, seconds = asyncio.run(_stream(transport))
        answer_streams.append(answers)
        report["transports"][transport] = {
            "seconds": seconds,
            "rps": len(requests) / seconds,
        }
    report["agrees"] = all(
        stream == answer_streams[0] for stream in answer_streams
    )
    per = report["transports"]
    if "thread" in per and "process" in per:
        report["speedup"] = per["thread"]["seconds"] / per["process"]["seconds"]
    return report


def run_fault_overhead_benchmark(
    num_shards: int = 2,
    num_instances: int = 4,
    repetitions: int = 20,
    n_requests: int = 160,
    passes: int = 3,
) -> Dict[str, object]:
    """Price the fault hook when it is armed but silent.

    Two identical thread-transport servers serve the shard-warm mixed
    stream: one with ``faults=None`` (the hook compiles to a constant
    ``0, False``), one with an **armed, empty** :class:`FaultPlan` (the
    per-batch draw runs, matches nothing).  Timed passes alternate
    between the arms so drift on a noisy box hits both equally; the
    per-arm minimum is the comparison.  ``overhead`` is
    ``armed_best / clean_best - 1`` -- the quantity the ``<= 5%`` gate
    in ``benchmarks/test_bench_resilience.py`` pins.
    """
    instances, requests = mixed_workload(
        num_instances=num_instances,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    async def _measure():
        servers = {
            "clean": AsyncCertaintyServer(
                num_shards=num_shards, transport="thread"
            ).start(),
            "armed": AsyncCertaintyServer(
                num_shards=num_shards, transport="thread", faults=FaultPlan()
            ).start(),
        }
        times: Dict[str, List[float]] = {"clean": [], "armed": []}
        answers: Dict[str, List[bool]] = {}
        try:
            distinct = sorted(set(requests))
            for server in servers.values():
                for name, db in sorted(instances.items()):
                    await server.register(name, db)
                await server.solve_many(distinct)  # warm every pair
            for _ in range(passes):
                for arm, server in servers.items():
                    start = time.perf_counter()
                    results = await server.solve_many(requests)
                    times[arm].append(time.perf_counter() - start)
                    answers[arm] = [r.answer for r in results]
        finally:
            for server in servers.values():
                server.close()
        return times, answers

    times, answers = asyncio.run(_measure())
    clean_best = min(times["clean"])
    armed_best = min(times["armed"])
    return {
        "requests": len(requests),
        "passes": passes,
        "clean_seconds": clean_best,
        "armed_seconds": armed_best,
        "overhead": armed_best / clean_best - 1.0,
        "agrees": answers["clean"] == answers["armed"],
    }


def run_recovery_benchmark(
    repetitions: int = 200,
    transport: str = "process",
) -> Dict[str, object]:
    """Time-to-first-answer after a shard dies mid-service.

    One worker, ``max_batch=1``: register a chain resident, serve one
    warm solve, then kill the shard -- ``process.kill()`` on the real
    subprocess, a seeded one-shot crash fault on the thread emulation --
    and time the next solve end to end.  That window covers failure
    detection, the supervised restart, journal replay of the resident,
    and the re-served request.  ``warm_after_seconds`` times one more
    solve on the recovered shard (the restored state is warm again);
    ``answers_agree`` checks all three answers match.
    """
    query = "RXRX"
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)
    faults = None
    if transport == "thread":
        # Batches 0 (register) and 1 (warm solve) pass; the timed solve
        # is batch 2 and dies exactly once.
        faults = FaultPlan([FaultRule("crash", batch=2, times=1)])
    worker = ShardWorker(
        0,
        transport=transport,
        max_batch=1,
        faults=faults,
        restart_policy=RestartPolicy(backoff_base=0.0),
    )
    try:
        worker.execute([ShardRequest("register", name="db", db=db)])
        warm = ShardRequest("solve", name="db", query=query)
        worker.execute([warm])
        if transport == "process":
            worker.transport.process.kill()
            worker.transport.process.join()
        start = time.perf_counter()
        recovered = ShardRequest("solve", name="db", query=query)
        worker.execute([recovered])
        recovery_seconds = time.perf_counter() - start
        start = time.perf_counter()
        after = ShardRequest("solve", name="db", query=query)
        worker.execute([after])
        warm_after_seconds = time.perf_counter() - start
        stats = worker.stats()
        return {
            "transport": transport,
            "repetitions": repetitions,
            "recovery_seconds": recovery_seconds,
            "warm_after_seconds": warm_after_seconds,
            "answers_agree": (
                recovered.error is None
                and after.error is None
                and warm.result.answer
                == recovered.result.answer
                == after.result.answer
            ),
            "restarts": stats["transport"]["restarts"],
        }
    finally:
        worker.stop()
