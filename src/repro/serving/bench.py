"""The serving benchmark: shard-warm async throughput vs per-call solves.

Shared by ``python -m repro bench-serve`` and
``benchmarks/test_bench_serving.py`` so the CLI demo and the pinned
assertion measure the same workload the same way.

The workload is the serving scenario the subsystem exists for: a fixed
fleet of resident databases, a mixed FO / NL-complete / PTIME-complete
query set, and a request stream that keeps re-asking those pairs (as
traffic from many clients does).  The **naive** baseline answers each
request with a per-call solve through a warm *plan* cache -- PR 1's
``solve_batch``, re-running the per-instance solver every time.  The
**serving** path routes the same stream through the
:class:`~repro.serving.server.AsyncCertaintyServer`: after one cold solve
per distinct ``(instance, query)`` pair, every request is answered from
the shard's maintained fixpoint state.

A second benchmark, :func:`run_transport_benchmark`, races the shard
transports against each other on a **CPU-bound** stream (every request a
forced full fixpoint run): thread-per-shard serializes on the GIL,
process-per-shard runs the shards in parallel.

Two resilience benchmarks back ``benchmarks/test_bench_resilience.py``:
:func:`run_fault_overhead_benchmark` measures what an *armed but silent*
:class:`~repro.serving.faults.FaultPlan` costs on the shard-warm stream
(the hook must be ~free when no fault fires), and
:func:`run_recovery_benchmark` measures time-to-first-answer after an
injected shard crash (supervised restart + journal replay + retry).

Two replication benchmarks back ``benchmarks/test_bench_replication.py``:
:func:`run_replication_overhead_benchmark` prices the replicated journal
tier against the bare PR 6 sqlite journal on an identical write stream
(armed but silent -- the ``<= 5%`` acceptance gate), and
:func:`run_failover_benchmark` measures time-to-first-answer across a
mid-traffic primary failover (injected journal ``write_error``,
most-caught-up follower promoted, the interrupted write retried).
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Dict, List, Tuple

from repro.db.delta import Delta
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.serving.faults import FaultPlan, FaultRule, make_fault_plan
from repro.serving.server import AsyncCertaintyServer
from repro.serving.shard import (
    DeadlineExceeded,
    ServerOverloaded,
    ShardRequest,
    ShardUnavailable,
    ShardWorker,
)
from repro.serving.supervision import RestartPolicy
from repro.workloads.generators import chain_instance

#: One query per polynomial-time route of the tetrachotomy (all C3, so
#: the maintained state answers them exactly).
MIXED_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
)


def mixed_workload(
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
) -> Tuple[Dict[str, DatabaseInstance], List[Tuple[str, str]]]:
    """Named chain instances plus a round-robin request stream.

    Chains are built per query family (so every query has instances it
    can traverse) with a conflicting dead-end branch every few nodes;
    sizes stagger with the index so shards hold unequal residents.
    """
    instances: Dict[str, DatabaseInstance] = {}
    for i in range(num_instances):
        query = MIXED_QUERIES[i % len(MIXED_QUERIES)][0]
        instances["db{}".format(i)] = chain_instance(
            query,
            repetitions=repetitions + 3 * i,
            conflict_every=4,
        )
    names = sorted(instances)
    # Walk every (instance, query) combination so each shard maintains
    # several states per resident, not one hot pair.
    requests = [
        (
            names[i % len(names)],
            MIXED_QUERIES[(i // len(names)) % len(MIXED_QUERIES)][0],
        )
        for i in range(n_requests)
    ]
    return instances, requests


def _classify_outcome(result) -> str:
    """Bucket a gathered serving result for the chaos report."""
    if isinstance(result, DeadlineExceeded):
        return "deadline_exceeded"
    if isinstance(result, ServerOverloaded):
        return "overloaded"
    if isinstance(result, ShardUnavailable):
        return "unavailable"
    if isinstance(result, BaseException):
        return "other_error"
    return "answered"


async def _solve_stream(server: AsyncCertaintyServer, pairs):
    """Gather ``solve`` over *pairs*, keeping per-request exceptions in
    place (chaos runs must report outcomes, not abort on the first)."""
    return await asyncio.gather(
        *(server.solve(name, query) for name, query in pairs),
        return_exceptions=True,
    )


def run_serving_benchmark(
    num_shards: int = 4,
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
    max_batch: int = 32,
    max_delay: float = 0.001,
    transport: str = "thread",
    chaos=None,
) -> Dict[str, object]:
    """Measure the request stream both ways; returns the comparison.

    The returned dict carries ``naive_seconds`` / ``serving_seconds``
    (measured over the same *n_requests* stream, shard states warm),
    ``speedup``, both throughputs in requests/second, ``agrees`` (every
    answered request matches the naive stream -- with no chaos that
    means *all* of them), per-request ``outcomes`` buckets, and the
    server's final ``stats()``.  *chaos* arms a
    :class:`~repro.serving.faults.FaultPlan` (or ``--chaos`` spec
    string) on the serving side only; faulted requests resolve to
    ``DeadlineExceeded`` / ``ShardUnavailable`` / ``ServerOverloaded``
    buckets instead of aborting the run.
    """
    instances, requests = mixed_workload(
        num_instances=num_instances,
        repetitions=repetitions,
        n_requests=n_requests,
    )
    plan = make_fault_plan(chaos)

    # -- Naive per-call baseline: warm plans, cold per-instance solves.
    naive_engine = CertaintyEngine()
    for _, query in MIXED_QUERIES:
        naive_engine.compile(query)
    pairs = [(instances[name], query) for name, query in requests]
    start = time.perf_counter()
    naive_results = naive_engine.solve_batch(pairs)
    naive_seconds = time.perf_counter() - start

    # -- Sharded serving: register, warm each distinct pair once, then
    #    time the identical stream end-to-end through the async API.
    async def _serve():
        async with AsyncCertaintyServer(
            num_shards=num_shards,
            max_batch=max_batch,
            max_delay=max_delay,
            transport=transport,
            faults=plan,
        ) as server:
            for name, db in sorted(instances.items()):
                if plan is None:
                    await server.register(name, db)
                else:
                    try:
                        await server.register(name, db)
                    except Exception:
                        # Chaos hit the registration batch; the solves
                        # on this name will surface it per request.
                        pass
            distinct = sorted(set(requests))
            await _solve_stream(server, distinct)  # one cold solve per pair
            start = time.perf_counter()
            results = await _solve_stream(server, requests)
            seconds = time.perf_counter() - start
            return results, seconds, server.stats()

    serving_results, serving_seconds, server_stats = asyncio.run(_serve())

    outcomes = {
        "answered": 0,
        "deadline_exceeded": 0,
        "overloaded": 0,
        "unavailable": 0,
        "other_error": 0,
    }
    agrees = True
    for naive_result, serving_result in zip(naive_results, serving_results):
        bucket = _classify_outcome(serving_result)
        outcomes[bucket] += 1
        if bucket == "answered":
            if serving_result.answer != naive_result.answer:
                agrees = False
        elif plan is None:
            # Without chaos every request must be answered.
            agrees = False
    warm_hits = sum(s["warm_hits"] for s in server_stats["shards"])
    return {
        "requests": len(requests),
        "num_shards": num_shards,
        "transport": transport,
        "naive_seconds": naive_seconds,
        "serving_seconds": serving_seconds,
        "speedup": naive_seconds / serving_seconds,
        "naive_rps": len(requests) / naive_seconds,
        "serving_rps": len(requests) / serving_seconds,
        "agrees": agrees,
        "outcomes": outcomes,
        "warm_hits": warm_hits,
        "server_stats": server_stats,
    }


#: The PTIME-complete route: forced ``method="fixpoint"`` runs the full
#: Figure 5 kernel per request -- no warm shortcut, pure CPU.
CPU_BOUND_QUERY = "RXRYRY"


def cpu_bound_workload(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
):
    """One large resident pinned per shard, plus a round-robin stream.

    Every request forces ``method="fixpoint"`` on its shard's resident,
    so each one re-runs the polynomial-time kernel on ~``6*repetitions``
    facts (about 8 ms at the default size): the workload is CPU-bound by
    construction, which is exactly where a thread-per-shard layout
    serializes on the GIL and a process-per-shard layout does not.
    """
    instances = {
        "cpu{}".format(shard): chain_instance(
            CPU_BOUND_QUERY, repetitions=repetitions, conflict_every=4
        )
        for shard in range(num_shards)
    }
    names = sorted(instances)
    requests = [
        (names[i % len(names)], CPU_BOUND_QUERY) for i in range(n_requests)
    ]
    return instances, requests


def run_transport_benchmark(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
    transports=("thread", "process"),
) -> Dict[str, object]:
    """Race the shard transports on the CPU-bound forced-fixpoint stream.

    The identical request stream runs once per transport through an
    :class:`AsyncCertaintyServer` (registration and a one-per-shard
    warm-up solve happen before the timed window, so process start-up
    and plan compilation are excluded).  Returns per-transport seconds
    and requests/second, ``speedup`` (thread seconds / process seconds
    when both ran), and ``agrees`` (identical answer streams).  On a
    single-core machine the speedup degrades to IPC overhead -- the
    pinned ``>= 1.5x`` gate in ``benchmarks/test_bench_serving.py``
    skips there.
    """
    instances, requests = cpu_bound_workload(
        num_shards=num_shards,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    async def _stream(transport: str):
        # max_batch=1: identical reads coalesce within a micro-batch,
        # which would collapse the forced stream to one kernel run per
        # shard -- here every request must pay its own kernel, because
        # per-request CPU is precisely what the transports race on.
        async with AsyncCertaintyServer(
            num_shards=num_shards, max_batch=1, max_delay=0.0,
            transport=transport,
        ) as server:
            for shard, name in enumerate(sorted(instances)):
                await server.register(name, instances[name], shard=shard)
            # Warm-up: ship snapshots, compile plans, fault in the
            # compact views -- everything but the per-request kernel.
            await server.solve_many(
                [(name, CPU_BOUND_QUERY) for name in sorted(instances)],
                method="fixpoint",
            )
            start = time.perf_counter()
            results = await server.solve_many(requests, method="fixpoint")
            seconds = time.perf_counter() - start
            return [r.answer for r in results], seconds

    report: Dict[str, object] = {
        "requests": len(requests),
        "num_shards": num_shards,
        "repetitions": repetitions,
        "transports": {},
    }
    answer_streams = []
    for transport in transports:
        answers, seconds = asyncio.run(_stream(transport))
        answer_streams.append(answers)
        report["transports"][transport] = {
            "seconds": seconds,
            "rps": len(requests) / seconds,
        }
    report["agrees"] = all(
        stream == answer_streams[0] for stream in answer_streams
    )
    per = report["transports"]
    if "thread" in per and "process" in per:
        report["speedup"] = per["thread"]["seconds"] / per["process"]["seconds"]
    return report


def run_fault_overhead_benchmark(
    num_shards: int = 2,
    num_instances: int = 4,
    repetitions: int = 20,
    n_requests: int = 160,
    passes: int = 3,
) -> Dict[str, object]:
    """Price the fault hook when it is armed but silent.

    Two identical thread-transport servers serve the shard-warm mixed
    stream: one with ``faults=None`` (the hook compiles to a constant
    ``0, False``), one with an **armed, empty** :class:`FaultPlan` (the
    per-batch draw runs, matches nothing).  Timed passes alternate
    between the arms so drift on a noisy box hits both equally; the
    per-arm minimum is the comparison.  ``overhead`` is
    ``armed_best / clean_best - 1`` -- the quantity the ``<= 5%`` gate
    in ``benchmarks/test_bench_resilience.py`` pins.
    """
    instances, requests = mixed_workload(
        num_instances=num_instances,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    async def _measure():
        servers = {
            "clean": AsyncCertaintyServer(
                num_shards=num_shards, transport="thread"
            ).start(),
            "armed": AsyncCertaintyServer(
                num_shards=num_shards, transport="thread", faults=FaultPlan()
            ).start(),
        }
        times: Dict[str, List[float]] = {"clean": [], "armed": []}
        answers: Dict[str, List[bool]] = {}
        try:
            distinct = sorted(set(requests))
            for server in servers.values():
                for name, db in sorted(instances.items()):
                    await server.register(name, db)
                await server.solve_many(distinct)  # warm every pair
            for _ in range(passes):
                for arm, server in servers.items():
                    start = time.perf_counter()
                    results = await server.solve_many(requests)
                    times[arm].append(time.perf_counter() - start)
                    answers[arm] = [r.answer for r in results]
        finally:
            for server in servers.values():
                server.close()
        return times, answers

    times, answers = asyncio.run(_measure())
    clean_best = min(times["clean"])
    armed_best = min(times["armed"])
    return {
        "requests": len(requests),
        "passes": passes,
        "clean_seconds": clean_best,
        "armed_seconds": armed_best,
        "overhead": armed_best / clean_best - 1.0,
        "agrees": answers["clean"] == answers["armed"],
    }


def run_recovery_benchmark(
    repetitions: int = 200,
    transport: str = "process",
) -> Dict[str, object]:
    """Time-to-first-answer after a shard dies mid-service.

    One worker, ``max_batch=1``: register a chain resident, serve one
    warm solve, then kill the shard -- ``process.kill()`` on the real
    subprocess, a seeded one-shot crash fault on the thread emulation --
    and time the next solve end to end.  That window covers failure
    detection, the supervised restart, journal replay of the resident,
    and the re-served request.  ``warm_after_seconds`` times one more
    solve on the recovered shard (the restored state is warm again);
    ``answers_agree`` checks all three answers match.
    """
    query = "RXRX"
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)
    faults = None
    if transport == "thread":
        # Batches 0 (register) and 1 (warm solve) pass; the timed solve
        # is batch 2 and dies exactly once.
        faults = FaultPlan([FaultRule("crash", batch=2, times=1)])
    worker = ShardWorker(
        0,
        transport=transport,
        max_batch=1,
        faults=faults,
        restart_policy=RestartPolicy(backoff_base=0.0),
    )
    try:
        worker.execute([ShardRequest("register", name="db", db=db)])
        warm = ShardRequest("solve", name="db", query=query)
        worker.execute([warm])
        if transport == "process":
            worker.transport.process.kill()
            worker.transport.process.join()
        start = time.perf_counter()
        recovered = ShardRequest("solve", name="db", query=query)
        worker.execute([recovered])
        recovery_seconds = time.perf_counter() - start
        start = time.perf_counter()
        after = ShardRequest("solve", name="db", query=query)
        worker.execute([after])
        warm_after_seconds = time.perf_counter() - start
        stats = worker.stats()
        return {
            "transport": transport,
            "repetitions": repetitions,
            "recovery_seconds": recovery_seconds,
            "warm_after_seconds": warm_after_seconds,
            "answers_agree": (
                recovered.error is None
                and after.error is None
                and warm.result.answer
                == recovered.result.answer
                == after.result.answer
            ),
            "restarts": stats["transport"]["restarts"],
        }
    finally:
        worker.stop()


def run_replication_overhead_benchmark(
    num_residents: int = 8,
    n_ops: int = 400,
    passes: int = 3,
) -> Dict[str, object]:
    """Price the replicated journal tier when armed but silent.

    Two journal stores absorb the identical write stream -- stamped
    registrations then round-robin stamped deltas: a **bare**
    :class:`~repro.serving.journal.SqliteJournalStore` (the PR 6
    journaling path) and a
    :class:`~repro.serving.replication.ReplicatedJournalStore` over an
    identical sqlite primary plus one memory follower, armed with an
    empty journal :class:`FaultPlan` (the per-write draw runs, matches
    nothing).  The replicated arm therefore pays the fault draw, the
    in-RAM op log append, and the ``ship_every`` shipping cadence on
    top of every sqlite write.  Per-op sqlite commits are noisy, so
    the estimator compares *adjacent* timings: after one untimed
    warm-up pass per arm, each pass times the bare arm then the
    replicated arm back to back -- correlated disk conditions cancel
    in the per-pass ratio -- and ``overhead`` is the best pairwise
    ratio minus one (sustained noise can only push it *up*).  That is
    the quantity the ``<= 5%`` acceptance gate in
    ``benchmarks/test_bench_replication.py`` pins.
    """
    from repro.serving.journal import SqliteJournalStore
    from repro.serving.replication import ReplicatedJournalStore

    db = chain_instance("RXRX", repetitions=4, conflict_every=4)
    names = ["res-{}".format(i) for i in range(num_residents)]
    delta = Delta(inserts=(Fact("Z", "a", "b"),))

    with tempfile.TemporaryDirectory(prefix="repro-bench-repl-") as tmp:
        bare = SqliteJournalStore("{}/bare.db".format(tmp))
        replicated = ReplicatedJournalStore(
            SqliteJournalStore("{}/primary.db".format(tmp)),
            ("memory",),
        )
        replicated.arm(FaultPlan())
        stores: Dict[str, object] = {"bare": bare, "replicated": replicated}
        seqs = {"bare": 0, "replicated": 0}
        times: Dict[str, List[float]] = {"bare": [], "replicated": []}
        try:
            for arm, store in stores.items():
                for name in names:
                    seqs[arm] += 1
                    store.register(0, name, db, seq=seqs[arm])
            # One untimed warm-up pass plus `passes` timed passes; the
            # warm-up absorbs first-touch page allocation on both logs.
            for timed_pass in range(passes + 1):
                for arm, store in stores.items():
                    start = time.perf_counter()
                    for op in range(n_ops):
                        seqs[arm] += 1
                        store.delta(0, names[op % len(names)], delta,
                                    seq=seqs[arm])
                    if timed_pass:
                        times[arm].append(time.perf_counter() - start)
            replicated.flush()
            health = replicated.health()
            replication = health["replication"]
            agrees = (
                bare.last_seq(0) == replicated.last_seq(0)
                and sorted(bare.residents(0))
                == sorted(replicated.residents(0))
                and all(r["lag"] == 0 for r in replication["replicas"])
            )
            failovers = replication["failovers"]
        finally:
            for store in stores.values():
                store.close()

    ratios = [r / b for b, r in zip(times["bare"], times["replicated"])]
    best = min(range(passes), key=lambda i: ratios[i])
    return {
        "ops": n_ops,
        "residents": num_residents,
        "passes": passes,
        "bare_seconds": times["bare"][best],
        "replicated_seconds": times["replicated"][best],
        "overhead": ratios[best] - 1.0,
        "agrees": agrees,
        "failovers": failovers,
    }


def run_failover_benchmark(
    repetitions: int = 200,
    transport: str = "thread",
) -> Dict[str, object]:
    """Time-to-first-answer across a mid-traffic primary failover.

    One server on a ``replicated:`` journal (sqlite primary, sqlite
    follower) with a one-shot ``write_error`` journal fault armed on
    the second journal write: register a chain resident (write 0),
    serve one warm solve, then commit a delta -- the journal write
    fails, the follower is promoted, and the write retries on the new
    primary, all inside the awaited ``solve_delta``.  The timed window
    runs from issuing that doomed write to the first answered read
    after it: fault, ship-out, promotion, retried write, re-served
    request.  ``warm_after_seconds`` times one more solve on the
    settled server; ``answers_agree`` checks the pre- and post-failover
    answers match (the delta is empty, so the certain answer must not
    move).  The promotion is asserted via the replication counters, so
    the row cannot silently measure a primary that never died.
    """
    query = "RXRX"
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)

    async def _scenario(tmp: str):
        async with AsyncCertaintyServer(
            num_shards=1,
            transport=transport,
            journal_store="replicated:sqlite:{0}/primary.db"
                          ";sqlite:{0}/follower.db".format(tmp),
            journal_faults="write_error:batch=1,times=1",
        ) as server:
            await server.register("db", db)
            warm = await server.solve("db", query)
            start = time.perf_counter()
            await server.solve_delta("db", Delta(), query)
            first = await server.solve("db", query)
            ttfa = time.perf_counter() - start
            start = time.perf_counter()
            after = await server.solve("db", query)
            warm_after = time.perf_counter() - start
            stats = server.stats()
            return warm, first, after, ttfa, warm_after, stats

    with tempfile.TemporaryDirectory(prefix="repro-bench-failover-") as tmp:
        warm, first, after, ttfa, warm_after, stats = asyncio.run(
            _scenario(tmp)
        )
    replication = stats["journal"]["replication"]
    return {
        "transport": transport,
        "repetitions": repetitions,
        "ttfa_seconds": ttfa,
        "warm_after_seconds": warm_after,
        "answers_agree": warm.answer == first.answer == after.answer,
        "failovers": replication["failovers"],
        "promoted": replication["primary"],
        "injected": dict(stats["journal_faults"]["injected"] or {}),
    }
