"""The serving benchmark: shard-warm async throughput vs per-call solves.

Shared by ``python -m repro bench-serve`` and
``benchmarks/test_bench_serving.py`` so the CLI demo and the pinned
assertion measure the same workload the same way.

The workload is the serving scenario the subsystem exists for: a fixed
fleet of resident databases, a mixed FO / NL-complete / PTIME-complete
query set, and a request stream that keeps re-asking those pairs (as
traffic from many clients does).  The **naive** baseline answers each
request with a per-call solve through a warm *plan* cache -- PR 1's
``solve_batch``, re-running the per-instance solver every time.  The
**serving** path routes the same stream through the
:class:`~repro.serving.server.AsyncCertaintyServer`: after one cold solve
per distinct ``(instance, query)`` pair, every request is answered from
the shard's maintained fixpoint state.

A second benchmark, :func:`run_transport_benchmark`, races the shard
transports against each other on a **CPU-bound** stream (every request a
forced full fixpoint run): thread-per-shard serializes on the GIL,
process-per-shard runs the shards in parallel.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Tuple

from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.serving.server import AsyncCertaintyServer
from repro.workloads.generators import chain_instance

#: One query per polynomial-time route of the tetrachotomy (all C3, so
#: the maintained state answers them exactly).
MIXED_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
)


def mixed_workload(
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
) -> Tuple[Dict[str, DatabaseInstance], List[Tuple[str, str]]]:
    """Named chain instances plus a round-robin request stream.

    Chains are built per query family (so every query has instances it
    can traverse) with a conflicting dead-end branch every few nodes;
    sizes stagger with the index so shards hold unequal residents.
    """
    instances: Dict[str, DatabaseInstance] = {}
    for i in range(num_instances):
        query = MIXED_QUERIES[i % len(MIXED_QUERIES)][0]
        instances["db{}".format(i)] = chain_instance(
            query,
            repetitions=repetitions + 3 * i,
            conflict_every=4,
        )
    names = sorted(instances)
    # Walk every (instance, query) combination so each shard maintains
    # several states per resident, not one hot pair.
    requests = [
        (
            names[i % len(names)],
            MIXED_QUERIES[(i // len(names)) % len(MIXED_QUERIES)][0],
        )
        for i in range(n_requests)
    ]
    return instances, requests


def run_serving_benchmark(
    num_shards: int = 4,
    num_instances: int = 6,
    repetitions: int = 40,
    n_requests: int = 240,
    max_batch: int = 32,
    max_delay: float = 0.001,
    transport: str = "thread",
) -> Dict[str, object]:
    """Measure the request stream both ways; returns the comparison.

    The returned dict carries ``naive_seconds`` / ``serving_seconds``
    (measured over the same *n_requests* stream, shard states warm),
    ``speedup``, both throughputs in requests/second, ``agrees`` (the
    answer streams are identical), and the server's final ``stats()``.
    """
    instances, requests = mixed_workload(
        num_instances=num_instances,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    # -- Naive per-call baseline: warm plans, cold per-instance solves.
    naive_engine = CertaintyEngine()
    for _, query in MIXED_QUERIES:
        naive_engine.compile(query)
    pairs = [(instances[name], query) for name, query in requests]
    start = time.perf_counter()
    naive_results = naive_engine.solve_batch(pairs)
    naive_seconds = time.perf_counter() - start

    # -- Sharded serving: register, warm each distinct pair once, then
    #    time the identical stream end-to-end through the async API.
    async def _serve():
        async with AsyncCertaintyServer(
            num_shards=num_shards,
            max_batch=max_batch,
            max_delay=max_delay,
            transport=transport,
        ) as server:
            for name, db in sorted(instances.items()):
                await server.register(name, db)
            distinct = sorted(set(requests))
            await server.solve_many(distinct)  # one cold solve per pair
            start = time.perf_counter()
            results = await server.solve_many(requests)
            seconds = time.perf_counter() - start
            return results, seconds, server.stats()

    serving_results, serving_seconds, server_stats = asyncio.run(_serve())

    answers_naive = [r.answer for r in naive_results]
    answers_serving = [r.answer for r in serving_results]
    warm_hits = sum(s["warm_hits"] for s in server_stats["shards"])
    return {
        "requests": len(requests),
        "num_shards": num_shards,
        "transport": transport,
        "naive_seconds": naive_seconds,
        "serving_seconds": serving_seconds,
        "speedup": naive_seconds / serving_seconds,
        "naive_rps": len(requests) / naive_seconds,
        "serving_rps": len(requests) / serving_seconds,
        "agrees": answers_naive == answers_serving,
        "warm_hits": warm_hits,
        "server_stats": server_stats,
    }


#: The PTIME-complete route: forced ``method="fixpoint"`` runs the full
#: Figure 5 kernel per request -- no warm shortcut, pure CPU.
CPU_BOUND_QUERY = "RXRYRY"


def cpu_bound_workload(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
):
    """One large resident pinned per shard, plus a round-robin stream.

    Every request forces ``method="fixpoint"`` on its shard's resident,
    so each one re-runs the polynomial-time kernel on ~``6*repetitions``
    facts (about 8 ms at the default size): the workload is CPU-bound by
    construction, which is exactly where a thread-per-shard layout
    serializes on the GIL and a process-per-shard layout does not.
    """
    instances = {
        "cpu{}".format(shard): chain_instance(
            CPU_BOUND_QUERY, repetitions=repetitions, conflict_every=4
        )
        for shard in range(num_shards)
    }
    names = sorted(instances)
    requests = [
        (names[i % len(names)], CPU_BOUND_QUERY) for i in range(n_requests)
    ]
    return instances, requests


def run_transport_benchmark(
    num_shards: int = 4,
    repetitions: int = 3000,
    n_requests: int = 64,
    transports=("thread", "process"),
) -> Dict[str, object]:
    """Race the shard transports on the CPU-bound forced-fixpoint stream.

    The identical request stream runs once per transport through an
    :class:`AsyncCertaintyServer` (registration and a one-per-shard
    warm-up solve happen before the timed window, so process start-up
    and plan compilation are excluded).  Returns per-transport seconds
    and requests/second, ``speedup`` (thread seconds / process seconds
    when both ran), and ``agrees`` (identical answer streams).  On a
    single-core machine the speedup degrades to IPC overhead -- the
    pinned ``>= 1.5x`` gate in ``benchmarks/test_bench_serving.py``
    skips there.
    """
    instances, requests = cpu_bound_workload(
        num_shards=num_shards,
        repetitions=repetitions,
        n_requests=n_requests,
    )

    async def _stream(transport: str):
        # max_batch=1: identical reads coalesce within a micro-batch,
        # which would collapse the forced stream to one kernel run per
        # shard -- here every request must pay its own kernel, because
        # per-request CPU is precisely what the transports race on.
        async with AsyncCertaintyServer(
            num_shards=num_shards, max_batch=1, max_delay=0.0,
            transport=transport,
        ) as server:
            for shard, name in enumerate(sorted(instances)):
                await server.register(name, instances[name], shard=shard)
            # Warm-up: ship snapshots, compile plans, fault in the
            # compact views -- everything but the per-request kernel.
            await server.solve_many(
                [(name, CPU_BOUND_QUERY) for name in sorted(instances)],
                method="fixpoint",
            )
            start = time.perf_counter()
            results = await server.solve_many(requests, method="fixpoint")
            seconds = time.perf_counter() - start
            return [r.answer for r in results], seconds

    report: Dict[str, object] = {
        "requests": len(requests),
        "num_shards": num_shards,
        "repetitions": repetitions,
        "transports": {},
    }
    answer_streams = []
    for transport in transports:
        answers, seconds = asyncio.run(_stream(transport))
        answer_streams.append(answers)
        report["transports"][transport] = {
            "seconds": seconds,
            "rps": len(requests) / seconds,
        }
    report["agrees"] = all(
        stream == answer_streams[0] for stream in answer_streams
    )
    per = report["transports"]
    if "thread" in per and "process" in per:
        report["speedup"] = per["thread"]["seconds"] / per["process"]["seconds"]
    return report
