"""The sharded async serving layer in front of the certainty engine.

Where :mod:`repro.engine` made *compilation* pay once per query (PR 1)
and the incremental layer made *execution* pay once per delta (PR 2),
this package makes both survive **across requests**: registered
:class:`~repro.db.instance.DatabaseInstance`\\ s live on shards, each
served by a persistent worker whose engine -- plan LRU plus the
:class:`~repro.solvers.state_cache.StateCache` of maintained
:class:`~repro.solvers.fixpoint.FixpointState`\\ s -- stays warm for the
process lifetime.  Concurrent ``await``\\ s coalesce into per-shard
micro-batches with a bounded added latency.

* :class:`ShardRouter` -- hash or explicit placement of instances onto
  shards (sticky; deterministic across processes).
* :class:`ShardWorker` -- the per-shard micro-batch assembly loop,
  driving a transport-agnostic :class:`ShardCore` (resident instances,
  a private engine) through a pluggable :class:`ShardTransport`.
* :mod:`repro.serving.transport` -- the transport seam:
  :class:`ThreadTransport` (core in the worker's thread, shared memory)
  and :class:`ProcessTransport` (one persistent subprocess per shard:
  facts-only snapshots in, deltas forwarded, stripped results out,
  crash-restart with journal replay -- true CPU parallelism).
* :class:`AsyncCertaintyServer` -- the asyncio front door:
  ``await solve(...)``, ``await solve_delta(...)``, admission stats and
  per-shard warm/cold + transport-health counters via
  :meth:`AsyncCertaintyServer.stats`; graceful :meth:`close` fails
  still-queued requests with :class:`ServerClosed`.
* :mod:`repro.serving.journal` -- the durable journal tier:
  :class:`JournalStore` records every registration and forwarded delta
  per shard (:class:`MemoryJournalStore` for the in-process default,
  :class:`SqliteJournalStore` for an append-only on-disk op log with
  compaction, checksummed records and torn-tail recovery), so a
  reopened server cold-starts its shards from the log with zero client
  re-registration.
* :mod:`repro.serving.replication` -- the replicated journal tier:
  :class:`KVJournalStore` journals over a minimal key-value interface
  (:class:`MemoryKV` / :class:`FileKV`), and
  :class:`ReplicatedJournalStore` keeps one primary plus follower
  replicas tailing its op log -- per-replica lag in ``health()``,
  promotion of the most-caught-up follower on primary failure
  (budgeted by a :class:`FailoverGuard`), and degraded reads answered
  from the freshest caught-up replica.
* :mod:`repro.serving.supervision` -- supervised restarts:
  :class:`RestartPolicy` (restart budget per rolling window,
  exponential backoff with deterministic jitter) and the per-shard
  :class:`CircuitBreaker` (closed / open / half-open), behind the
  fail-fast :class:`ShardUnavailable` path and degraded journal-backed
  reads.
* :mod:`repro.serving.faults` -- the deterministic fault-injection
  harness: a seeded :class:`FaultPlan` of crash / drop / delay / dup
  rules both transports consult per batch, wired through
  ``AsyncCertaintyServer(faults=...)`` and ``--chaos`` on the CLI.
* Admission control and deadlines -- bounded per-shard queues plus a
  server-wide in-flight cap (:class:`ServerOverloaded`), and
  ``timeout=`` on every read so expired requests are shed with
  :class:`DeadlineExceeded` before burning engine work.
* :mod:`repro.serving.bench` -- the mixed-workload and CPU-bound
  transport benchmarks behind ``python -m repro bench-serve`` and the
  pinned throughput assertions.

See ``docs/serving.md`` for the architecture and a worked example.
"""

from repro.serving.faults import (
    FaultPlan,
    FaultRule,
    make_fault_plan,
)
from repro.serving.journal import (
    CorruptRecord,
    JournalStore,
    MemoryJournalStore,
    ShardJournal,
    SqliteJournalStore,
    make_journal_store,
    pack_record,
    unpack_record,
)
from repro.serving.replication import (
    FileKV,
    JournalFault,
    JournalUnavailable,
    KVBackend,
    KVJournalStore,
    MemoryKV,
    ReplicatedJournalStore,
    make_kv_journal_store,
    make_replicated_journal_store,
)
from repro.serving.server import AsyncCertaintyServer
from repro.serving.shard import (
    EMPTY_DELTA,
    DeadlineExceeded,
    ServerClosed,
    ServerOverloaded,
    ShardCore,
    ShardRequest,
    ShardRouter,
    ShardUnavailable,
    ShardWorker,
    stable_shard,
)
from repro.serving.supervision import (
    CircuitBreaker,
    FailoverGuard,
    RestartPolicy,
)
from repro.serving.transport import (
    ProcessTransport,
    ShardTransport,
    ShardTransportError,
    ThreadTransport,
    make_transport,
)

__all__ = [
    "AsyncCertaintyServer",
    "CircuitBreaker",
    "CorruptRecord",
    "DeadlineExceeded",
    "EMPTY_DELTA",
    "FailoverGuard",
    "FaultPlan",
    "FaultRule",
    "FileKV",
    "JournalFault",
    "JournalStore",
    "JournalUnavailable",
    "KVBackend",
    "KVJournalStore",
    "MemoryJournalStore",
    "MemoryKV",
    "ProcessTransport",
    "ReplicatedJournalStore",
    "RestartPolicy",
    "ServerClosed",
    "ServerOverloaded",
    "ShardCore",
    "ShardJournal",
    "ShardRequest",
    "ShardRouter",
    "ShardTransport",
    "ShardTransportError",
    "ShardUnavailable",
    "ShardWorker",
    "SqliteJournalStore",
    "ThreadTransport",
    "make_fault_plan",
    "make_journal_store",
    "make_kv_journal_store",
    "make_replicated_journal_store",
    "make_transport",
    "pack_record",
    "stable_shard",
    "unpack_record",
]
