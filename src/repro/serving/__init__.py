"""The sharded async serving layer in front of the certainty engine.

Where :mod:`repro.engine` made *compilation* pay once per query (PR 1)
and the incremental layer made *execution* pay once per delta (PR 2),
this package makes both survive **across requests**: registered
:class:`~repro.db.instance.DatabaseInstance`\\ s live on shards, each
served by a persistent worker whose engine -- plan LRU plus the
:class:`~repro.solvers.state_cache.StateCache` of maintained
:class:`~repro.solvers.fixpoint.FixpointState`\\ s -- stays warm for the
process lifetime.  Concurrent ``await``\\ s coalesce into per-shard
micro-batches with a bounded added latency.

* :class:`ShardRouter` -- hash or explicit placement of instances onto
  shards (sticky; deterministic across processes).
* :class:`ShardWorker` -- one persistent thread per shard: resident
  instances, a private engine, the micro-batch drain loop.
* :class:`AsyncCertaintyServer` -- the asyncio front door:
  ``await solve(...)``, ``await solve_delta(...)``, admission stats and
  per-shard warm/cold counters via :meth:`AsyncCertaintyServer.stats`.
* :mod:`repro.serving.bench` -- the mixed-workload benchmark behind
  ``python -m repro bench-serve`` and the pinned >= 2x throughput
  assertion.

See ``docs/serving.md`` for the architecture and a worked example.
"""

from repro.serving.server import AsyncCertaintyServer
from repro.serving.shard import (
    EMPTY_DELTA,
    ShardRequest,
    ShardRouter,
    ShardWorker,
    stable_shard,
)

__all__ = [
    "AsyncCertaintyServer",
    "EMPTY_DELTA",
    "ShardRequest",
    "ShardRouter",
    "ShardWorker",
    "stable_shard",
]
