"""Compiled query plans: per-query work done once, per-instance work per call.

``certain_answer`` historically re-ran classification (Theorem 3), the
prefix tables of the Figure 5 algorithm, and -- for forced methods -- the
Claim 5 program generation on *every* ``(db, query)`` call.  All of that
depends only on the query, and the paper's headline result is exactly that
it is polynomial in ``|q|`` -- so a serving system should pay it once per
query.  A :class:`CompiledQuery` is that per-query residue:

* the Theorem 3 classification and the dispatch route it determines;
* the :class:`~repro.solvers.fixpoint.FixpointTables` of Figure 5;
* the Claim 5 linear-Datalog program (NL route; lazily for forced ``nl``);
* a :class:`SatSkeleton` fixing the falsifying-repair encoding options;
* lazily on first use: ``NFA(q)``, the ``NFAmin(q)`` DFA, and the
  Lemma 13 FO sentence (inspection artifacts; the hot paths use the
  direct semantic recursions).

``plan.solve(db)`` then performs only instance-dependent work, with
semantics identical to the classification-driven ``certain_answer``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.classification.classifier import (
    Classification,
    ComplexityClass,
    classify,
)
from repro.datalog.cqa_program import (
    CqaProgram,
    UnsupportedQuery,
    build_cqa_program,
)
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import FixpointTables, certain_answer_fixpoint
from repro.solvers.fo_solver import certain_answer_fo
from repro.solvers.generalized_solver import _segment_certain
from repro.solvers.nl_solver import certain_answer_nl
from repro.solvers.result import CertaintyResult
from repro.solvers.sat_encoding import certain_answer_sat
from repro.words.word import Word, WordLike

PlanQuery = Union[str, Word, PathQuery]

_METHODS = ("auto", "fo", "nl", "fixpoint", "sat", "brute_force")

_UNSET = object()


class SatSkeleton:
    """The instance-independent part of the falsifying-repair encoding.

    The clause matrix itself is data-dependent (one variable per fact, one
    blocking clause per embedding), so what compiles ahead of time is the
    normalized query and the encoding options; the skeleton exists so the
    per-instance call site carries no per-query decisions.
    """

    __slots__ = ("query", "at_most_one")

    def __init__(self, query: Word, at_most_one: bool = False) -> None:
        self.query = query
        self.at_most_one = at_most_one

    def solve(self, db: DatabaseInstance) -> CertaintyResult:
        return certain_answer_sat(db, self.query, self.at_most_one)


def conp_solve(
    db: DatabaseInstance,
    q: WordLike,
    tables: Optional[FixpointTables] = None,
    skeleton: Optional[SatSkeleton] = None,
) -> CertaintyResult:
    """SAT with the sound fixpoint "no" pre-filter (Lemma 10).

    The fixpoint "no" comes with a Lemma 9 falsifying repair, which is
    sound for *every* query, so the expensive SAT call only runs on
    fixpoint-"yes" instances.  A fresh :class:`CertaintyResult` is built
    for the pre-filter answer -- the pre-filter's own result object is
    never mutated or returned, so no ``method``/``details`` state leaks
    between calls of a cached plan.
    """
    q = Word.coerce(q)
    prefilter = certain_answer_fixpoint(
        db, q, require_c3=False, tables=tables, is_c3=False
    )
    if not prefilter.answer:
        return CertaintyResult(
            query=prefilter.query,
            answer=False,
            method="fixpoint-prefilter",
            # Forward the certificate source unresolved: reading the
            # property here would force the lazy Lemma 9 construction.
            falsifying_repair=prefilter._repair_source,
            details=dict(prefilter.details),
        )
    if skeleton is None:
        skeleton = SatSkeleton(q)
    result = skeleton.solve(db)
    result.details["prefilter"] = "fixpoint-yes"
    return result


class CompiledQuery:
    """A constant-free path query compiled for repeated solving.

    >>> plan = CompiledQuery("RRX")
    >>> str(plan.classification.complexity)
    'NL-complete'
    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 1, 3), ("R", 2, 3), ("X", 3, 4)])
    >>> plan.solve(db).answer
    True
    """

    __slots__ = (
        "word",
        "classification",
        "tables",
        "sat_skeleton",
        "_datalog",
        "_datalog_error",
        "_datalog_compact",
        "_nfa",
        "_minimal_dfa",
        "_fo_sentence",
    )

    def __init__(self, query: PlanQuery) -> None:
        if isinstance(query, PathQuery):
            query = query.word
        self.word = Word.coerce(query)
        self.classification: Classification = classify(self.word)
        self.tables = FixpointTables.build(self.word)
        self.sat_skeleton = SatSkeleton(self.word)
        self._datalog: Union[CqaProgram, None, object] = _UNSET
        self._datalog_error: Optional[str] = None
        self._datalog_compact = None
        if self.complexity is ComplexityClass.NL_COMPLETE:
            self._build_datalog()
        self._nfa = None
        self._minimal_dfa = None
        self._fo_sentence = _UNSET

    # ------------------------------------------------------------------
    # Compiled artifacts
    # ------------------------------------------------------------------

    @property
    def complexity(self) -> ComplexityClass:
        return self.classification.complexity

    def _build_datalog(self) -> Optional[CqaProgram]:
        if self._datalog is _UNSET:
            try:
                self._datalog = build_cqa_program(self.word)
            except UnsupportedQuery as exc:
                self._datalog = None
                self._datalog_error = str(exc)
        return self._datalog

    @property
    def datalog_program(self) -> Optional[CqaProgram]:
        """The Claim 5 program, or ``None`` when no verified decomposition
        exists (built on first access for non-NL queries)."""
        return self._build_datalog()

    def _compact_datalog(self, program: CqaProgram):
        """The compact-engine compilation of the Claim 5 program, built
        once per plan so the per-instance NL solve skips even the
        module-level memo lookup."""
        if self._datalog_compact is None:
            from repro.datalog.engine import compact_program

            self._datalog_compact = compact_program(program.program)
        return self._datalog_compact

    @property
    def nfa(self):
        """``NFA(q)`` (Definition 3), built on first access."""
        if self._nfa is None:
            from repro.automata.query_nfa import query_nfa

            self._nfa = query_nfa(self.word)
        return self._nfa

    @property
    def minimal_dfa(self):
        """The ``NFAmin(q)`` DFA (Definition 13), built on first access."""
        if self._minimal_dfa is None:
            from repro.automata.query_nfa import nfa_min

            self._minimal_dfa = nfa_min(self.word)
        return self._minimal_dfa

    @property
    def fo_sentence(self):
        """The Lemma 13 rewriting ``∃x ψ(x)`` for C1 queries, else ``None``."""
        if self._fo_sentence is _UNSET:
            if self.classification.c1:
                from repro.fo.rewriting import c1_rewriting

                self._fo_sentence = c1_rewriting(self.word)
            else:
                self._fo_sentence = None
        return self._fo_sentence

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, db: DatabaseInstance, method: str = "auto") -> CertaintyResult:
        """Decide CERTAINTY(q) on *db*; per-instance work only.

        Semantics match ``certain_answer(db, q, method=method)``: ``auto``
        dispatches along the Theorem 3 route and records the complexity
        class in ``details``; forced methods keep their applicability
        errors (``fo`` on a non-C1 query raises :class:`ValueError`,
        ``nl`` without a verified decomposition raises
        :class:`~repro.datalog.cqa_program.UnsupportedQuery`).
        """
        if method == "auto":
            result = self._solve_auto(db)
            result.details["complexity"] = str(self.complexity)
            return result
        if method == "fo":
            if not self.classification.c1:
                raise ValueError(
                    "query {} violates C1; its CERTAINTY problem is not "
                    "in FO".format(self.word)
                )
            return certain_answer_fo(db, self.word, check=False)
        if method == "nl":
            program = self._build_datalog()
            if program is None:
                raise UnsupportedQuery(self._datalog_error)
            return certain_answer_nl(
                db, self.word, program=program,
                compiled=self._compact_datalog(program),
            )
        if method == "fixpoint":
            return self._fixpoint(db, require_c3=True)
        if method == "sat":
            return self.sat_skeleton.solve(db)
        if method == "brute_force":
            return certain_answer_brute_force(db, self.word)
        raise ValueError("unknown method {!r}".format(method))

    def _fixpoint(self, db: DatabaseInstance, require_c3: bool) -> CertaintyResult:
        return certain_answer_fixpoint(
            db,
            self.word,
            require_c3=require_c3,
            tables=self.tables,
            is_c3=self.classification.c3,
        )

    def _solve_auto(self, db: DatabaseInstance) -> CertaintyResult:
        complexity = self.complexity
        if complexity is ComplexityClass.FO:
            return certain_answer_fo(db, self.word, check=False)
        if complexity is ComplexityClass.NL_COMPLETE:
            program = self._build_datalog()
            if program is not None:
                return certain_answer_nl(
                    db, self.word, program=program,
                    compiled=self._compact_datalog(program),
                )
            result = self._fixpoint(db, require_c3=False)
            result.details["nl_fallback"] = True
            return result
        if complexity is ComplexityClass.PTIME_COMPLETE:
            return self._fixpoint(db, require_c3=False)
        return conp_solve(
            db, self.word, tables=self.tables, skeleton=self.sat_skeleton
        )

    def __repr__(self) -> str:
        return "CompiledQuery({!r}, {})".format(str(self.word), self.complexity)


class CompiledGeneralizedQuery:
    """A generalized path query (Section 8) compiled for repeated solving.

    The query-level pieces of ``certain_answer_generalized`` -- the
    Lemma 27 segment split, ``char(q)`` and the Lemma 29 ``ext(q)``
    reduction word -- are computed once; the inner constant-free decision
    runs through *solve_word* (the owning engine's cached dispatch), so
    the ``ext(q)`` plan is itself compiled exactly once.
    """

    __slots__ = ("query", "segments", "char", "ext_word", "fresh_relation")

    def __init__(self, query: GeneralizedPathQuery) -> None:
        if not query.has_constants():
            raise ValueError(
                "constant-free generalized queries compile to CompiledQuery"
            )
        self.query = query
        self.segments = tuple(query.segments())
        self.char = query.char()
        if self.char.word:
            self.ext_word = query.ext().word
            self.fresh_relation = self.ext_word.last()
        else:
            self.ext_word = None
            self.fresh_relation = None

    def solve(
        self,
        db: DatabaseInstance,
        method: str = "auto",
        solve_word=None,
    ) -> CertaintyResult:
        """Decide CERTAINTY(q); mirrors ``certain_answer_generalized``."""
        if method not in _METHODS:
            raise ValueError("unknown method {!r}".format(method))
        if solve_word is None:
            solve_word = lambda db_, w, m: CompiledQuery(w).solve(db_, m)

        # 1. The constant-rooted remainder, segment by segment (Lemma 27).
        for segment in self.segments:
            if not _segment_certain(db, segment):
                return CertaintyResult(
                    query=str(self.query),
                    answer=False,
                    method="generalized",
                    details={"failed_segment": str(segment)},
                )

        # 2. The characteristic prefix, via the ext(q) reduction (Lemma 29).
        if self.ext_word is None:
            return CertaintyResult(
                query=str(self.query),
                answer=True,
                method="generalized",
                details={"char": "empty"},
            )
        fresh_constant = "_ext_sink"
        while fresh_constant in db.adom():
            fresh_constant += "_"
        extended = db.with_facts(
            [Fact(self.fresh_relation, self.char.terminal, fresh_constant)]
        )
        inner = solve_word(extended, self.ext_word, method)
        return CertaintyResult(
            query=str(self.query),
            answer=inner.answer,
            method="generalized",
            witness_constant=inner.witness_constant,
            details={
                "char_reduction": str(self.ext_word),
                "inner_method": inner.method,
            },
        )

    def __repr__(self) -> str:
        return "CompiledGeneralizedQuery({!r})".format(str(self.query))
