"""The batched certainty engine: compile once per query, solve per instance.

:class:`CertaintyEngine` owns an LRU cache of compiled plans keyed by the
query word (generalized queries by the query itself), per-engine counters
(:class:`EngineStats`), and two entry points:

* ``solve(db, query, method="auto")`` -- one instance through its cached
  plan;
* ``solve_batch(pairs, workers=N)`` -- a workload of ``(db, query)``
  pairs; with ``workers > 1`` the batch fans out over a multiprocessing
  pool (each worker process keeps its own plan cache, populated on first
  use via fork or re-compiled after spawn);
* ``solve_batch_iter(pairs, workers=N)`` -- the streaming variant:
  yields ``(index, result)`` as instances finish (a generator locally,
  ``imap_unordered`` across a pool with ``workers > 1``);
* ``solve_delta(db, delta, query)`` -- CERTAINTY on ``db`` with a
  :class:`~repro.db.delta.Delta` applied, served by incrementally
  maintaining the cached :class:`~repro.solvers.fixpoint.FixpointState`
  instead of re-solving from scratch (per-engine stats count incremental
  hits vs full re-solves).

``certain_answer`` is a thin shim over the process-wide
:func:`default_engine`, so library users get plan caching for free;
construct a private engine to isolate caches or statistics.

The plan-LRU contract
---------------------

The plan cache is keyed by the *query word* (generalized queries with
constants by the query itself), so ``"RRX"``, ``Word("RRX")`` and
``PathQuery("RRX")`` share one plan.  Invariants callers may rely on:

* **Plans are immutable after compilation** (lazily built members --
  NFA, DFA, FO sentence -- are compute-once and idempotent), so a plan
  may be handed to any number of threads or fork-started workers; the
  LRU never mutates a plan, only drops references.
* **Eviction is capacity-only.**  A plan is evicted solely when the
  cache exceeds ``cache_size`` (least recently used first); there is no
  TTL, and eviction never invalidates results -- a re-compile produces
  an equivalent plan.  ``cache_size=0`` disables caching (every solve
  recompiles; the measured pre-engine baseline).
* **Counters**: ``stats.compiles`` counts cache misses (plan
  constructions), ``stats.cache_hits`` counts served lookups; both are
  monotone between ``stats.reset()`` calls.  Concurrent misses on the
  same key may each compile (the lock covers bookkeeping, not
  compilation -- plans are equivalent, so last-write-wins is safe).

The *state* cache (incremental :class:`FixpointState`\\ s keyed by
``(plan key, instance)``) lives in a separate
:class:`~repro.solvers.state_cache.StateCache` with checkout semantics
-- see that module for its contract.  ``solve_delta`` checks a state
out, folds the delta in, reads the answer, and only then publishes the
state back under the updated instance's key, so a state observable in
the cache is never mid-mutation.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import Counter, OrderedDict
from typing import (
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.db.delta import Delta, DeltaInstance
from repro.db.instance import DatabaseInstance
from repro.engine.plan import (
    CompiledGeneralizedQuery,
    CompiledQuery,
    PlanQuery,
)
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.fixpoint import FixpointState, certain_answer_incremental
from repro.solvers.generalized_solver import GeneralizedState
from repro.solvers.result import CertaintyResult
from repro.solvers.sat_encoding import IncrementalSatContext
from repro.solvers.state_cache import StateCache
from repro.words.word import Word

EngineQuery = Union[str, Word, PathQuery, GeneralizedPathQuery]
Pair = Tuple[DatabaseInstance, EngineQuery]
IndexedResult = Tuple[int, CertaintyResult]

#: Default number of plans kept by an engine's LRU cache.
DEFAULT_CACHE_SIZE = 128

#: Default number of incremental fixpoint states kept per engine.
DEFAULT_STATE_CACHE_SIZE = 64


class EngineStats:
    """Per-engine counters: compiles, cache hits, solves, wall time."""

    __slots__ = (
        "compiles",
        "cache_hits",
        "solves",
        "batches",
        "parallel_batches",
        "delta_solves",
        "incremental_hits",
        "full_resolves",
        "sat_incremental_hits",
        "sat_clauses_reused",
        "method_counts",
        "route_seconds",
        "wall_seconds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiles = 0
        self.cache_hits = 0
        self.solves = 0
        self.batches = 0
        self.parallel_batches = 0
        self.delta_solves = 0
        self.incremental_hits = 0
        self.full_resolves = 0
        self.sat_incremental_hits = 0
        self.sat_clauses_reused = 0
        self.method_counts: Counter = Counter()
        self.route_seconds: Counter = Counter()
        self.wall_seconds = 0.0

    def record(self, result: CertaintyResult, seconds: float) -> None:
        self.solves += 1
        self.method_counts[result.method] += 1
        self.route_seconds[result.method] += seconds
        self.wall_seconds += seconds

    @classmethod
    def from_dict(cls, data: dict) -> "EngineStats":
        """Rebuild counters from an :meth:`as_dict` payload.

        The serving layer's process transports ship engine counters
        across the pipe as plain dicts (see
        :meth:`repro.serving.shard.ShardCore.snapshot`); this is the
        receiving side of that wire format.  Unknown keys are ignored,
        missing keys default to zero, so payloads from older workers
        still load.
        """
        stats = cls()
        stats.merge(data)
        return stats

    def merge(self, other: Union["EngineStats", dict]) -> "EngineStats":
        """Fold another engine's counters into this one; returns self.

        Addition for every counter (``method_counts`` merge per method,
        wall time sums), so merging is associative and keeps totals
        monotone -- the property the process transport relies on when a
        restarted shard child starts counting from zero: the dead
        generation's last snapshot is merged into a carried base.
        """
        data = other.as_dict() if isinstance(other, EngineStats) else other
        self.compiles += data.get("compiles", 0)
        self.cache_hits += data.get("cache_hits", 0)
        self.solves += data.get("solves", 0)
        self.batches += data.get("batches", 0)
        self.parallel_batches += data.get("parallel_batches", 0)
        self.delta_solves += data.get("delta_solves", 0)
        self.incremental_hits += data.get("incremental_hits", 0)
        self.full_resolves += data.get("full_resolves", 0)
        self.sat_incremental_hits += data.get("sat_incremental_hits", 0)
        self.sat_clauses_reused += data.get("sat_clauses_reused", 0)
        self.method_counts.update(data.get("method_counts", {}))
        self.route_seconds.update(data.get("route_seconds", {}))
        self.wall_seconds += data.get("wall_seconds", 0.0)
        return self

    def as_dict(self) -> dict:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "solves": self.solves,
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "delta_solves": self.delta_solves,
            "incremental_hits": self.incremental_hits,
            "full_resolves": self.full_resolves,
            "sat_incremental_hits": self.sat_incremental_hits,
            "sat_clauses_reused": self.sat_clauses_reused,
            "method_counts": dict(self.method_counts),
            "route_seconds": dict(self.route_seconds),
            "wall_seconds": self.wall_seconds,
        }

    def __str__(self) -> str:
        methods = ", ".join(
            "{}={} ({:.4f}s)".format(m, c, self.route_seconds.get(m, 0.0))
            for m, c in sorted(self.method_counts.items())
        )
        return (
            "EngineStats(solves={}, compiles={}, cache_hits={}, "
            "delta_solves={}, incremental_hits={}, full_resolves={}, "
            "sat_incremental_hits={}, sat_clauses_reused={}, "
            "wall={:.4f}s, methods: {})".format(
                self.solves,
                self.compiles,
                self.cache_hits,
                self.delta_solves,
                self.incremental_hits,
                self.full_resolves,
                self.sat_incremental_hits,
                self.sat_clauses_reused,
                self.wall_seconds,
                methods or "-",
            )
        )


class CertaintyEngine:
    """A CERTAINTY(q) serving engine with a per-query plan cache.

    *cache_size* bounds the LRU plan cache; ``0`` disables caching (every
    solve recompiles -- the pre-engine behavior, kept measurable for the
    compile-once benchmarks).

    >>> engine = CertaintyEngine()
    >>> db = DatabaseInstance.from_triples(
    ...     [("R", "a", "a"), ("R", "a", "b"), ("R", "b", "a"), ("R", "b", "b")])
    >>> engine.solve(db, "RR").answer
    True
    >>> engine.solve(db, "RR").answer        # second call hits the plan cache
    True
    >>> engine.stats.cache_hits
    1
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        state_cache_size: int = DEFAULT_STATE_CACHE_SIZE,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.cache_size = cache_size
        self.stats = EngineStats()
        self._plans: "OrderedDict[Hashable, object]" = OrderedDict()
        #: Maintained fixpoint states, keyed by (plan key, instance); the
        #: instance key advances as deltas are applied, so a stream of
        #: updates against the same logical database keeps hitting.
        self.state_cache = StateCache(state_cache_size)
        # Guards the LRU bookkeeping: certain_answer was thread-safe
        # before it routed through a shared engine, so it must stay so.
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _cache_key(query: EngineQuery) -> Hashable:
        if isinstance(query, GeneralizedPathQuery):
            if query.has_constants():
                return ("generalized", query)
            return ("word", query.word)
        if isinstance(query, PathQuery):
            return ("word", query.word)
        return ("word", Word.coerce(query))

    def compile(self, query: EngineQuery):
        """Return the cached plan for *query*, compiling on first use.

        The cache is keyed by the query word (generalized queries by the
        query itself), so ``"RRX"``, ``Word("RRX")`` and
        ``PathQuery("RRX")`` share one plan.
        """
        key = self._cache_key(query)
        with self._cache_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.cache_hits += 1
                return plan
        if isinstance(query, GeneralizedPathQuery) and query.has_constants():
            plan = CompiledGeneralizedQuery(query)
        else:
            plan = CompiledQuery(key[1])
        with self._cache_lock:
            self.stats.compiles += 1
            if self.cache_size > 0:
                self._plans[key] = plan
                while len(self._plans) > self.cache_size:
                    self._plans.popitem(last=False)
        return plan

    def cache_info(self) -> dict:
        return {
            "size": len(self._plans),
            "max_size": self.cache_size,
            "hits": self.stats.cache_hits,
            "compiles": self.stats.compiles,
            "states": self.state_cache.info(),
        }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._plans.clear()
        self.state_cache.clear()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        db: DatabaseInstance,
        query: EngineQuery,
        method: str = "auto",
    ) -> CertaintyResult:
        """Decide whether every repair of *db* satisfies *query*."""
        start = time.perf_counter()
        plan = self.compile(query)
        if isinstance(plan, CompiledGeneralizedQuery):
            result = plan.solve(db, method=method, solve_word=self._solve_word)
        else:
            result = plan.solve(db, method=method)
        self.stats.record(result, time.perf_counter() - start)
        return result

    def _solve_word(self, db: DatabaseInstance, word: Word, method: str):
        """Inner dispatch for generalized plans (cached, not re-counted)."""
        plan = self.compile(word)
        return plan.solve(db, method=method)

    def solve_batch(
        self,
        pairs: Iterable[Pair],
        method: str = "auto",
        workers: Optional[int] = None,
        strip_certificates: bool = False,
    ) -> List[CertaintyResult]:
        """Solve a workload of ``(db, query)`` pairs, in order.

        With ``workers`` > 1 the batch fans out over a multiprocessing
        pool; results are identical to the sequential path (each item is
        independent), so batch mode is purely a throughput knob.  With
        *strip_certificates* the falsifying-repair certificates are
        dropped (see :meth:`solve_batch_iter`).
        """
        items = list(pairs)
        results: List[Optional[CertaintyResult]] = [None] * len(items)
        for index, result in self.solve_batch_iter(
            items,
            method=method,
            workers=workers,
            strip_certificates=strip_certificates,
        ):
            results[index] = result
        return results


    # ------------------------------------------------------------------
    # Incremental solving
    # ------------------------------------------------------------------

    def solve_delta(
        self,
        db: DatabaseInstance,
        delta: Union[Delta, DeltaInstance],
        query: EngineQuery,
        method: str = "auto",
    ) -> CertaintyResult:
        """Decide CERTAINTY(query) on *db* with *delta* applied.

        Semantically identical to ``solve(delta.apply_to(db).commit(),
        query)``; operationally, the engine maintains a
        :class:`~repro.solvers.fixpoint.FixpointState` per ``(query,
        instance)`` and folds the delta into it, so a stream of updates
        against the same logical database pays O(delta) *solver* work per
        decision (plus the shallow O(db) dict copies of
        ``DeltaInstance.commit`` -- cheap next to re-running the
        fixpoint, but not delta-sized):

        * FO / NL-complete / PTIME-complete queries satisfy C3, where the
          Figure 5 relation ``N`` decides CERTAINTY exactly -- the
          maintained state answers directly;
        * coNP-complete queries violate C3: the maintained state stays a
          sound "no" pre-filter (Lemma 10), and a "yes" falls back to a
          full SAT re-solve on the updated instance.

        Constant-carrying generalized queries are maintained too (a
        :class:`~repro.solvers.generalized_solver.GeneralizedState`
        keeps segment verdicts and the ``ext(q)`` fixpoint alive), and
        coNP "yes" re-solves reuse a cached assumption-keyed SAT context
        (``stats.sat_incremental_hits`` / ``stats.sat_clauses_reused``)
        instead of re-encoding.  ``stats.incremental_hits`` counts
        decisions served from a maintained state;
        ``stats.full_resolves`` counts fallbacks (first sight of an
        instance and forced non-auto methods).  To chain updates, apply the
        same delta on the caller side (``delta.apply_to(db).commit()``)
        and pass the committed instance as the next call's *db* --
        value-equal instances hit the same maintained state.
        """
        start = time.perf_counter()
        if isinstance(delta, DeltaInstance):
            if delta.base is not db:
                raise ValueError(
                    "the DeltaInstance overlay must be rooted at db"
                )
            overlay = delta
        else:
            overlay = delta.apply_to(db)
        new_db = overlay.commit()
        self.stats.delta_solves += 1

        plan = self.compile(query)
        if (
            method == "auto"
            and isinstance(plan, CompiledGeneralizedQuery)
        ):
            return self._solve_delta_generalized(
                db, overlay, new_db, plan, start
            )
        incremental = (
            method == "auto"
            and isinstance(plan, CompiledQuery)
            and len(plan.word) > 0
        )
        if not incremental:
            result = (
                plan.solve(new_db, method=method, solve_word=self._solve_word)
                if isinstance(plan, CompiledGeneralizedQuery)
                else plan.solve(new_db, method=method)
            )
            result.details["incremental"] = False
            self.stats.full_resolves += 1
            self.stats.record(result, time.perf_counter() - start)
            return result

        key = self._cache_key(query)
        state = self.state_cache.take((key, db))
        fresh_state = state is None
        if fresh_state:
            state = FixpointState.compute(new_db, plan.word, tables=plan.tables)
        else:
            state.apply_delta(
                new_db, overlay.added_facts, overlay.removed_facts
            )

        is_c3 = plan.classification.c3
        result = certain_answer_incremental(
            state, require_c3=False, is_c3=is_c3
        )
        # Publish only after the answer has been read off the state: a
        # concurrent solve_delta checking the entry out would mutate it
        # in place while certain_answer_incremental iterates it.
        self.state_cache.put((key, new_db), state)
        if not is_c3 and result.answer:
            # C3-violating query and the pre-filter did not dismiss it:
            # the maintained "yes" is unsound, re-solve via SAT -- through
            # a maintained assumption-keyed context when one is cached, so
            # the re-solve toggles assumptions instead of re-encoding the
            # CNF and restarting the search.
            sat_key = ("satctx", key)
            ctx = self.state_cache.take((sat_key, db))
            fresh_ctx = ctx is None
            if fresh_ctx:
                ctx = IncrementalSatContext(new_db, plan.word)
            else:
                ctx.apply_delta(
                    new_db, overlay.added_facts, overlay.removed_facts
                )
            result = ctx.solve()
            self.state_cache.put((sat_key, new_db), ctx)
            result.details["prefilter"] = "fixpoint-incremental-yes"
            result.details["incremental"] = not fresh_ctx
            if fresh_ctx:
                self.stats.full_resolves += 1
            else:
                self.stats.sat_incremental_hits += 1
                self.stats.sat_clauses_reused += ctx.last_reused
                self.stats.incremental_hits += 1
        else:
            if not is_c3:
                # Keep any cached SAT context current across "no"
                # decisions, so the next "yes" re-solve still reuses it.
                sat_key = ("satctx", key)
                ctx = self.state_cache.take((sat_key, db))
                if ctx is not None:
                    ctx.apply_delta(
                        new_db, overlay.added_facts, overlay.removed_facts
                    )
                    self.state_cache.put((sat_key, new_db), ctx)
            result.details["incremental"] = not fresh_state
            if fresh_state:
                self.stats.full_resolves += 1
            else:
                self.stats.incremental_hits += 1
        result.details["complexity"] = str(plan.complexity)
        self.stats.record(result, time.perf_counter() - start)
        return result

    def _solve_delta_generalized(
        self,
        db: DatabaseInstance,
        overlay: DeltaInstance,
        new_db: DatabaseInstance,
        plan: CompiledGeneralizedQuery,
        start: float,
    ) -> CertaintyResult:
        """The maintained route for constant-carrying generalized queries.

        A :class:`~repro.solvers.generalized_solver.GeneralizedState`
        keeps the Lemma 27 segment verdicts and the Lemma 29 ``ext(q)``
        fixpoint alive between deltas; only segments whose alphabet the
        delta touches are re-checked, and the ``ext(q)`` decision folds
        the delta into its maintained :class:`FixpointState`.
        """
        key = self._cache_key(plan.query)
        state = self.state_cache.take((key, db))
        fresh_state = state is None
        inner_plan = (
            self.compile(plan.ext_word) if plan.ext_word is not None else None
        )
        if fresh_state:
            state = GeneralizedState.compute(new_db, plan, inner_plan)
        else:
            state.apply_delta(
                new_db, overlay.added_facts, overlay.removed_facts
            )
        result = state.result()
        self.state_cache.put((key, new_db), state)
        result.details["incremental"] = not fresh_state
        if fresh_state:
            self.stats.full_resolves += 1
        else:
            self.stats.incremental_hits += 1
        self.stats.record(result, time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Streaming batches
    # ------------------------------------------------------------------

    def solve_batch_iter(
        self,
        pairs: Iterable[Pair],
        method: str = "auto",
        workers: Optional[int] = None,
        strip_certificates: bool = False,
    ) -> Iterator[IndexedResult]:
        """Stream a workload: yield ``(index, result)`` as instances finish.

        The sequential path is a lazy generator over the cached plans (the
        first result is available before the last instance is touched);
        with ``workers > 1`` the batch fans out over a multiprocessing
        pool via ``imap_unordered``, so results arrive in completion
        order, not submission order.  Per-item results are identical to
        ``solve``; ``solve_batch`` remains the collect-everything variant.

        *strip_certificates* is for callers that only read ``.answer``:
        each worker calls :meth:`~repro.solvers.result.CertaintyResult.
        strip` before the result crosses the pool boundary, so "no"
        answers ship without their falsifying-repair certificate (lazy
        or otherwise).  Without it, lazy certificates stay *lazy* across
        the boundary -- they are picklable data carriers, and nothing is
        resolved at pickle time.
        """
        items = list(pairs)
        self.stats.batches += 1
        if workers is not None and workers > 1 and len(items) > 1:
            return self._iter_parallel(
                items, method, workers, strip_certificates
            )
        return self._iter_sequential(items, method, strip_certificates)

    def _iter_sequential(
        self, items: Sequence[Pair], method: str, strip_certificates: bool
    ) -> Iterator[IndexedResult]:
        plans: dict = {}
        for index, (db, query) in enumerate(items):
            start = time.perf_counter()
            if self.cache_size == 0:
                plan = self.compile(query)
            else:
                key = self._cache_key(query)
                plan = plans.get(key)
                if plan is None:
                    plan = plans[key] = self.compile(query)
            if isinstance(plan, CompiledGeneralizedQuery):
                result = plan.solve(db, method=method, solve_word=self._solve_word)
            else:
                result = plan.solve(db, method=method)
            if strip_certificates:
                result.strip()
            self.stats.record(result, time.perf_counter() - start)
            yield index, result

    def _iter_parallel(
        self,
        items: Sequence[Pair],
        method: str,
        workers: int,
        strip_certificates: bool,
    ) -> Iterator[IndexedResult]:
        global _WORKER_ENGINE
        # Warm the parent cache (one compile per distinct query) so
        # fork-started workers inherit the plans.
        distinct = {self._cache_key(query): query for _, query in items}
        for query in distinct.values():
            self.compile(query)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        payload = [
            (index, db, query, method, strip_certificates)
            for index, (db, query) in enumerate(items)
        ]
        self.stats.parallel_batches += 1
        _WORKER_ENGINE = self
        pool = context.Pool(processes=min(workers, len(items)))
        try:
            start = time.perf_counter()
            for index, result in pool.imap_unordered(
                _solve_one_indexed, payload
            ):
                self.stats.record(result, time.perf_counter() - start)
                yield index, result
                # Restart the clock only after the consumer resumes us, so
                # its per-result processing time is not billed to wall.
                start = time.perf_counter()
        finally:
            _WORKER_ENGINE = None
            pool.terminate()
            pool.join()


#: The process-wide engine behind ``certain_answer``.
_DEFAULT_ENGINE: Optional[CertaintyEngine] = None

#: The batching engine, visible to fork-started pool workers (carries the
#: pre-warmed plan cache across the fork; None outside a parallel batch).
_WORKER_ENGINE: Optional[CertaintyEngine] = None

_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> CertaintyEngine:
    """The process-wide engine behind ``certain_answer``."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        with _DEFAULT_ENGINE_LOCK:
            if _DEFAULT_ENGINE is None:
                _DEFAULT_ENGINE = CertaintyEngine()
    return _DEFAULT_ENGINE



def _solve_one_indexed(
    item: Tuple[int, DatabaseInstance, EngineQuery, str, bool]
) -> Tuple[int, CertaintyResult]:
    """Pool worker for the streaming batch: keeps the submission index so
    ``imap_unordered`` consumers can reassociate completion-order results.
    Strips certificates before pickling when the caller opted out of
    them; otherwise lazy certificates ship back still-lazy."""
    index, db, query, method, strip_certificates = item
    engine = _WORKER_ENGINE if _WORKER_ENGINE is not None else default_engine()
    result = engine.solve(db, query, method=method)
    if strip_certificates:
        result.strip()
    return index, result
