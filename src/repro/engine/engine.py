"""The batched certainty engine: compile once per query, solve per instance.

:class:`CertaintyEngine` owns an LRU cache of compiled plans keyed by the
query word (generalized queries by the query itself), per-engine counters
(:class:`EngineStats`), and two entry points:

* ``solve(db, query, method="auto")`` -- one instance through its cached
  plan;
* ``solve_batch(pairs, workers=N)`` -- a workload of ``(db, query)``
  pairs; with ``workers > 1`` the batch fans out over a multiprocessing
  pool (each worker process keeps its own plan cache, populated on first
  use via fork or re-compiled after spawn).

``certain_answer`` is a thin shim over the process-wide
:func:`default_engine`, so library users get plan caching for free;
construct a private engine to isolate caches or statistics.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import Counter, OrderedDict
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.db.instance import DatabaseInstance
from repro.engine.plan import (
    CompiledGeneralizedQuery,
    CompiledQuery,
    PlanQuery,
)
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.result import CertaintyResult
from repro.words.word import Word

EngineQuery = Union[str, Word, PathQuery, GeneralizedPathQuery]
Pair = Tuple[DatabaseInstance, EngineQuery]

#: Default number of plans kept by an engine's LRU cache.
DEFAULT_CACHE_SIZE = 128


class EngineStats:
    """Per-engine counters: compiles, cache hits, solves, wall time."""

    __slots__ = (
        "compiles",
        "cache_hits",
        "solves",
        "batches",
        "parallel_batches",
        "method_counts",
        "wall_seconds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiles = 0
        self.cache_hits = 0
        self.solves = 0
        self.batches = 0
        self.parallel_batches = 0
        self.method_counts: Counter = Counter()
        self.wall_seconds = 0.0

    def record(self, result: CertaintyResult, seconds: float) -> None:
        self.solves += 1
        self.method_counts[result.method] += 1
        self.wall_seconds += seconds

    def as_dict(self) -> dict:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "solves": self.solves,
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "method_counts": dict(self.method_counts),
            "wall_seconds": self.wall_seconds,
        }

    def __str__(self) -> str:
        methods = ", ".join(
            "{}={}".format(m, c) for m, c in sorted(self.method_counts.items())
        )
        return (
            "EngineStats(solves={}, compiles={}, cache_hits={}, "
            "wall={:.4f}s, methods: {})".format(
                self.solves,
                self.compiles,
                self.cache_hits,
                self.wall_seconds,
                methods or "-",
            )
        )


class CertaintyEngine:
    """A CERTAINTY(q) serving engine with a per-query plan cache.

    *cache_size* bounds the LRU plan cache; ``0`` disables caching (every
    solve recompiles -- the pre-engine behavior, kept measurable for the
    compile-once benchmarks).

    >>> engine = CertaintyEngine()
    >>> db = DatabaseInstance.from_triples(
    ...     [("R", "a", "a"), ("R", "a", "b"), ("R", "b", "a"), ("R", "b", "b")])
    >>> engine.solve(db, "RR").answer
    True
    >>> engine.solve(db, "RR").answer        # second call hits the plan cache
    True
    >>> engine.stats.cache_hits
    1
    """

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.cache_size = cache_size
        self.stats = EngineStats()
        self._plans: "OrderedDict[Hashable, object]" = OrderedDict()
        # Guards the LRU bookkeeping: certain_answer was thread-safe
        # before it routed through a shared engine, so it must stay so.
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _cache_key(query: EngineQuery) -> Hashable:
        if isinstance(query, GeneralizedPathQuery):
            if query.has_constants():
                return ("generalized", query)
            return ("word", query.word)
        if isinstance(query, PathQuery):
            return ("word", query.word)
        return ("word", Word.coerce(query))

    def compile(self, query: EngineQuery):
        """Return the cached plan for *query*, compiling on first use.

        The cache is keyed by the query word (generalized queries by the
        query itself), so ``"RRX"``, ``Word("RRX")`` and
        ``PathQuery("RRX")`` share one plan.
        """
        key = self._cache_key(query)
        with self._cache_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.cache_hits += 1
                return plan
        if isinstance(query, GeneralizedPathQuery) and query.has_constants():
            plan = CompiledGeneralizedQuery(query)
        else:
            plan = CompiledQuery(key[1])
        with self._cache_lock:
            self.stats.compiles += 1
            if self.cache_size > 0:
                self._plans[key] = plan
                while len(self._plans) > self.cache_size:
                    self._plans.popitem(last=False)
        return plan

    def cache_info(self) -> dict:
        return {
            "size": len(self._plans),
            "max_size": self.cache_size,
            "hits": self.stats.cache_hits,
            "compiles": self.stats.compiles,
        }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._plans.clear()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        db: DatabaseInstance,
        query: EngineQuery,
        method: str = "auto",
    ) -> CertaintyResult:
        """Decide whether every repair of *db* satisfies *query*."""
        start = time.perf_counter()
        plan = self.compile(query)
        if isinstance(plan, CompiledGeneralizedQuery):
            result = plan.solve(db, method=method, solve_word=self._solve_word)
        else:
            result = plan.solve(db, method=method)
        self.stats.record(result, time.perf_counter() - start)
        return result

    def _solve_word(self, db: DatabaseInstance, word: Word, method: str):
        """Inner dispatch for generalized plans (cached, not re-counted)."""
        plan = self.compile(word)
        return plan.solve(db, method=method)

    def solve_batch(
        self,
        pairs: Iterable[Pair],
        method: str = "auto",
        workers: Optional[int] = None,
    ) -> List[CertaintyResult]:
        """Solve a workload of ``(db, query)`` pairs, in order.

        With ``workers`` > 1 the batch fans out over a multiprocessing
        pool; results are identical to the sequential path (each item is
        independent), so batch mode is purely a throughput knob.
        """
        items = list(pairs)
        self.stats.batches += 1
        if workers is not None and workers > 1 and len(items) > 1:
            return self._solve_batch_parallel(items, method, workers)
        return self._solve_batch_sequential(items, method)

    def _solve_batch_sequential(
        self, items: Sequence[Pair], method: str
    ) -> List[CertaintyResult]:
        start = time.perf_counter()
        # One plan lookup per distinct query for the whole batch -- unless
        # caching is disabled, whose contract is one compile per solve.
        plans: dict = {}
        results: List[CertaintyResult] = []
        for db, query in items:
            if self.cache_size == 0:
                plan = self.compile(query)
            else:
                key = self._cache_key(query)
                plan = plans.get(key)
                if plan is None:
                    plan = plans[key] = self.compile(query)
            if isinstance(plan, CompiledGeneralizedQuery):
                result = plan.solve(db, method=method, solve_word=self._solve_word)
            else:
                result = plan.solve(db, method=method)
            results.append(result)
        elapsed = time.perf_counter() - start
        self.stats.wall_seconds += elapsed
        self.stats.solves += len(results)
        for result in results:
            self.stats.method_counts[result.method] += 1
        return results

    def _solve_batch_parallel(
        self, items: Sequence[Pair], method: str, workers: int
    ) -> List[CertaintyResult]:
        global _WORKER_ENGINE
        start = time.perf_counter()
        # Warm the parent cache (one compile per distinct query) so
        # fork-started workers inherit the plans.
        distinct = {self._cache_key(query): query for _, query in items}
        for query in distinct.values():
            self.compile(query)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        payload = [(db, query, method) for db, query in items]
        _WORKER_ENGINE = self
        try:
            with context.Pool(processes=min(workers, len(items))) as pool:
                results = pool.map(_solve_one, payload)
        finally:
            _WORKER_ENGINE = None
        elapsed = time.perf_counter() - start
        self.stats.parallel_batches += 1
        self.stats.wall_seconds += elapsed
        self.stats.solves += len(results)
        for result in results:
            self.stats.method_counts[result.method] += 1
        return results


#: The process-wide engine behind ``certain_answer``.
_DEFAULT_ENGINE: Optional[CertaintyEngine] = None

#: The batching engine, visible to fork-started pool workers (carries the
#: pre-warmed plan cache across the fork; None outside a parallel batch).
_WORKER_ENGINE: Optional[CertaintyEngine] = None

_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> CertaintyEngine:
    """The process-wide engine behind ``certain_answer``."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        with _DEFAULT_ENGINE_LOCK:
            if _DEFAULT_ENGINE is None:
                _DEFAULT_ENGINE = CertaintyEngine()
    return _DEFAULT_ENGINE


def _solve_one(item: Tuple[DatabaseInstance, EngineQuery, str]) -> CertaintyResult:
    """Pool worker: route one pair through the inherited batch engine
    (fork start method) or the worker's own default engine (spawn)."""
    db, query, method = item
    engine = _WORKER_ENGINE if _WORKER_ENGINE is not None else default_engine()
    return engine.solve(db, query, method=method)
