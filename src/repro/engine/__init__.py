"""Compiled query plans and the batched certainty engine.

The per-query work of CERTAINTY(q) -- Theorem 3 classification, the
Figure 5 prefix tables, Claim 5 program generation, automata and FO
rewritings -- is polynomial in ``|q|`` and independent of the data, so a
serving system should pay it once per query.  This package separates that
compilation (:class:`CompiledQuery`) from per-instance execution
(:class:`CertaintyEngine`), which batches instances through cached plans:

>>> from repro.engine import CertaintyEngine
>>> from repro.db.instance import DatabaseInstance
>>> engine = CertaintyEngine()
>>> db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 0)])
>>> [r.answer for r in engine.solve_batch([(db, "RR"), (db, "RRR")])]
[True, True]
"""

from repro.engine.engine import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_STATE_CACHE_SIZE,
    CertaintyEngine,
    EngineStats,
    default_engine,
)
from repro.engine.plan import (
    CompiledGeneralizedQuery,
    CompiledQuery,
    SatSkeleton,
    conp_solve,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_STATE_CACHE_SIZE",
    "CertaintyEngine",
    "EngineStats",
    "default_engine",
    "CompiledGeneralizedQuery",
    "CompiledQuery",
    "SatSkeleton",
    "conp_solve",
]
