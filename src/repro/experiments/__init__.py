"""Experiment harness: timing, tables, and the per-experiment drivers.

The drivers return plain data (lists of row dicts) so that the same code
backs the runnable examples, EXPERIMENTS.md, and the pytest benchmarks.
"""

from repro.experiments.harness import Table, time_call

__all__ = ["Table", "time_call"]
