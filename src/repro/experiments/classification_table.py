"""E2 driver: the classification table over the paper's query catalog."""

from __future__ import annotations

from typing import Dict, List

from repro.classification.classifier import classify
from repro.experiments.harness import Table
from repro.workloads.queries import PAPER_QUERY_CLASSES


def classification_rows() -> List[Dict[str, object]]:
    """One row per catalog query: conditions, class, expected class."""
    rows = []
    for text, expected in PAPER_QUERY_CLASSES.items():
        result = classify(text)
        rows.append(
            {
                "query": text,
                "c1": result.c1,
                "c2": result.c2,
                "c3": result.c3,
                "complexity": str(result.complexity),
                "expected": str(expected),
                "matches_paper": result.complexity is expected,
            }
        )
    return rows


def classification_table(markdown: bool = False) -> str:
    """The table as rendered text."""
    table = Table(["query", "C1", "C2", "C3", "class", "paper", "match"])
    for row in classification_rows():
        table.add_row(
            [
                row["query"],
                "+" if row["c1"] else "-",
                "+" if row["c2"] else "-",
                "+" if row["c3"] else "-",
                row["complexity"],
                row["expected"],
                "yes" if row["matches_paper"] else "NO",
            ]
        )
    return table.render(markdown=markdown)
