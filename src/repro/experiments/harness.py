"""Experiment utilities: timing, text tables, engine throughput probes."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def time_call(fn: Callable[[], T], repeats: int = 1) -> Tuple[T, float]:
    """Run *fn* *repeats* times; return ``(last_result, best_seconds)``."""
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


class Table:
    """A fixed-column text table (for example scripts and EXPERIMENTS.md).

    >>> t = Table(["query", "class"])
    >>> t.add_row(["RRX", "NL-complete"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    query | class
    ----- | -----------
    RRX   | NL-complete
    """

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                "expected {} values, got {}".format(len(self.columns), len(values))
            )
        self.rows.append([str(v) for v in values])

    def render(self, markdown: bool = False) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        lines = [fmt(self.columns)]
        separator = " | ".join("-" * w for w in widths)
        if markdown:
            lines[0] = "| " + fmt(self.columns) + " |"
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
            lines += ["| " + fmt(row) + " |" for row in self.rows]
            return "\n".join(lines)
        lines.append(separator)
        lines += [fmt(row) for row in self.rows]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def per_call_reference(db, query, method: str = "auto"):
    """The pre-engine ``certain_answer``: re-classify and dispatch per call.

    Kept as the measurable baseline for the compile-once benchmarks: every
    call re-runs the Theorem 3 classification and the per-query condition
    checks inside the stock solvers, exactly as ``certain_answer`` did
    before it routed through the plan cache.
    """
    from repro.classification.classifier import ComplexityClass, classify
    from repro.datalog.cqa_program import UnsupportedQuery
    from repro.engine.plan import conp_solve
    from repro.solvers.brute_force import certain_answer_brute_force
    from repro.solvers.fixpoint import certain_answer_fixpoint
    from repro.solvers.fo_solver import certain_answer_fo
    from repro.solvers.nl_solver import certain_answer_nl
    from repro.solvers.sat_encoding import certain_answer_sat
    from repro.words.word import Word

    q = Word.coerce(query)
    if method == "fo":
        return certain_answer_fo(db, q)
    if method == "nl":
        return certain_answer_nl(db, q)
    if method == "fixpoint":
        return certain_answer_fixpoint(db, q)
    if method == "sat":
        return certain_answer_sat(db, q)
    if method == "brute_force":
        return certain_answer_brute_force(db, q)
    if method != "auto":
        raise ValueError("unknown method {!r}".format(method))
    classification = classify(q)
    complexity = classification.complexity
    if complexity is ComplexityClass.FO:
        result = certain_answer_fo(db, q)
    elif complexity is ComplexityClass.NL_COMPLETE:
        try:
            result = certain_answer_nl(db, q)
        except UnsupportedQuery:
            result = certain_answer_fixpoint(db, q)
            result.details["nl_fallback"] = True
    elif complexity is ComplexityClass.PTIME_COMPLETE:
        result = certain_answer_fixpoint(db, q)
    else:
        result = conp_solve(db, q)
    result.details["complexity"] = str(complexity)
    return result


def throughput_comparison(
    queries: Sequence[object],
    instances: Sequence[object],
    repeats: int = 3,
    method: str = "auto",
    workers: Optional[int] = None,
    engine=None,
) -> Dict[str, object]:
    """Per-call baseline vs compile-once engine on the ``queries x
    instances`` grid.

    Returns the pair count, best-of-*repeats* wall times for both paths, the
    speedup ratio, and whether every answer agreed -- the measurement behind
    ``benchmarks/test_bench_engine.py`` and the scaling reports.
    """
    from repro.engine import CertaintyEngine

    pairs = [(db, q) for q in queries for db in instances]
    baseline, per_call_seconds = time_call(
        lambda: [per_call_reference(db, q, method=method) for db, q in pairs],
        repeats=repeats,
    )
    engine = engine if engine is not None else CertaintyEngine()
    for q in queries:
        engine.compile(q)
    batched, engine_seconds = time_call(
        lambda: engine.solve_batch(pairs, method=method, workers=workers),
        repeats=repeats,
    )
    return {
        "pairs": len(pairs),
        "per_call_seconds": per_call_seconds,
        "engine_seconds": engine_seconds,
        "speedup": per_call_seconds / engine_seconds if engine_seconds else float("inf"),
        "agrees": all(
            b.answer == e.answer for b, e in zip(baseline, batched)
        ),
    }
