"""Small experiment utilities: wall-clock timing and text tables."""

from __future__ import annotations

import time
from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def time_call(fn: Callable[[], T], repeats: int = 1) -> Tuple[T, float]:
    """Run *fn* *repeats* times; return ``(last_result, best_seconds)``."""
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


class Table:
    """A fixed-column text table (for example scripts and EXPERIMENTS.md).

    >>> t = Table(["query", "class"])
    >>> t.add_row(["RRX", "NL-complete"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    query | class
    ----- | -----------
    RRX   | NL-complete
    """

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                "expected {} values, got {}".format(len(self.columns), len(values))
            )
        self.rows.append([str(v) for v in values])

    def render(self, markdown: bool = False) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        lines = [fmt(self.columns)]
        separator = " | ".join("-" * w for w in widths)
        if markdown:
            lines[0] = "| " + fmt(self.columns) + " |"
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
            lines += ["| " + fmt(row) + " |" for row in self.rows]
            return "\n".join(lines)
        lines.append(separator)
        lines += [fmt(row) for row in self.rows]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
