"""E5/E11 drivers: solver scaling sweeps returning plain row data."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.db.repairs import count_repairs
from repro.experiments.harness import time_call
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.sat_encoding import certain_answer_sat
from repro.workloads.generators import chain_instance, planted_instance
from repro.words.word import WordLike


def fixpoint_scaling_rows(
    query: WordLike,
    sizes: Sequence[int],
    seed: int = 0,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Fixpoint runtime vs instance size (E5)."""
    rows = []
    for size in sizes:
        rng = random.Random(seed * 1_000_003 + size)
        db = planted_instance(
            rng,
            query,
            n_constants=max(8, size // 8),
            n_paths=size // 8 + 1,
            n_noise_facts=size // 2,
            conflict_rate=0.4,
        )
        result, seconds = time_call(
            lambda db=db: certain_answer_fixpoint(db, query), repeats=repeats
        )
        rows.append(
            {
                "query": str(query),
                "facts": len(db),
                "conflicts": len(db.conflicting_blocks()),
                "seconds": seconds,
                "answer": result.answer,
            }
        )
    return rows


def crossover_rows(
    query: WordLike = "RRX",
    repetitions: Sequence[int] = (2, 4, 6, 8),
    conflict_every: int = 3,
    brute_force_repair_limit: Optional[int] = 200_000,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Fixpoint vs SAT vs brute force on conflicted chains (E11)."""
    rows = []
    for reps in repetitions:
        db = chain_instance(query, repetitions=reps, conflict_every=conflict_every)
        repairs = count_repairs(db)
        fix_result, fix_seconds = time_call(
            lambda db=db: certain_answer_fixpoint(db, query), repeats=repeats
        )
        sat_result, sat_seconds = time_call(
            lambda db=db: certain_answer_sat(db, query), repeats=repeats
        )
        row: Dict[str, object] = {
            "facts": len(db),
            "conflicts": len(db.conflicting_blocks()),
            "repairs": repairs,
            "fixpoint_seconds": fix_seconds,
            "sat_seconds": sat_seconds,
            "answer": fix_result.answer,
        }
        assert sat_result.answer == fix_result.answer
        if brute_force_repair_limit is None or repairs <= brute_force_repair_limit:
            brute_result, brute_seconds = time_call(
                lambda db=db: certain_answer_brute_force(
                    db, query, repair_limit=None
                )
            )
            assert brute_result.answer == fix_result.answer
            row["brute_seconds"] = brute_seconds
        else:
            row["brute_seconds"] = None
        rows.append(row)
    return rows
