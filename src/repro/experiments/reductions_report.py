"""E8/E9/E10 driver: reduction agreement sweeps against ground truth."""

from __future__ import annotations

import random
from typing import Dict, List

from repro.circuits.circuit import random_assignment, random_monotone_circuit
from repro.cnf.formula import random_ksat
from repro.graphs.digraph import has_directed_path
from repro.graphs.generators import random_dag
from repro.reductions.mcvp import mcvp_reduction
from repro.reductions.reachability import reachability_reduction
from repro.reductions.sat_reduction import sat_reduction
from repro.solvers.certainty import certain_answer


def reachability_agreement(
    query: str = "RRX", trials: int = 20, seed: int = 0
) -> Dict[str, object]:
    """E9: reachability reduction vs graph BFS ground truth."""
    rng = random.Random(seed)
    agree = 0
    for _ in range(trials):
        n = rng.randint(3, 7)
        graph = random_dag(n, 0.3, rng)
        source, target = 0, n - 1
        reduction = reachability_reduction(query, graph, source, target)
        expected = reduction.expected_certainty(
            has_directed_path(graph, source, target)
        )
        agree += certain_answer(reduction.instance, query).answer == expected
    return {"experiment": "E9", "query": query, "trials": trials, "agree": agree}


def sat_agreement(
    query: str = "ARRX", trials: int = 20, seed: int = 0
) -> Dict[str, object]:
    """E8: SAT reduction vs DPLL ground truth."""
    rng = random.Random(seed)
    agree = 0
    for _ in range(trials):
        formula = random_ksat(rng.randint(3, 5), rng.randint(2, 10), 3, rng)
        reduction = sat_reduction(query, formula)
        expected = reduction.expected_certainty(formula.is_satisfiable())
        agree += certain_answer(reduction.instance, query).answer == expected
    return {"experiment": "E8", "query": query, "trials": trials, "agree": agree}


def mcvp_agreement(
    query: str = "RXRYRY", trials: int = 20, seed: int = 0
) -> Dict[str, object]:
    """E10: MCVP reduction vs circuit-evaluation ground truth."""
    rng = random.Random(seed)
    agree = 0
    for _ in range(trials):
        circuit = random_monotone_circuit(rng.randint(2, 4), rng.randint(2, 8), rng)
        assignment = random_assignment(circuit.inputs, rng)
        reduction = mcvp_reduction(query, circuit, assignment)
        expected = reduction.expected_certainty(circuit.value(assignment))
        agree += certain_answer(reduction.instance, query).answer == expected
    return {"experiment": "E10", "query": query, "trials": trials, "agree": agree}


def full_report(trials: int = 20, seed: int = 0) -> List[Dict[str, object]]:
    return [
        reachability_agreement(trials=trials, seed=seed),
        sat_agreement(trials=trials, seed=seed),
        mcvp_agreement(trials=trials, seed=seed),
    ]
