"""A minimal directed-graph type with reachability.

The REACHABILITY problem (given a digraph and two vertices, is there a
directed path?) is the canonical NL-complete problem the Lemma 18
reduction starts from; it stays NL-complete on acyclic graphs, which is
what the reduction requires and what the generators produce.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class DiGraph:
    """A simple directed graph (no parallel edges)."""

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._vertices: Set[Vertex] = set(vertices)
        self._successors: Dict[Vertex, Set[Vertex]] = {}
        for source, target in edges:
            self.add_edge(source, target)

    def add_vertex(self, vertex: Vertex) -> None:
        self._vertices.add(vertex)

    def add_edge(self, source: Vertex, target: Vertex) -> None:
        self._vertices.add(source)
        self._vertices.add(target)
        self._successors.setdefault(source, set()).add(target)

    @property
    def vertices(self) -> Set[Vertex]:
        return set(self._vertices)

    @property
    def edges(self) -> List[Edge]:
        return sorted(
            (s, t)
            for s, targets in self._successors.items()
            for t in targets
        )

    def successors(self, vertex: Vertex) -> Set[Vertex]:
        return set(self._successors.get(vertex, ()))

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def is_acyclic(self) -> bool:
        """Kahn's algorithm: true iff the graph has no directed cycle."""
        indegree: Dict[Vertex, int] = {v: 0 for v in self._vertices}
        for _, targets in self._successors.items():
            for target in targets:
                indegree[target] += 1
        queue = deque(v for v, d in indegree.items() if d == 0)
        seen = 0
        while queue:
            vertex = queue.popleft()
            seen += 1
            for target in self._successors.get(vertex, ()):  # noqa: B020
                indegree[target] -= 1
                if indegree[target] == 0:
                    queue.append(target)
        return seen == len(self._vertices)


def has_directed_path(graph: DiGraph, source: Vertex, target: Vertex) -> bool:
    """BFS reachability: is there a directed path from *source* to *target*?

    The empty path counts: ``has_directed_path(g, v, v)`` is ``True``.
    """
    if source == target:
        return source in graph
    seen = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False
