"""Directed-graph substrate for the NL-hardness reduction (Lemma 18)."""

from repro.graphs.digraph import DiGraph, has_directed_path
from repro.graphs.generators import layered_dag, random_dag

__all__ = ["DiGraph", "has_directed_path", "layered_dag", "random_dag"]
