"""Random DAG generators for the reachability workloads."""

from __future__ import annotations

import random
from typing import Tuple

from repro.graphs.digraph import DiGraph


def random_dag(
    n_vertices: int, edge_probability: float, rng: random.Random
) -> DiGraph:
    """A random DAG on vertices ``0..n-1`` with edges oriented forward.

    Each pair ``(i, j)`` with ``i < j`` gets the edge ``i -> j`` with
    probability *edge_probability*, so the result is acyclic by
    construction.
    """
    graph = DiGraph(vertices=range(n_vertices))
    for i in range(n_vertices):
        for j in range(i + 1, n_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(i, j)
    return graph


def layered_dag(
    n_layers: int, width: int, rng: random.Random, density: float = 0.5
) -> Tuple[DiGraph, int, int]:
    """A layered DAG plus designated source and sink.

    Vertices are ``(layer, slot)`` pairs flattened to ints; edges go from
    each layer to the next with the given density.  Returns
    ``(graph, source, target)`` where the source is in layer 0 and the
    target in the last layer -- the reachability question is nontrivial
    with probability controlled by *density*.
    """

    def vid(layer: int, slot: int) -> int:
        return layer * width + slot

    graph = DiGraph(vertices=range(n_layers * width))
    for layer in range(n_layers - 1):
        for a in range(width):
            for b in range(width):
                if rng.random() < density:
                    graph.add_edge(vid(layer, a), vid(layer + 1, b))
    source = vid(0, rng.randrange(width))
    target = vid(n_layers - 1, rng.randrange(width))
    return graph, source, target
