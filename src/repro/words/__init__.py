"""Combinatorics of words over the alphabet of relation names.

Path queries are represented as *words* (Section 2 of the paper): the path
query ``q = R1(x1,x2), ..., Rk(xk,xk+1)`` is identified with the word
``R1 R2 ... Rk``.  This subpackage provides the word type together with the
word-combinatorial toolkit the paper relies on:

* :mod:`repro.words.word` -- the :class:`Word` value type;
* :mod:`repro.words.factors` -- prefixes, suffixes, factors, occurrences and
  the border/periodicity facts behind Lemma 22;
* :mod:`repro.words.rewind` -- the *rewinding* operator and exploration of
  the language ``L↬(q)`` (Definition 4);
* :mod:`repro.words.episodes` -- *episodes* and the left-/right-repeating
  analysis of Appendix A (Definitions 19-21, Lemmas 23-24).
"""

from repro.words.word import Word
from repro.words.factors import (
    factors,
    is_factor,
    is_prefix,
    is_proper_prefix,
    is_proper_suffix,
    is_self_join_free,
    is_suffix,
    occurrences,
    prefixes,
    proper_prefixes,
    suffixes,
)
from repro.words.rewind import (
    enumerate_language,
    is_closed_under_rewinding_prefix,
    is_closed_under_rewinding_factor,
    rewind_at,
    rewindings,
)
from repro.words.episodes import (
    Episode,
    episodes,
    is_left_repeating,
    is_right_repeating,
)

__all__ = [
    "Word",
    "factors",
    "is_factor",
    "is_prefix",
    "is_proper_prefix",
    "is_proper_suffix",
    "is_self_join_free",
    "is_suffix",
    "occurrences",
    "prefixes",
    "proper_prefixes",
    "suffixes",
    "enumerate_language",
    "is_closed_under_rewinding_prefix",
    "is_closed_under_rewinding_factor",
    "rewind_at",
    "rewindings",
    "Episode",
    "episodes",
    "is_left_repeating",
    "is_right_repeating",
]
