"""The :class:`Word` value type: a word over the alphabet of relation names.

The paper (Section 2) represents a path query losslessly as the word of its
relation names.  Relation names in the paper are single uppercase letters
(``R``, ``S``, ``X`` ...), and the compact string notation ``"RRX"`` denotes
the word with symbols ``R``, ``R``, ``X``.  This module supports both the
compact single-letter notation and arbitrary identifier symbols (useful for
the fresh ``N`` relation of Definition 22, written e.g. ``Word(["R", "N1"])``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

WordLike = Union["Word", str, Sequence[str]]


class Word:
    """An immutable word over the alphabet of relation names.

    A :class:`Word` behaves like an immutable sequence of symbol strings and
    supports slicing, concatenation, repetition, hashing and comparison.

    >>> w = Word("RRX")
    >>> len(w), w[0], w[1:]
    (3, 'R', Word('RX'))
    >>> w + Word("R") == Word("RRXR")
    True
    >>> Word("RX") * 2
    Word('RXRX')
    """

    __slots__ = ("_symbols",)

    def __init__(self, symbols: WordLike = ()) -> None:
        if isinstance(symbols, Word):
            self._symbols: Tuple[str, ...] = symbols._symbols
        elif isinstance(symbols, str):
            # Compact notation: each character is one relation name.
            self._symbols = tuple(symbols)
        else:
            self._symbols = tuple(str(s) for s in symbols)
        for symbol in self._symbols:
            if not symbol:
                raise ValueError("relation names must be nonempty strings")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def epsilon(cls) -> "Word":
        """The empty word ``ε``."""
        return cls(())

    @classmethod
    def coerce(cls, value: WordLike) -> "Word":
        """Return *value* as a :class:`Word`, accepting strings and sequences."""
        if isinstance(value, Word):
            return value
        return cls(value)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    @property
    def symbols(self) -> Tuple[str, ...]:
        """The underlying tuple of relation names."""
        return self._symbols

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Word(self._symbols[index])
        return self._symbols[index]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbols

    def __bool__(self) -> bool:
        return bool(self._symbols)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def __add__(self, other: WordLike) -> "Word":
        return Word(self._symbols + Word.coerce(other)._symbols)

    def __radd__(self, other: WordLike) -> "Word":
        return Word(Word.coerce(other)._symbols + self._symbols)

    def __mul__(self, times: int) -> "Word":
        if times < 0:
            raise ValueError("cannot repeat a word a negative number of times")
        return Word(self._symbols * times)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Equality / hashing / ordering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Word):
            return self._symbols == other._symbols
        if isinstance(other, (str, tuple, list)):
            return self._symbols == Word.coerce(other)._symbols
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Word", self._symbols))

    def __lt__(self, other: "Word") -> bool:
        # Length-lexicographic order; handy for canonical enumeration.
        other = Word.coerce(other)
        return (len(self), self._symbols) < (len(other), other._symbols)

    # ------------------------------------------------------------------
    # Accessors used throughout the paper
    # ------------------------------------------------------------------

    def first(self) -> str:
        """``first(u)``: the first symbol (Definition 2). Requires nonempty."""
        if not self._symbols:
            raise ValueError("first() of the empty word is undefined")
        return self._symbols[0]

    def last(self) -> str:
        """``last(u)``: the last symbol (Definition 2). Requires nonempty."""
        if not self._symbols:
            raise ValueError("last() of the empty word is undefined")
        return self._symbols[-1]

    def alphabet(self) -> frozenset:
        """``symbols(q)``: the set of symbols occurring in the word (Def. 21)."""
        return frozenset(self._symbols)

    def positions_of(self, symbol: str) -> Tuple[int, ...]:
        """All positions (0-based) where *symbol* occurs."""
        return tuple(i for i, s in enumerate(self._symbols) if s == symbol)

    def count(self, symbol: str) -> int:
        """Number of occurrences of *symbol*."""
        return self._symbols.count(symbol)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def is_compact(self) -> bool:
        """True if every symbol is a single character (paper notation)."""
        return all(len(s) == 1 for s in self._symbols)

    def __str__(self) -> str:
        if self.is_compact():
            return "".join(self._symbols)
        return " ".join(self._symbols) if self._symbols else "ε"

    def __repr__(self) -> str:
        if self.is_compact():
            return "Word({!r})".format("".join(self._symbols))
        return "Word({!r})".format(list(self._symbols))


def concat(parts: Iterable[WordLike]) -> Word:
    """Concatenate an iterable of word-likes into a single :class:`Word`."""
    result: Tuple[str, ...] = ()
    for part in parts:
        result += Word.coerce(part).symbols
    return Word(result)


EPSILON = Word.epsilon()
