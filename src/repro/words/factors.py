"""Prefixes, suffixes, factors and occurrences of words.

These are the basic notions the syntactic conditions C1-C3 (Section 3) and
the regex characterizations of Section 4 are phrased in:

* a *prefix* / *suffix* of ``q`` is an initial / final segment of ``q``;
* a *factor* of ``q`` is a contiguous segment (substring);
* a word is *self-join-free* if no symbol occurs twice in it;
* Lemma 22 (Appendix A.1) relates borders to periodicity: if ``w`` is a
  prefix of ``u·w`` with ``u ≠ ε`` then ``w`` is a prefix of ``u^|w|``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.words.word import Word, WordLike


def is_prefix(u: WordLike, w: WordLike) -> bool:
    """True iff *u* is a prefix of *w* (``u ≤ w`` in the paper's notation)."""
    u = Word.coerce(u)
    w = Word.coerce(w)
    return w.symbols[: len(u)] == u.symbols


def is_proper_prefix(u: WordLike, w: WordLike) -> bool:
    """True iff *u* is a prefix of *w* and ``u ≠ w`` (``u < w``)."""
    u = Word.coerce(u)
    w = Word.coerce(w)
    return len(u) < len(w) and is_prefix(u, w)


def is_suffix(u: WordLike, w: WordLike) -> bool:
    """True iff *u* is a suffix of *w*."""
    u = Word.coerce(u)
    w = Word.coerce(w)
    if len(u) == 0:
        return True
    return w.symbols[-len(u):] == u.symbols


def is_proper_suffix(u: WordLike, w: WordLike) -> bool:
    """True iff *u* is a suffix of *w* and ``u ≠ w``."""
    u = Word.coerce(u)
    w = Word.coerce(w)
    return len(u) < len(w) and is_suffix(u, w)


def is_factor(u: WordLike, w: WordLike) -> bool:
    """True iff *u* occurs as a contiguous factor of *w*."""
    u = Word.coerce(u)
    w = Word.coerce(w)
    if len(u) > len(w):
        return False
    target = u.symbols
    haystack = w.symbols
    span = len(w) - len(u)
    return any(haystack[i: i + len(u)] == target for i in range(span + 1))


def occurrences(u: WordLike, w: WordLike) -> Tuple[int, ...]:
    """All offsets at which *u* occurs as a factor of *w* (Definition 20).

    ``u`` has *offset* ``n`` in ``w`` if ``w = p·u·s`` with ``|p| = n``.
    """
    u = Word.coerce(u)
    w = Word.coerce(w)
    if len(u) > len(w):
        return ()
    target = u.symbols
    haystack = w.symbols
    span = len(w) - len(u)
    return tuple(i for i in range(span + 1) if haystack[i: i + len(u)] == target)


def prefixes(w: WordLike) -> List[Word]:
    """All prefixes of *w*, from ``ε`` up to ``w`` itself, shortest first."""
    w = Word.coerce(w)
    return [w[:i] for i in range(len(w) + 1)]


def proper_prefixes(w: WordLike) -> List[Word]:
    """All prefixes of *w* excluding *w* itself."""
    w = Word.coerce(w)
    return [w[:i] for i in range(len(w))]


def suffixes(w: WordLike) -> List[Word]:
    """All suffixes of *w*, from ``ε`` up to ``w`` itself, shortest first."""
    w = Word.coerce(w)
    return [w[len(w) - i:] for i in range(len(w) + 1)]


def factors(w: WordLike) -> List[Word]:
    """All distinct factors of *w*, including ``ε``, in length-lex order."""
    w = Word.coerce(w)
    seen = {Word.epsilon()}
    for i in range(len(w)):
        for j in range(i + 1, len(w) + 1):
            seen.add(w[i:j])
    return sorted(seen)


def is_self_join_free(w: WordLike) -> bool:
    """True iff no symbol occurs more than once in *w* (Section 2)."""
    w = Word.coerce(w)
    return len(set(w.symbols)) == len(w)


def self_join_pairs(w: WordLike) -> Iterator[Tuple[int, int]]:
    """All position pairs ``(i, j)`` with ``i < j`` and ``w[i] == w[j]``.

    Each pair is a decomposition ``w = u·R·v·R·z`` with ``u = w[:i]``,
    ``R = w[i]``, ``v = w[i+1:j]``, ``z = w[j+1:]`` -- the decompositions
    quantified over in conditions C1 and C3.
    """
    w = Word.coerce(w)
    for i in range(len(w)):
        for j in range(i + 1, len(w)):
            if w[i] == w[j]:
                yield (i, j)


def consecutive_triples(w: WordLike) -> Iterator[Tuple[int, int, int]]:
    """All triples ``(i, j, k)`` of *consecutive* occurrences of a symbol.

    ``i < j < k`` are positions carrying the same symbol ``R`` such that
    ``R`` does not occur strictly between ``i`` and ``j`` nor strictly
    between ``j`` and ``k``.  These are the decompositions
    ``w = u·R·v1·R·v2·R·z`` quantified over in the second part of C2.
    """
    w = Word.coerce(w)
    by_symbol = {}
    for pos, symbol in enumerate(w.symbols):
        by_symbol.setdefault(symbol, []).append(pos)
    for positions in by_symbol.values():
        for a in range(len(positions) - 2):
            yield (positions[a], positions[a + 1], positions[a + 2])


def has_border_period(w: WordLike, u: WordLike) -> bool:
    """Check the periodicity conclusion of Lemma 22.

    Lemma 22: if ``w`` is a prefix of ``u·w`` with ``u ≠ ε``, then ``w`` is a
    prefix of ``u^|w|``.  This helper checks whether ``w`` is a prefix of a
    sufficiently high power of ``u``.
    """
    w = Word.coerce(w)
    u = Word.coerce(u)
    if not u:
        raise ValueError("period word u must be nonempty")
    power = u * (len(w) // len(u) + 1)
    return is_prefix(w, power)
