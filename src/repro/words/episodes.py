"""Episodes and the repeating lemma (Appendix A, Definitions 19-21).

An *episode* of a word ``q`` is a factor of the form ``R·u·R`` in which the
symbol ``R`` does not occur in ``u``.  Writing ``q = ℓ·RuR·r`` for a concrete
occurrence:

* the episode is *right-repeating* if ``r`` is a prefix of ``(uR)^|r|``;
* the episode is *left-repeating* if ``ℓ`` is a suffix of ``(Ru)^|ℓ|``.

Lemma 23 (repeating lemma): if ``q`` satisfies C3 then every episode of
``q`` is left-repeating or right-repeating.  Lemma 24: the right-most
left-repeating episode ``LℓL`` has ``Lℓ`` self-join-free.  These structural
facts drive the regex characterization of C2/C3 (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.words.factors import is_prefix, is_suffix
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class Episode:
    """An occurrence of an episode ``R·u·R`` inside a word ``q = ℓ·RuR·r``.

    Attributes
    ----------
    word:
        The word ``q`` the episode occurs in.
    start:
        Position of the left ``R``.
    end:
        Position of the right ``R`` (so the factor is ``word[start:end+1]``).
    """

    word: Word
    start: int
    end: int

    @property
    def symbol(self) -> str:
        """The repeated symbol ``R``."""
        return self.word[self.start]

    @property
    def inner(self) -> Word:
        """The word ``u`` strictly between the two occurrences of ``R``."""
        return self.word[self.start + 1: self.end]

    @property
    def left_context(self) -> Word:
        """The word ``ℓ`` preceding the episode."""
        return self.word[: self.start]

    @property
    def right_context(self) -> Word:
        """The word ``r`` following the episode."""
        return self.word[self.end + 1:]

    @property
    def factor(self) -> Word:
        """The episode factor ``R·u·R`` itself."""
        return self.word[self.start: self.end + 1]

    def __str__(self) -> str:
        return "{}[{}..{}]={}".format(self.word, self.start, self.end, self.factor)


def episodes(q: WordLike) -> List[Episode]:
    """All episode occurrences of *q*, ordered by start position.

    An episode pairs two *consecutive* occurrences of the same symbol (no
    occurrence of that symbol strictly in between, by definition).
    """
    q = Word.coerce(q)
    found: List[Episode] = []
    last_seen = {}
    for pos, symbol in enumerate(q.symbols):
        if symbol in last_seen:
            found.append(Episode(q, last_seen[symbol], pos))
        last_seen[symbol] = pos
    found.sort(key=lambda e: (e.start, e.end))
    return found


def is_right_repeating(episode: Episode) -> bool:
    """True iff *episode* is right-repeating within its word (Definition 19).

    With ``q = ℓ·RuR·r``: check that ``r`` is a prefix of ``(uR)^|r|``.
    """
    r = episode.right_context
    if not r:
        return True
    period = episode.inner + Word([episode.symbol])
    return is_prefix(r, period * (len(r) // len(period) + 1))


def is_left_repeating(episode: Episode) -> bool:
    """True iff *episode* is left-repeating within its word (Definition 19).

    With ``q = ℓ·RuR·r``: check that ``ℓ`` is a suffix of ``(Ru)^|ℓ|``.
    """
    left = episode.left_context
    if not left:
        return True
    period = Word([episode.symbol]) + episode.inner
    return is_suffix(left, period * (len(left) // len(period) + 1))


def rightmost_left_repeating(q: WordLike) -> Episode:
    """The right-most left-repeating episode of *q* (used in Lemma 24).

    Raises :class:`ValueError` if *q* has no left-repeating episode (in
    particular if *q* is self-join-free).
    """
    candidates = [e for e in episodes(q) if is_left_repeating(e)]
    if not candidates:
        raise ValueError("word {} has no left-repeating episode".format(q))
    return max(candidates, key=lambda e: (e.start, e.end))
