"""The *rewinding* operator and the language ``L↬(q)`` (Definition 4).

If a word has a factor of the form ``R·v·R`` then *rewinding* that factor
replaces it with ``R·v·R·v·R``; i.e. ``u·RvR·w`` rewinds to ``u·RvRvR·w``.
``L↬(q)`` is the smallest language that contains ``q`` and is closed under
rewinding.  The conditions C1 / C3 of Section 3 say exactly that ``q`` is a
prefix / factor of every word in ``L↬(q)`` (Lemma 5).

``L↬(q)`` is infinite whenever ``q`` has a self-join, so it can only be
*explored* up to a length bound; :func:`enumerate_language` does a BFS which
is exhaustive below the bound.  The exact membership test is via the
automaton ``NFA(q)`` (Lemma 4), see :mod:`repro.automata.query_nfa`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Set, Tuple

from repro.words.factors import is_factor, is_prefix, self_join_pairs
from repro.words.word import Word, WordLike


def rewind_at(w: WordLike, i: int, j: int) -> Word:
    """Rewind the factor ``R v R`` of *w* located at positions ``i < j``.

    Positions *i* and *j* must carry the same symbol ``R``.  With
    ``u = w[:i]``, ``v = w[i+1:j]`` and ``z = w[j+1:]`` the result is
    ``u·R·v·R·v·R·z``, i.e. ``w[:j+1] + w[i+1:j+1] + w[j+1:]``.

    >>> rewind_at(Word("TWITTER"), 0, 3)
    Word('TWITWITTER')
    """
    w = Word.coerce(w)
    if not (0 <= i < j < len(w)):
        raise ValueError("need 0 <= i < j < len(w)")
    if w[i] != w[j]:
        raise ValueError(
            "positions {} and {} carry different symbols {!r} != {!r}".format(
                i, j, w[i], w[j]
            )
        )
    return w[: j + 1] + w[i + 1: j + 1] + w[j + 1:]


def rewindings(w: WordLike) -> List[Word]:
    """All distinct words obtained from *w* by a single rewind.

    The rewind may use *any* pair of equal symbols, not only consecutive
    occurrences, matching Definition 4(b).

    >>> sorted(str(x) for x in rewindings(Word("RXRY")))
    ['RXRXRY']
    """
    w = Word.coerce(w)
    results: Set[Word] = set()
    for i, j in self_join_pairs(w):
        results.add(rewind_at(w, i, j))
    return sorted(results)


def enumerate_language(
    q: WordLike, max_length: int, max_words: int = 100_000
) -> List[Word]:
    """BFS enumeration of all words of ``L↬(q)`` of length at most *max_length*.

    The enumeration is exhaustive for the given bound: every word of
    ``L↬(q)`` with length ``<= max_length`` is returned.  This holds because
    rewinding strictly increases length, so any derivation of a short word
    only passes through words at most that long.

    Raises :class:`RuntimeError` if more than *max_words* words are explored,
    as a guard against accidentally huge enumerations.
    """
    q = Word.coerce(q)
    if len(q) > max_length:
        return []
    seen: Set[Word] = {q}
    queue = deque([q])
    while queue:
        current = queue.popleft()
        for successor in rewindings(current):
            if len(successor) > max_length or successor in seen:
                continue
            seen.add(successor)
            queue.append(successor)
            if len(seen) > max_words:
                raise RuntimeError(
                    "L↬ enumeration exceeded {} words".format(max_words)
                )
    return sorted(seen)


def iterate_rewinds(q: WordLike, rounds: int) -> Iterator[Tuple[Word, Word]]:
    """Yield ``(parent, child)`` rewind edges reachable within *rounds* rewinds.

    Useful for visualizing the derivation DAG of ``L↬(q)``.
    """
    q = Word.coerce(q)
    frontier = {q}
    seen = {q}
    for _ in range(rounds):
        next_frontier: Set[Word] = set()
        for word in sorted(frontier):
            for child in rewindings(word):
                yield (word, child)
                if child not in seen:
                    seen.add(child)
                    next_frontier.add(child)
        frontier = next_frontier
        if not frontier:
            return


def is_closed_under_rewinding_prefix(q: WordLike, max_length: int) -> bool:
    """Bounded check that ``q`` is a prefix of every word in ``L↬(q)``.

    By Lemma 5(1) this is equivalent to C1; the bounded check is sound and,
    for ``max_length >= 3·|q|``, has never been observed to disagree with the
    exact syntactic test (the equivalence is exercised by property tests).
    """
    q = Word.coerce(q)
    return all(is_prefix(q, p) for p in enumerate_language(q, max_length))


def is_closed_under_rewinding_factor(q: WordLike, max_length: int) -> bool:
    """Bounded check that ``q`` is a factor of every word in ``L↬(q)``.

    By Lemma 5(2) this is equivalent to C3 (same caveats as the prefix
    variant).
    """
    q = Word.coerce(q)
    return all(is_factor(q, p) for p in enumerate_language(q, max_length))
