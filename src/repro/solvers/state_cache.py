"""A bounded, thread-safe LRU cache for maintained solver states.

PR 2 introduced *maintainable* solver states -- the Figure 5
:class:`~repro.solvers.fixpoint.FixpointState` and the semi-naive
:class:`~repro.datalog.engine.DatalogState` -- whose value lies in being
kept alive across calls: folding a delta into a warm state is O(delta)
solver work, recomputing it from scratch is O(db).  Both the certainty
engine (``solve_delta``) and the sharded serving layer
(:mod:`repro.serving`) therefore need the same piece of machinery: a
bounded mapping from ``(plan key, instance)`` to a live state, with LRU
eviction and hit/miss accounting.  :class:`StateCache` is that machinery,
extracted from ``CertaintyEngine``'s private ``_states`` bookkeeping so a
shard worker, an engine, or a test can own one directly.

The cache is *checkout-based*: :meth:`take` removes the entry, the caller
mutates the state (e.g. ``FixpointState.apply_delta``) and :meth:`put`\\ s
it back -- usually under a new key, because applying a delta advances the
instance the state describes.  Removing on checkout makes the mutate
window race-free: a concurrent caller asking for the same key sees a miss
and computes its own state instead of observing a half-updated one.

>>> cache = StateCache(max_size=2)
>>> cache.put("a", object()); cache.put("b", object())
>>> cache.take("a") is not None      # hit (and checkout)
True
>>> cache.take("a") is None          # taken out above -> miss
True
>>> cache.info()["hits"], cache.info()["misses"]
(1, 1)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, TypeVar

State = TypeVar("State")


class StateCache:
    """LRU checkout cache for maintained solver states.

    *max_size* bounds the number of live states; ``0`` disables the cache
    (every :meth:`take` misses, every :meth:`put` is dropped), which
    turns incremental callers into from-scratch callers without a second
    code path.  All operations are thread-safe; counters are cumulative
    until :meth:`clear`.
    """

    __slots__ = (
        "max_size",
        "_entries",
        "_lock",
        "hits",
        "misses",
        "puts",
        "evictions",
    )

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    def take(self, key: Hashable) -> Optional[object]:
        """Check the state for *key* out of the cache (``None`` on miss).

        The entry is removed: the caller owns the state until it is
        :meth:`put` back (under the same or an advanced key).
        """
        with self._lock:
            state = self._entries.pop(key, None)
            if state is None:
                self.misses += 1
            else:
                self.hits += 1
            return state

    def peek(self, key: Hashable) -> Optional[object]:
        """Read the state for *key* without checking it out.

        Refreshes the entry's LRU position but leaves it cached; safe
        only when the caller will not mutate the state (answer reads).
        Counts toward hits/misses like :meth:`take`.
        """
        with self._lock:
            state = self._entries.get(key)
            if state is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
            return state

    def put(self, key: Hashable, state: object) -> None:
        """Publish *state* under *key*, evicting LRU entries beyond bound."""
        if self.max_size == 0:
            return
        with self._lock:
            self.puts += 1
            self._entries[key] = state
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Hashable]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.puts = self.evictions = 0

    def info(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return "StateCache(size={}, max_size={}, hits={}, misses={})".format(
            len(self), self.max_size, self.hits, self.misses
        )
