"""Non-Boolean certain answers for rooted path queries.

Section 2 of the paper notes that the treatment of constants "allows
moving from Boolean to non-Boolean queries, by using that free variables
behave like constants".  The canonical non-Boolean path query has one
free variable at the head:

    ``q(x) = R1(x, x2), R2(x2, x3), ..., Rk(xk, xk+1)``

and its *certain answers* are the constants ``c`` such that every repair
satisfies ``q[c]`` -- decidable in FO for every path query by Lemma 12,
via the rooted-certainty recursion.

For a free variable at the *tail* the roles flip: the certain answers of
``q(y) = R1(x1,x2), ..., Rk(xk, y)`` are the constants ``d`` such that
every repair has a ``q``-path ending at ``d``; this is the Boolean
generalized path query ``[[q, d]]`` of Section 8, solved per candidate
by the generalized solver.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable

from repro.db.instance import DatabaseInstance
from repro.db.paths import rooted_certainty
from repro.queries.generalized import GeneralizedPathQuery
from repro.words.word import Word, WordLike


def certain_head_answers(
    db: DatabaseInstance, q: WordLike
) -> FrozenSet[Hashable]:
    """Certain answers of ``q(x)`` with the free variable at the head.

    The set ``{ c ∈ adom(db) : every repair satisfies q[c] }``, computed
    with the Lemma 12 recursion per candidate (overall
    ``O(|q| · |db| · |adom|)``, and in FO data complexity).

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3)])
    >>> sorted(certain_head_answers(db, "RR"))
    [0, 1]
    """
    q = Word.coerce(q)
    return frozenset(
        c for c in db.adom() if rooted_certainty(db, q, c)
    )


def certain_tail_answers(
    db: DatabaseInstance, q: WordLike
) -> FrozenSet[Hashable]:
    """Certain answers of ``q(y)`` with the free variable at the tail.

    The set ``{ d ∈ adom(db) : every repair has a q-path ending at d }``;
    each candidate is the Boolean generalized path query ``[[q, d]]``
    (Definition 17), decided by the Section 8 solver.

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3)])
    >>> sorted(certain_tail_answers(db, "RR"))
    [2, 3]
    """
    from repro.solvers.generalized_solver import certain_answer_generalized

    q = Word.coerce(q)
    answers = set()
    for candidate in db.adom():
        query = GeneralizedPathQuery(q, {len(q): candidate})
        if certain_answer_generalized(db, query).answer:
            answers.add(candidate)
    return frozenset(answers)
