"""SAT-based CERTAINTY(q) (CAvSAT-style baseline; exact for all queries).

``db`` is a "no"-instance of CERTAINTY(q) iff some repair falsifies ``q``.
The encoding has one Boolean variable per fact and

* one *at-least-one* clause per block (a repair picks a fact per block);
* optionally pairwise *at-most-one* clauses per block -- not needed for
  correctness because path-query satisfaction is monotone (any superset of
  a satisfying repair still embeds the query), kept as an ablation knob;
* one *blocking* clause per embedding of ``q`` into ``db``: at least one
  fact of the embedding must be absent.

The number of embeddings is polynomial in ``|db|`` for fixed ``q`` (data
complexity), so the encoding is polynomial-sized; the SAT search carries
the coNP-hardness.  A satisfying assignment yields a falsifying repair,
which is returned as a checkable certificate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.paths import iter_paths_with_trace
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.result import CertaintyResult
from repro.solvers.sat import SatStats, solve_clauses
from repro.words.word import Word

QueryLike = Union[str, Word, PathQuery, GeneralizedPathQuery, ConjunctiveQuery]


def _embeddings(db: DatabaseInstance, query: QueryLike) -> List[frozenset]:
    """All fact-sets that are images of homomorphisms from *query*."""
    if isinstance(query, PathQuery):
        query = query.word
    images = set()
    if isinstance(query, (str, Word)):
        word = Word.coerce(query)
        for path in iter_paths_with_trace(db, word):
            images.add(frozenset(path))
        return sorted(images, key=lambda s: sorted(map(str, s)))
    if isinstance(query, GeneralizedPathQuery):
        query = query.to_conjunctive_query()
    if not isinstance(query, ConjunctiveQuery):
        raise TypeError("unsupported query type {!r}".format(type(query)))
    triples = [fact.as_triple() for fact in db.facts]
    fact_of = {fact.as_triple(): fact for fact in db.facts}
    for theta in query.homomorphisms_into(triples):
        image = frozenset(
            fact_of[
                (
                    atom.relation,
                    atom.substitute(theta).key,
                    atom.substitute(theta).value,
                )
            ]
            for atom in query.atoms
        )
        images.add(image)
    return sorted(images, key=lambda s: sorted(map(str, s)))


def encode_falsifying_repair(
    db: DatabaseInstance,
    query: QueryLike,
    at_most_one: bool = False,
) -> Tuple[List[List[int]], Dict[int, Fact]]:
    """CNF clauses satisfiable iff some repair of *db* falsifies *query*.

    Returns ``(clauses, variable_to_fact)``.
    """
    fact_var: Dict[Fact, int] = {}
    var_fact: Dict[int, Fact] = {}
    for index, fact in enumerate(sorted(db.facts), start=1):
        fact_var[fact] = index
        var_fact[index] = fact
    clauses: List[List[int]] = []
    for block in db.blocks():
        members = [fact_var[f] for f in block.facts]
        clauses.append(members)
        if at_most_one:
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    clauses.append([-members[a], -members[b]])
    for image in _embeddings(db, query):
        clauses.append(sorted(-fact_var[f] for f in image))
    return clauses, var_fact


def certain_answer_sat(
    db: DatabaseInstance,
    query: QueryLike,
    at_most_one: bool = False,
) -> CertaintyResult:
    """Decide CERTAINTY(query) via the falsifying-repair SAT encoding.

    Exact for every query; intended as the solver for coNP-complete
    queries and as a cross-checking baseline elsewhere.
    """
    clauses, var_fact = encode_falsifying_repair(db, query, at_most_one)
    stats = SatStats()
    model = solve_clauses(clauses, stats)
    name = str(query if not isinstance(query, PathQuery) else query.word)
    details = {
        "clauses": len(clauses),
        "variables": len(var_fact),
        "decisions": stats.decisions,
        "propagations": stats.propagations,
    }
    if model is None:
        return CertaintyResult(
            query=name, answer=True, method="sat", details=details
        )
    fact_var = {fact: index for index, fact in var_fact.items()}
    chosen = []
    for block in db.blocks():
        # Pick a fact the model marks present; the at-least-one clause
        # guarantees one exists.  (Unconstrained variables default false.)
        selected: Optional[Fact] = None
        for fact in block.facts:
            if model.get(fact_var[fact], False):
                selected = fact
                break
        if selected is None:
            selected = block.facts[0]
        chosen.append(selected)
    repair = DatabaseInstance(chosen)
    return CertaintyResult(
        query=name,
        answer=False,
        method="sat",
        falsifying_repair=repair,
        details=details,
    )
