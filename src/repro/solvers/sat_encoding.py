"""SAT-based CERTAINTY(q) (CAvSAT-style baseline; exact for all queries).

``db`` is a "no"-instance of CERTAINTY(q) iff some repair falsifies ``q``.
The encoding has one Boolean variable per fact and

* one *at-least-one* clause per block (a repair picks a fact per block);
* optionally pairwise *at-most-one* clauses per block -- not needed for
  correctness because path-query satisfaction is monotone (any superset of
  a satisfying repair still embeds the query), kept as an ablation knob;
* one *blocking* clause per embedding of ``q`` into ``db``: at least one
  fact of the embedding must be absent.

The number of embeddings is polynomial in ``|db|`` for fixed ``q`` (data
complexity), so the encoding is polynomial-sized; the SAT search carries
the coNP-hardness.  A satisfying assignment yields a falsifying repair,
which is returned as a checkable certificate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.paths import iter_paths_with_trace
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.result import CertaintyResult
from repro.solvers.sat import IncrementalSatSolver, SatStats, solve_clauses
from repro.words.word import Word

QueryLike = Union[str, Word, PathQuery, GeneralizedPathQuery, ConjunctiveQuery]


def _embeddings(db: DatabaseInstance, query: QueryLike) -> List[frozenset]:
    """All fact-sets that are images of homomorphisms from *query*."""
    if isinstance(query, PathQuery):
        query = query.word
    images = set()
    if isinstance(query, (str, Word)):
        word = Word.coerce(query)
        for path in iter_paths_with_trace(db, word):
            images.add(frozenset(path))
        return sorted(images, key=lambda s: sorted(map(str, s)))
    if isinstance(query, GeneralizedPathQuery):
        query = query.to_conjunctive_query()
    if not isinstance(query, ConjunctiveQuery):
        raise TypeError("unsupported query type {!r}".format(type(query)))
    triples = [fact.as_triple() for fact in db.facts]
    fact_of = {fact.as_triple(): fact for fact in db.facts}
    for theta in query.homomorphisms_into(triples):
        image = frozenset(
            fact_of[
                (
                    atom.relation,
                    atom.substitute(theta).key,
                    atom.substitute(theta).value,
                )
            ]
            for atom in query.atoms
        )
        images.add(image)
    return sorted(images, key=lambda s: sorted(map(str, s)))


def encode_falsifying_repair(
    db: DatabaseInstance,
    query: QueryLike,
    at_most_one: bool = False,
) -> Tuple[List[List[int]], Dict[int, Fact]]:
    """CNF clauses satisfiable iff some repair of *db* falsifies *query*.

    Returns ``(clauses, variable_to_fact)``.
    """
    fact_var: Dict[Fact, int] = {}
    var_fact: Dict[int, Fact] = {}
    for index, fact in enumerate(sorted(db.facts), start=1):
        fact_var[fact] = index
        var_fact[index] = fact
    clauses: List[List[int]] = []
    for block in db.blocks():
        members = [fact_var[f] for f in block.facts]
        clauses.append(members)
        if at_most_one:
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    clauses.append([-members[a], -members[b]])
    for image in _embeddings(db, query):
        clauses.append(sorted(-fact_var[f] for f in image))
    return clauses, var_fact


def _embeddings_through(
    db: DatabaseInstance,
    in_index: Dict[Tuple[Hashable, str], Set[Fact]],
    word: Word,
    fact: Fact,
) -> Set[FrozenSet[Fact]]:
    """All embeddings (walk images) of *word* into *db* that use *fact*.

    For each position ``i`` with ``word[i] == fact.relation``, backward
    DFS over *in_index* enumerates the walk prefixes ending at
    ``fact.key`` and forward DFS over ``db.out_facts`` the suffixes from
    ``fact.value``; their cross product is every walk through *fact* at
    position ``i``.  Work is proportional to walks through the fact, not
    walks in the database -- this is what lets the incremental encoding
    discover new blocking clauses in O(delta-affected) time.
    """
    syms = word.symbols
    images: Set[FrozenSet[Fact]] = set()

    def backward(j: int, node: Hashable) -> List[Tuple[Fact, ...]]:
        if j < 0:
            return [()]
        out: List[Tuple[Fact, ...]] = []
        for f in in_index.get((node, syms[j]), ()):
            for rest in backward(j - 1, f.key):
                out.append(rest + (f,))
        return out

    def forward(j: int, node: Hashable) -> List[Tuple[Fact, ...]]:
        if j >= len(syms):
            return [()]
        out: List[Tuple[Fact, ...]] = []
        for f in db.out_facts(node, syms[j]):
            for rest in forward(j + 1, f.value):
                out.append((f,) + rest)
        return out

    for pos, symbol in enumerate(syms):
        if symbol != fact.relation:
            continue
        suffixes = forward(pos + 1, fact.value)
        if not suffixes:
            continue
        for prefix in backward(pos - 1, fact.key):
            for suffix in suffixes:
                images.add(frozenset(prefix + (fact,) + suffix))
    return images


class IncrementalSatContext:
    """The falsifying-repair CNF as assumption-keyed clause groups.

    The per-fact variables and the clause *groups* -- one at-least-one
    group per block membership, one blocking group per embedding image --
    are loaded into a persistent :class:`IncrementalSatSolver` exactly
    once, each guarded by a fresh selector variable (the clause is
    stored with the selector negated, so it binds only while the
    selector is assumed).  A :class:`~repro.db.delta.Delta` then
    *toggles assumptions*: departed embeddings drop their selector,
    changed blocks switch to the selector of their new membership (old
    memberships that recur -- a fact removed and later re-added -- reuse
    their original group), and only genuinely new groups pay encoding
    work.  Learned clauses carry the ``-selector`` literals of the
    groups they were derived from, so they stay sound under every later
    activation pattern and keep accelerating re-solves down the chain.

    Single-owner, like :class:`~repro.solvers.fixpoint.FixpointState`:
    the engine checks contexts in and out of its ``StateCache``.

    >>> db = DatabaseInstance.from_triples(
    ...     [("A", 0, 1), ("R", 1, 2), ("R", 2, 3), ("X", 3, 4)])
    >>> ctx = IncrementalSatContext(db, "ARRX")
    >>> ctx.solve().answer
    True
    >>> new_db = db.with_facts([Fact("X", 3, 5)])
    >>> ctx.apply_delta(new_db, [Fact("X", 3, 5)], [])
    >>> ctx.solve().answer == certain_answer_sat(new_db, "ARRX").answer
    True
    """

    __slots__ = (
        "query",
        "db",
        "solver",
        "last_reused",
        "_fact_var",
        "_next_var",
        "_block_sel",
        "_block_groups",
        "_emb_sel",
        "_active_embs",
        "_fact_embs",
        "_in_index",
    )

    def __init__(self, db: DatabaseInstance, query: QueryLike) -> None:
        if isinstance(query, PathQuery):
            query = query.word
        self.query = Word.coerce(query)
        self.solver = IncrementalSatSolver()
        #: Clauses already loaded when the last ``apply_delta`` arrived
        #: (the re-encoding work the delta path avoided).
        self.last_reused = 0
        self._fact_var: Dict[Fact, int] = {}
        self._next_var = 1
        # block_id -> selector of the block's *current* membership group.
        self._block_sel: Dict[Tuple[str, Hashable], int] = {}
        # (block_id, frozenset of member vars) -> selector, ever seen.
        self._block_groups: Dict[Tuple, int] = {}
        # frozenset of embedding facts -> selector, ever seen.
        self._emb_sel: Dict[FrozenSet[Fact], int] = {}
        self._active_embs: Set[FrozenSet[Fact]] = set()
        # fact -> every embedding image ever seen containing it.
        self._fact_embs: Dict[Fact, Set[FrozenSet[Fact]]] = {}
        self._in_index: Dict[Tuple[Hashable, str], Set[Fact]] = {}
        self.db = db
        for fact in sorted(db.facts):
            self._var(fact)
            self._in_index.setdefault(
                (fact.value, fact.relation), set()
            ).add(fact)
        for block in db.blocks():
            self._ensure_block(block.block_id, block.facts)
        for image in _embeddings(db, self.query):
            self._activate_embedding(image)

    def _var(self, fact: Fact) -> int:
        var = self._fact_var.get(fact)
        if var is None:
            var = self._next_var
            self._next_var += 1
            self._fact_var[fact] = var
        return var

    def _fresh_selector(self) -> int:
        sel = self._next_var
        self._next_var += 1
        return sel

    def _ensure_block(self, block_id, facts: Tuple[Fact, ...]) -> None:
        members = frozenset(self._var(f) for f in facts)
        key = (block_id, members)
        sel = self._block_groups.get(key)
        if sel is None:
            sel = self._fresh_selector()
            self._block_groups[key] = sel
            self.solver.add_clause(sorted(members) + [-sel])
        self._block_sel[block_id] = sel

    def _activate_embedding(self, image: FrozenSet[Fact]) -> None:
        sel = self._emb_sel.get(image)
        if sel is None:
            sel = self._fresh_selector()
            self._emb_sel[image] = sel
            self.solver.add_clause(
                sorted(-self._fact_var[f] for f in image) + [-sel]
            )
            for fact in image:
                self._fact_embs.setdefault(fact, set()).add(image)
        self._active_embs.add(image)

    def apply_delta(
        self,
        new_db: DatabaseInstance,
        added: Iterable[Fact],
        removed: Iterable[Fact],
    ) -> None:
        """Re-key the assumption set for the effective delta to *new_db*.

        Same contract as ``FixpointState.apply_delta``: *added* /
        *removed* is the effective fact delta from ``self.db``.
        """
        added = list(added)
        removed = list(removed)
        self.last_reused = self.solver.clause_count
        for fact in removed:
            bucket = self._in_index.get((fact.value, fact.relation))
            if bucket is not None:
                bucket.discard(fact)
            for image in self._fact_embs.get(fact, ()):
                self._active_embs.discard(image)
        for fact in added:
            self._var(fact)
            self._in_index.setdefault(
                (fact.value, fact.relation), set()
            ).add(fact)
        touched = {f.block_id for f in added} | {f.block_id for f in removed}
        for block_id in touched:
            block = new_db.block(*block_id)
            if block is None:
                self._block_sel.pop(block_id, None)
            else:
                self._ensure_block(block_id, block.facts)
        for fact in added:
            for image in _embeddings_through(
                new_db, self._in_index, self.query, fact
            ):
                self._activate_embedding(image)
        self.db = new_db

    def solve(self) -> CertaintyResult:
        """Decide CERTAINTY(query) on the context's current instance."""
        assumptions = sorted(self._block_sel.values()) + sorted(
            self._emb_sel[image] for image in self._active_embs
        )
        stats = self.solver.stats
        decisions0, props0 = stats.decisions, stats.propagations
        model = self.solver.solve(assumptions=assumptions)
        details = {
            "clauses": self.solver.clause_count,
            "clauses_reused": self.last_reused,
            "learned": self.solver.learned,
            "variables": self._next_var - 1,
            "assumptions": len(assumptions),
            "decisions": stats.decisions - decisions0,
            "propagations": stats.propagations - props0,
        }
        name = str(self.query)
        if model is None:
            return CertaintyResult(
                query=name, answer=True, method="sat-incremental",
                details=details,
            )
        chosen = []
        for block in self.db.blocks():
            selected: Optional[Fact] = None
            for fact in block.facts:
                if model.get(self._fact_var[fact], False):
                    selected = fact
                    break
            if selected is None:
                selected = block.facts[0]
            chosen.append(selected)
        return CertaintyResult(
            query=name,
            answer=False,
            method="sat-incremental",
            falsifying_repair=DatabaseInstance(chosen),
            details=details,
        )


def certain_answer_sat(
    db: DatabaseInstance,
    query: QueryLike,
    at_most_one: bool = False,
) -> CertaintyResult:
    """Decide CERTAINTY(query) via the falsifying-repair SAT encoding.

    Exact for every query; intended as the solver for coNP-complete
    queries and as a cross-checking baseline elsewhere.
    """
    clauses, var_fact = encode_falsifying_repair(db, query, at_most_one)
    stats = SatStats()
    model = solve_clauses(clauses, stats)
    name = str(query if not isinstance(query, PathQuery) else query.word)
    details = {
        "clauses": len(clauses),
        "variables": len(var_fact),
        "decisions": stats.decisions,
        "propagations": stats.propagations,
    }
    if model is None:
        return CertaintyResult(
            query=name, answer=True, method="sat", details=details
        )
    fact_var = {fact: index for index, fact in var_fact.items()}
    chosen = []
    for block in db.blocks():
        # Pick a fact the model marks present; the at-least-one clause
        # guarantees one exists.  (Unconstrained variables default false.)
        selected: Optional[Fact] = None
        for fact in block.facts:
            if model.get(fact_var[fact], False):
                selected = fact
                break
        if selected is None:
            selected = block.facts[0]
        chosen.append(selected)
    repair = DatabaseInstance(chosen)
    return CertaintyResult(
        query=name,
        answer=False,
        method="sat",
        falsifying_repair=repair,
        details=details,
    )
