"""The counting variant ♯CERTAINTY(q): how many repairs satisfy q?

The paper's related-work section (references [37, 38]) discusses
♯CERTAINTY(q): counting the repairs that satisfy a Boolean query.  For
self-join queries the exact complexity is open territory; this module
provides the two baselines a study would start from:

* :func:`count_satisfying_repairs` -- exact, by enumeration (exponential;
  guarded);
* :func:`estimate_satisfying_fraction` -- an unbiased Monte-Carlo
  estimator sampling repairs uniformly (blocks are independent, so
  uniform sampling is exact and cheap).

``CERTAINTY(q)`` holds iff the count equals the number of repairs, which
gives another (expensive) cross-check used in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.db.evaluation import path_query_satisfied
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repair_fact_tuples, random_repair
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class RepairCount:
    """Exact ♯CERTAINTY data for one instance/query pair."""

    total: int
    satisfying: int

    @property
    def fraction(self) -> float:
        return self.satisfying / self.total if self.total else 0.0

    @property
    def certain(self) -> bool:
        """CERTAINTY(q) holds iff every repair satisfies q."""
        return self.satisfying == self.total


def count_satisfying_repairs(
    db: DatabaseInstance,
    q: WordLike,
    repair_limit: Optional[int] = 1_000_000,
) -> RepairCount:
    """Exact count of repairs satisfying the path query *q*.

    Raises :class:`RuntimeError` when the instance has more than
    *repair_limit* repairs (pass ``None`` to lift the guard).
    """
    q = Word.coerce(q)
    total = count_repairs(db)
    if repair_limit is not None and total > repair_limit:
        raise RuntimeError(
            "instance has {} repairs, above the counting limit {}".format(
                total, repair_limit
            )
        )
    satisfying = 0
    for facts in iter_repair_fact_tuples(db):
        if path_query_satisfied(q, DatabaseInstance(facts)):
            satisfying += 1
    return RepairCount(total=total, satisfying=satisfying)


def estimate_satisfying_fraction(
    db: DatabaseInstance,
    q: WordLike,
    samples: int,
    rng: random.Random,
) -> float:
    """Monte-Carlo estimate of the fraction of repairs satisfying *q*.

    Repairs are sampled exactly uniformly (one independent uniform choice
    per block), so the estimator is unbiased with variance
    ``p(1-p)/samples``.
    """
    if samples <= 0:
        raise ValueError("need at least one sample")
    q = Word.coerce(q)
    hits = 0
    for _ in range(samples):
        if path_query_satisfied(q, random_repair(db, rng)):
            hits += 1
    return hits / samples
