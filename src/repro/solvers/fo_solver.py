"""The first-order solver for C1 queries (Lemmas 12 and 13).

Two interchangeable evaluation strategies:

* ``direct`` (default): the semantic recursion
  :func:`repro.db.paths.rooted_certainty` evaluated at every constant --
  linear-time per constant, what a database engine would compile the
  rewriting to;
* ``formula``: build the Lemma 13 sentence explicitly and run the generic
  FO evaluator over the active domain -- exponentially slower in quantifier
  depth, but a literal execution of the rewriting (kept for tests and the
  E6 ablation).
"""

from __future__ import annotations

from repro.classification.conditions import satisfies_c1
from repro.db.instance import DatabaseInstance
from repro.db.paths import rooted_certainty
from repro.fo.evaluate import evaluate, formula_size
from repro.fo.rewriting import c1_rewriting
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike


def certain_answer_fo(
    db: DatabaseInstance,
    q: WordLike,
    strategy: str = "direct",
    check: bool = True,
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a C1 path query via first-order rewriting.

    By Lemma 13, ``db`` is a "yes"-instance iff the Lemma 12 rewriting
    holds at some constant: ``∃x ψ(x)``.  Raises :class:`ValueError` when
    *q* violates C1 (unless *check* is disabled; the answer is then the
    sentence's value, which over-approximates CERTAINTY(q) -- see the
    Figure 2/3 discussion).
    """
    q = Word.coerce(q)
    if check and not satisfies_c1(q):
        raise ValueError(
            "query {} violates C1; its CERTAINTY problem is not in FO".format(q)
        )
    if strategy == "direct":
        witness = None
        # The canonical constant order is cached on the instance, so a
        # probe stream over one database sorts the domain exactly once.
        for constant in db.sorted_adom():
            if rooted_certainty(db, q, constant):
                witness = constant
                break
        repair = None
        if witness is None:
            # Certificate: the Lemma 9 minimal repair falsifies q on
            # "no"-instances (its construction is query-generic); built
            # lazily on first access.
            from repro.solvers.fixpoint import build_minimal_repair

            repair = lambda: build_minimal_repair(db, q)
        return CertaintyResult(
            query=str(q),
            answer=witness is not None,
            method="fo",
            witness_constant=witness,
            falsifying_repair=repair,
            details={"strategy": "direct"},
        )
    if strategy == "formula":
        sentence = c1_rewriting(q, check=check)
        answer = evaluate(sentence, db)
        return CertaintyResult(
            query=str(q),
            answer=answer,
            method="fo",
            details={
                "strategy": "formula",
                "formula_size": formula_size(sentence),
            },
        )
    raise ValueError("unknown strategy {!r}".format(strategy))
