"""The polynomial-time fixpoint algorithm of Figure 5 (Section 6.1).

The algorithm computes the relation ``N = { (c, u) : db ⊢_q (c, u) }``
where ``db ⊢_q (c, u)`` means every repair of ``db`` has a path starting
at ``c`` accepted by ``S-NFA(q, u)`` (Definition 10).  Prefixes are
represented by their lengths.

* **Initialization**: ``(c, q)`` for every ``c ∈ adom(db)``.
* **Iterative rule**: if ``uR`` is a prefix of ``q`` and ``R(c, *)`` is a
  nonempty block all of whose facts ``R(c, y)`` have ``(y, uR) ∈ N``,
  add ``(c, u)`` (*forward*) and every ``(c, w)`` such that ``NFA(q)``
  has a backward transition from ``w`` to ``u`` (*backward*).

Lemma 10 proves ``N`` characterizes ``⊢_q`` exactly, for *every* path
query.  By Lemma 7 (reification), for queries satisfying **C3**,
``db`` is a "yes"-instance of CERTAINTY(q) iff ``(c, ε) ∈ N`` for some
``c``.  For queries violating C3 the "yes" direction may overshoot
(Figure 3 is the canonical counterexample), but the "no" direction stays
sound: the Lemma 9/10 repair construction yields a single repair with no
accepted path from any constant, hence falsifying ``q``.

The implementation is a worklist fixpoint with per-block counters,
running in ``O(|q|·|db| + |q|²·|adom|)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.classification.conditions import satisfies_c3
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike

NPair = Tuple[Hashable, int]


@dataclass(frozen=True)
class FixpointTables:
    """The instance-independent prefix tables of the Figure 5 algorithm.

    ``longer_same_end`` drives the backward closure (prefix length ``i``
    maps to the longer prefixes ending in the same symbol); ``ends_with``
    maps each relation name to the prefix lengths ending with it (used by
    the Lemma 9 repair construction).  Built once per query by
    :meth:`build`; compiled plans cache them across instances.
    """

    query: Word
    longer_same_end: Dict[int, Tuple[int, ...]]
    ends_with: Dict[str, Tuple[int, ...]]

    @classmethod
    def build(cls, q: WordLike) -> "FixpointTables":
        q = Word.coerce(q)
        k = len(q)
        longer_same_end = {
            i: tuple(j for j in range(i + 1, k + 1) if q[j - 1] == q[i - 1])
            for i in range(1, k + 1)
        }
        ends_with: Dict[str, List[int]] = {}
        for i, symbol in enumerate(q):
            ends_with.setdefault(symbol, []).append(i + 1)
        return cls(
            query=q,
            longer_same_end=longer_same_end,
            ends_with={s: tuple(v) for s, v in ends_with.items()},
        )


def fixpoint_relation(
    db: DatabaseInstance,
    q: WordLike,
    tables: Optional[FixpointTables] = None,
) -> Set[NPair]:
    """The relation ``N`` of Figure 5; pairs ``(constant, prefix_length)``.

    *tables* may carry the precomputed :class:`FixpointTables` for *q*
    (compiled plans pass them; ad-hoc callers leave them to be built).

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> (0, 0) in fixpoint_relation(db, "RRX")      # Figure 6: <0, ε>
    True
    """
    q = Word.coerce(q)
    k = len(q)
    if k == 0:
        return {(c, 0) for c in db.adom()}

    # Backward closure: for each prefix length i >= 1 (ending with symbol
    # q[i-1]), the longer prefixes j > i with the same ending symbol.
    if tables is None:
        tables = FixpointTables.build(q)
    longer_same_end = tables.longer_same_end

    # Incoming index: (value, relation) -> keys c with relation(c, value).
    in_index: Dict[Tuple[Hashable, str], List[Hashable]] = {}
    for fact in db.facts:
        in_index.setdefault((fact.value, fact.relation), []).append(fact.key)

    n_set: Set[NPair] = set()
    counters: Dict[NPair, int] = {}
    worklist = deque()

    def add(c: Hashable, length: int) -> None:
        pair = (c, length)
        if pair in n_set:
            return
        n_set.add(pair)
        worklist.append(pair)

    def derive(c: Hashable, length: int) -> None:
        """Forward derivation of (c, u) plus its backward companions."""
        add(c, length)
        if length >= 1:
            for j in longer_same_end[length]:
                add(c, j)

    for c in db.adom():
        add(c, k)

    while worklist:
        y, j = worklist.popleft()
        if j == 0:
            continue
        relation = q[j - 1]
        for c in in_index.get((y, relation), ()):  # facts relation(c, y)
            pair = (c, j - 1)
            if pair in n_set:
                continue
            if pair not in counters:
                counters[pair] = len(db.out_facts(c, relation))
            counters[pair] -= 1
            if counters[pair] == 0:
                derive(c, j - 1)
    return n_set


def build_minimal_repair(
    db: DatabaseInstance,
    q: WordLike,
    n_relation: Optional[Set[NPair]] = None,
    tables: Optional[FixpointTables] = None,
) -> DatabaseInstance:
    """The repair ``r*`` of Lemmas 9 / 10.

    For every block ``R(a, *)``: among prefix lengths ``ℓ`` with
    ``q[ℓ-1] = R``, take the largest with ``(a, ℓ-1) ∉ N`` and insert a
    fact ``R(a, b)`` with ``(b, ℓ) ∉ N``; if every such prefix has
    ``(a, ℓ-1) ∈ N``, insert an arbitrary fact.

    This repair is ⪯_q-minimal (Lemma 9); in particular it minimizes
    ``start(q, ·)`` over all repairs (Lemma 6), and whenever ``(c, ε) ∉ N``
    for all ``c`` it contains no path accepted by ``NFA(q)``, hence
    falsifies ``q``.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    if n_relation is None:
        n_relation = fixpoint_relation(db, q, tables=tables)
    ends_with = tables.ends_with

    chosen: List[Fact] = []
    for block in db.blocks():
        lengths = ends_with.get(block.relation, ())
        target_length = None
        for length in sorted(lengths, reverse=True):
            if (block.key, length - 1) not in n_relation:
                target_length = length
                break
        fact = block.facts[0]
        if target_length is not None:
            for candidate in block.facts:
                if (candidate.value, target_length) not in n_relation:
                    fact = candidate
                    break
            else:  # pragma: no cover - contradicts the Iterative Rule
                raise AssertionError(
                    "block {} has no escaping fact; fixpoint inconsistent"
                    .format(block.block_id)
                )
        chosen.append(fact)
    return DatabaseInstance(chosen)


def certain_answer_fixpoint(
    db: DatabaseInstance,
    q: WordLike,
    require_c3: bool = True,
    tables: Optional[FixpointTables] = None,
    is_c3: Optional[bool] = None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) with the Figure 5 algorithm.

    Complete for queries satisfying C3 (Lemmas 7, 10).  For other queries
    the "no" answer (with its falsifying-repair certificate) remains
    sound, but "yes" answers are unsound; by default a :class:`ValueError`
    is raised on a "yes" for a non-C3 query unless *require_c3* is
    disabled (which flags the result as unsound instead -- used by the
    Figure 3 demonstration and as a cheap pre-filter for the SAT solver).

    *tables* and *is_c3* let compiled plans supply the per-query prefix
    tables and the (already classified) C3 status, so the per-instance
    call does no per-query work.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    n_relation = fixpoint_relation(db, q, tables=tables)
    witnesses = sorted(
        (c for c in db.adom() if (c, 0) in n_relation), key=str
    )
    details: Dict[str, object] = {"n_size": len(n_relation)}
    if witnesses:
        if is_c3 is None:
            is_c3 = satisfies_c3(q)
        if not is_c3:
            if require_c3:
                raise ValueError(
                    "query {} violates C3: the fixpoint algorithm is not "
                    "complete for it (pass require_c3=False to get the "
                    "unsound answer)".format(q)
                )
            details["sound"] = False
        else:
            details["sound"] = True
        return CertaintyResult(
            query=str(q),
            answer=True,
            method="fixpoint",
            witness_constant=witnesses[0],
            details=details,
        )
    repair = build_minimal_repair(db, q, n_relation, tables=tables)
    details["sound"] = True
    return CertaintyResult(
        query=str(q),
        answer=False,
        method="fixpoint",
        falsifying_repair=repair,
        details=details,
    )
