"""The polynomial-time fixpoint algorithm of Figure 5 (Section 6.1).

The algorithm computes the relation ``N = { (c, u) : db ⊢_q (c, u) }``
where ``db ⊢_q (c, u)`` means every repair of ``db`` has a path starting
at ``c`` accepted by ``S-NFA(q, u)`` (Definition 10).  Prefixes are
represented by their lengths.

* **Initialization**: ``(c, q)`` for every ``c ∈ adom(db)``.
* **Iterative rule**: if ``uR`` is a prefix of ``q`` and ``R(c, *)`` is a
  nonempty block all of whose facts ``R(c, y)`` have ``(y, uR) ∈ N``,
  add ``(c, u)`` (*forward*) and every ``(c, w)`` such that ``NFA(q)``
  has a backward transition from ``w`` to ``u`` (*backward*).

Lemma 10 proves ``N`` characterizes ``⊢_q`` exactly, for *every* path
query.  By Lemma 7 (reification), for queries satisfying **C3**,
``db`` is a "yes"-instance of CERTAINTY(q) iff ``(c, ε) ∈ N`` for some
``c``.  For queries violating C3 the "yes" direction may overshoot
(Figure 3 is the canonical counterexample), but the "no" direction stays
sound: the Lemma 9/10 repair construction yields a single repair with no
accepted path from any constant, hence falsifying ``q``.

The implementation is a worklist fixpoint with per-block counters,
running in ``O(|q|·|db| + |q|²·|adom|)``.

The DRed maintenance contract
-----------------------------

:class:`FixpointState` keeps ``N`` alive across updates and maintains it
under fact deltas with the delete-and-rederive (DRed) discipline:

* **Over-delete** every pair whose derivation *may* have passed through
  a touched block or a departed constant, closing transitively over the
  old edge index and the backward-companion rule.  Init axioms
  ``(c, |q|)`` are never suspected while ``c`` survives in the domain.
* **Re-derive** from the affected frontier only: the worklist is seeded
  with the suspects, the touched blocks' candidate pairs, and the init
  axioms of newly arrived constants -- work is proportional to the
  affected region, not to ``|db|``.

Callers must uphold, and may rely on, the following:

* ``apply_delta(new_db, added, removed)`` receives the **effective**
  delta from the state's current ``db`` to *new_db* (exactly what
  :class:`repro.db.delta.DeltaInstance` exposes); passing a stale or
  partial delta silently corrupts ``N``.
* After ``apply_delta`` returns, ``state.n_set`` equals
  ``fixpoint_relation(new_db, q)`` exactly -- maintenance is sound *and*
  complete for every path query, independent of C3 (the differential
  tests in ``tests/test_incremental.py`` pin this).
* ``starts`` is the maintained witness set ``{c : (c, ε) ∈ N}``; answer
  reads are O(1) set probes and never scan the domain.
* The state is **single-owner**: ``apply_delta`` mutates in place with
  no internal locking.  The engine enforces ownership by checking
  states out of its :class:`~repro.solvers.state_cache.StateCache`
  (checkout semantics) and re-publishing them only after the answer has
  been read; shard workers get ownership for free from their
  single-threaded execution loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.classification.conditions import satisfies_c3
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike

NPair = Tuple[Hashable, int]


@dataclass(frozen=True)
class FixpointTables:
    """The instance-independent prefix tables of the Figure 5 algorithm.

    ``longer_same_end`` drives the backward closure (prefix length ``i``
    maps to the longer prefixes ending in the same symbol); ``ends_with``
    maps each relation name to the prefix lengths ending with it (used by
    the Lemma 9 repair construction).  Built once per query by
    :meth:`build`; compiled plans cache them across instances.
    """

    query: Word
    longer_same_end: Dict[int, Tuple[int, ...]]
    ends_with: Dict[str, Tuple[int, ...]]

    @classmethod
    def build(cls, q: WordLike) -> "FixpointTables":
        q = Word.coerce(q)
        k = len(q)
        longer_same_end = {
            i: tuple(j for j in range(i + 1, k + 1) if q[j - 1] == q[i - 1])
            for i in range(1, k + 1)
        }
        ends_with: Dict[str, List[int]] = {}
        for i, symbol in enumerate(q):
            ends_with.setdefault(symbol, []).append(i + 1)
        return cls(
            query=q,
            longer_same_end=longer_same_end,
            ends_with={s: tuple(v) for s, v in ends_with.items()},
        )


def fixpoint_relation(
    db: DatabaseInstance,
    q: WordLike,
    tables: Optional[FixpointTables] = None,
) -> Set[NPair]:
    """The relation ``N`` of Figure 5; pairs ``(constant, prefix_length)``.

    *tables* may carry the precomputed :class:`FixpointTables` for *q*
    (compiled plans pass them; ad-hoc callers leave them to be built).

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> (0, 0) in fixpoint_relation(db, "RRX")      # Figure 6: <0, ε>
    True
    """
    q = Word.coerce(q)
    k = len(q)
    if k == 0:
        return {(c, 0) for c in db.adom()}

    # Backward closure: for each prefix length i >= 1 (ending with symbol
    # q[i-1]), the longer prefixes j > i with the same ending symbol.
    if tables is None:
        tables = FixpointTables.build(q)
    longer_same_end = tables.longer_same_end

    # Incoming index: (value, relation) -> keys c with relation(c, value).
    in_index: Dict[Tuple[Hashable, str], List[Hashable]] = {}
    for fact in db.facts:
        in_index.setdefault((fact.value, fact.relation), []).append(fact.key)

    n_set: Set[NPair] = set()
    counters: Dict[NPair, int] = {}
    worklist = deque()

    def add(c: Hashable, length: int) -> None:
        pair = (c, length)
        if pair in n_set:
            return
        n_set.add(pair)
        worklist.append(pair)

    def derive(c: Hashable, length: int) -> None:
        """Forward derivation of (c, u) plus its backward companions."""
        add(c, length)
        if length >= 1:
            for j in longer_same_end[length]:
                add(c, j)

    for c in db.adom():
        add(c, k)

    while worklist:
        y, j = worklist.popleft()
        if j == 0:
            continue
        relation = q[j - 1]
        for c in in_index.get((y, relation), ()):  # facts relation(c, y)
            pair = (c, j - 1)
            if pair in n_set:
                continue
            if pair not in counters:
                counters[pair] = len(db.out_facts(c, relation))
            counters[pair] -= 1
            if counters[pair] == 0:
                derive(c, j - 1)
    return n_set


class FixpointState:
    """Persistent Figure 5 state for one ``(db, q)``, maintainable under
    fact deltas.

    Holds the relation ``N``, the incoming-edge index, and the per-query
    prefix tables.  ``apply_delta`` folds a batch of inserted/removed
    facts into ``N`` with the DRed discipline: *over-delete* every pair
    whose derivation may have passed through a touched block (closing
    transitively over the old edges and the backward-companion rule),
    then *re-derive* from the surviving pairs -- the worklist is seeded
    with the touched blocks' candidate pairs, the deleted pairs
    themselves, and the init axioms of newly arrived constants, so the
    work is proportional to the affected region, not the database.

    The init axioms ``(c, |q|)`` for ``c ∈ adom`` are never suspected
    (they hold by definition while ``c`` survives in the domain).
    """

    __slots__ = (
        "db",
        "query",
        "tables",
        "n_set",
        "in_index",
        "starts",
        "_shorter",
    )

    def __init__(
        self,
        db: DatabaseInstance,
        query: Word,
        tables: FixpointTables,
        n_set: Set[NPair],
        in_index: Dict[Tuple[Hashable, str], Set[Hashable]],
    ) -> None:
        self.db = db
        self.query = query
        self.tables = tables
        self.n_set = n_set
        self.in_index = in_index
        #: Constants c with (c, ε) ∈ N -- the certainty witnesses (Lemma
        #: 7), maintained so answers need no domain scan.
        self.starts: Set[Hashable] = {
            c for c, length in n_set if length == 0
        }
        # Reverse of longer_same_end: for each prefix length, the shorter
        # prefixes ending in the same symbol (backward-derivability probe).
        shorter: Dict[int, List[int]] = {}
        for i, longer in tables.longer_same_end.items():
            for j in longer:
                shorter.setdefault(j, []).append(i)
        self._shorter = {j: tuple(v) for j, v in shorter.items()}

    @classmethod
    def compute(
        cls,
        db: DatabaseInstance,
        q: WordLike,
        tables: Optional[FixpointTables] = None,
    ) -> "FixpointState":
        """Full Figure 5 run, retaining the state for incremental upkeep."""
        q = Word.coerce(q)
        if tables is None:
            tables = FixpointTables.build(q)
        n_set = fixpoint_relation(db, q, tables=tables)
        in_index: Dict[Tuple[Hashable, str], Set[Hashable]] = {}
        for fact in db.facts:
            in_index.setdefault((fact.value, fact.relation), set()).add(
                fact.key
            )
        return cls(db, q, tables, n_set, in_index)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        new_db: DatabaseInstance,
        added: Iterable[Fact],
        removed: Iterable[Fact],
    ) -> None:
        """Update ``N`` in place so it equals ``fixpoint_relation(new_db)``.

        *added* / *removed* is the effective fact delta from ``self.db``
        to *new_db* (as produced by
        :class:`repro.db.delta.DeltaInstance`).
        """
        added = list(added)
        removed = list(removed)
        q, k = self.query, len(self.query)
        if k == 0:
            self.n_set = {(c, 0) for c in new_db.adom()}
            self.starts = {c for c, _ in self.n_set}
            self._reindex(added, removed)
            self.db = new_db
            return

        touched = {f.block_id for f in added} | {f.block_id for f in removed}
        # Domain churn is read off the refcounts of the constants the
        # delta mentions -- O(delta), not an O(adom) set difference.
        old_counts = self.db.adom_refcounts()
        new_counts = new_db.adom_refcounts()
        delta_constants = set()
        for fact in added:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        for fact in removed:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        gone_constants = [
            c for c in delta_constants if c in old_counts and c not in new_counts
        ]
        new_constants = [
            c for c in delta_constants if c not in old_counts and c in new_counts
        ]
        ends_with = self.tables.ends_with
        longer_same_end = self.tables.longer_same_end
        n_set = self.n_set

        # --- Over-deletion: close the suspects over old edges. ---------
        suspects: Set[NPair] = set()
        queue = deque()

        def suspect(pair: NPair) -> None:
            if pair in suspects or pair not in n_set:
                return
            if pair[1] == k and pair[0] in new_counts:
                return  # init axiom: valid while the constant survives
            suspects.add(pair)
            queue.append(pair)

        for relation, key in touched:
            for length in ends_with.get(relation, ()):
                suspect((key, length - 1))
        for constant in gone_constants:
            for length in range(k + 1):
                suspect((constant, length))
        while queue:
            y, j = queue.popleft()
            for j2 in longer_same_end.get(j, ()):
                suspect((y, j2))  # backward companions derived from (y, j)
            if j >= 1:
                relation = q[j - 1]
                for c in self.in_index.get((y, relation), ()):
                    suspect((c, j - 1))
        n_set -= suspects
        for c, length in suspects:
            if length == 0:
                self.starts.discard(c)

        # --- Switch the index and db over to the new instance. ---------
        self._reindex(added, removed)
        self.db = new_db

        # --- Re-derivation from the affected frontier. -----------------
        worklist = deque()

        def add(c: Hashable, length: int) -> None:
            pair = (c, length)
            if pair in n_set:
                return
            n_set.add(pair)
            if length == 0:
                self.starts.add(c)
            worklist.append(pair)

        def derive(c: Hashable, length: int) -> None:
            add(c, length)
            if length >= 1:
                for j in longer_same_end[length]:
                    add(c, j)

        def block_satisfied(c: Hashable, relation: str, j: int) -> bool:
            facts = new_db.out_facts(c, relation)
            return bool(facts) and all(
                (f.value, j) in n_set for f in facts
            )

        for constant in new_constants:
            add(constant, k)
        candidates: Set[NPair] = set(suspects)
        for relation, key in touched:
            for length in ends_with.get(relation, ()):
                candidates.add((key, length - 1))
        for c, i in candidates:
            if (c, i) in n_set:
                continue
            if i == k:
                if c in new_counts:
                    add(c, k)
                continue
            if block_satisfied(c, q[i], i + 1) or any(
                (c, i2) in n_set for i2 in self._shorter.get(i, ())
            ):
                derive(c, i)
        while worklist:
            y, j = worklist.popleft()
            if j == 0:
                continue
            relation = q[j - 1]
            for c in self.in_index.get((y, relation), ()):
                if (c, j - 1) in n_set:
                    continue
                if block_satisfied(c, relation, j):
                    derive(c, j - 1)

    def _reindex(
        self, added: Iterable[Fact], removed: Iterable[Fact]
    ) -> None:
        for fact in removed:
            key = (fact.value, fact.relation)
            keys = self.in_index.get(key)
            if keys is not None:
                keys.discard(fact.key)
                if not keys:
                    del self.in_index[key]
        for fact in added:
            self.in_index.setdefault(
                (fact.value, fact.relation), set()
            ).add(fact.key)


def certain_answer_incremental(
    state: FixpointState,
    require_c3: bool = True,
    is_c3: Optional[bool] = None,
) -> CertaintyResult:
    """Read a CERTAINTY(q) answer off a maintained :class:`FixpointState`.

    Same semantics and soundness envelope as
    :func:`certain_answer_fixpoint`, with the ``N`` relation taken from
    the incrementally maintained state instead of a fresh run.
    """
    return _result_from_relation(
        state.db,
        state.query,
        state.tables,
        state.n_set,
        require_c3=require_c3,
        is_c3=is_c3,
        method="fixpoint-incremental",
        starts=state.starts,
    )


def build_minimal_repair(
    db: DatabaseInstance,
    q: WordLike,
    n_relation: Optional[Set[NPair]] = None,
    tables: Optional[FixpointTables] = None,
) -> DatabaseInstance:
    """The repair ``r*`` of Lemmas 9 / 10.

    For every block ``R(a, *)``: among prefix lengths ``ℓ`` with
    ``q[ℓ-1] = R``, take the largest with ``(a, ℓ-1) ∉ N`` and insert a
    fact ``R(a, b)`` with ``(b, ℓ) ∉ N``; if every such prefix has
    ``(a, ℓ-1) ∈ N``, insert an arbitrary fact.

    This repair is ⪯_q-minimal (Lemma 9); in particular it minimizes
    ``start(q, ·)`` over all repairs (Lemma 6), and whenever ``(c, ε) ∉ N``
    for all ``c`` it contains no path accepted by ``NFA(q)``, hence
    falsifies ``q``.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    if n_relation is None:
        n_relation = fixpoint_relation(db, q, tables=tables)
    ends_with = tables.ends_with

    chosen: List[Fact] = []
    for block in db.blocks():
        lengths = ends_with.get(block.relation, ())
        target_length = None
        for length in sorted(lengths, reverse=True):
            if (block.key, length - 1) not in n_relation:
                target_length = length
                break
        fact = block.facts[0]
        if target_length is not None:
            for candidate in block.facts:
                if (candidate.value, target_length) not in n_relation:
                    fact = candidate
                    break
            else:  # pragma: no cover - contradicts the Iterative Rule
                raise AssertionError(
                    "block {} has no escaping fact; fixpoint inconsistent"
                    .format(block.block_id)
                )
        chosen.append(fact)
    return DatabaseInstance(chosen)


def certain_answer_fixpoint(
    db: DatabaseInstance,
    q: WordLike,
    require_c3: bool = True,
    tables: Optional[FixpointTables] = None,
    is_c3: Optional[bool] = None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) with the Figure 5 algorithm.

    Complete for queries satisfying C3 (Lemmas 7, 10).  For other queries
    the "no" answer (with its falsifying-repair certificate) remains
    sound, but "yes" answers are unsound; by default a :class:`ValueError`
    is raised on a "yes" for a non-C3 query unless *require_c3* is
    disabled (which flags the result as unsound instead -- used by the
    Figure 3 demonstration and as a cheap pre-filter for the SAT solver).

    *tables* and *is_c3* let compiled plans supply the per-query prefix
    tables and the (already classified) C3 status, so the per-instance
    call does no per-query work.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    n_relation = fixpoint_relation(db, q, tables=tables)
    return _result_from_relation(
        db, q, tables, n_relation, require_c3, is_c3, method="fixpoint"
    )


def _result_from_relation(
    db: DatabaseInstance,
    q: Word,
    tables: FixpointTables,
    n_relation: Set[NPair],
    require_c3: bool,
    is_c3: Optional[bool],
    method: str,
    starts: Optional[Set[Hashable]] = None,
) -> CertaintyResult:
    """Shared answer construction for the fresh and incremental paths.

    *starts* may carry the maintained witness set ``{c : (c, ε) ∈ N}``
    (the incremental state passes it), replacing the domain scan.
    """
    if starts is not None:
        witness = min(starts, key=str) if starts else None
    else:
        witness = None
        for c in db.sorted_adom():
            if (c, 0) in n_relation:
                witness = c
                break
    details: Dict[str, object] = {"n_size": len(n_relation)}
    if witness is not None:
        if is_c3 is None:
            is_c3 = satisfies_c3(q)
        if not is_c3:
            if require_c3:
                raise ValueError(
                    "query {} violates C3: the fixpoint algorithm is not "
                    "complete for it (pass require_c3=False to get the "
                    "unsound answer)".format(q)
                )
            details["sound"] = False
        else:
            details["sound"] = True
        return CertaintyResult(
            query=str(q),
            answer=True,
            method=method,
            witness_constant=witness,
            details=details,
        )
    details["sound"] = True
    return CertaintyResult(
        query=str(q),
        answer=False,
        method=method,
        # Lazy: the Lemma 9 construction is O(db); an update stream that
        # never reads the certificate should not pay for it per decision.
        # The (rarely read) certificate recomputes its own N on demand:
        # the incremental path's maintained N mutates under later deltas,
        # and holding the O(|q|·|adom|) relation alive on every unread
        # "no" result costs more than the occasional re-run.
        falsifying_repair=lambda: build_minimal_repair(db, q, tables=tables),
        details=details,
    )
