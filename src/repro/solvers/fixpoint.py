"""The polynomial-time fixpoint algorithm of Figure 5 (Section 6.1).

The algorithm computes the relation ``N = { (c, u) : db ⊢_q (c, u) }``
where ``db ⊢_q (c, u)`` means every repair of ``db`` has a path starting
at ``c`` accepted by ``S-NFA(q, u)`` (Definition 10).  Prefixes are
represented by their lengths.

* **Initialization**: ``(c, q)`` for every ``c ∈ adom(db)``.
* **Iterative rule**: if ``uR`` is a prefix of ``q`` and ``R(c, *)`` is a
  nonempty block all of whose facts ``R(c, y)`` have ``(y, uR) ∈ N``,
  add ``(c, u)`` (*forward*) and every ``(c, w)`` such that ``NFA(q)``
  has a backward transition from ``w`` to ``u`` (*backward*).

Lemma 10 proves ``N`` characterizes ``⊢_q`` exactly, for *every* path
query.  By Lemma 7 (reification), for queries satisfying **C3**,
``db`` is a "yes"-instance of CERTAINTY(q) iff ``(c, ε) ∈ N`` for some
``c``.  For queries violating C3 the "yes" direction may overshoot
(Figure 3 is the canonical counterexample), but the "no" direction stays
sound: the Lemma 9/10 repair construction yields a single repair with no
accepted path from any constant, hence falsifying ``q``.

Two kernels compute ``N``:

* :func:`fixpoint_bits` -- the production kernel.  It runs over the
  :class:`~repro.db.compact.CompactInstance` of the database: a pair
  ``(c, u)`` is the single integer ``c_lid * (k+1) + |u|``, membership
  is a ``bytearray`` bit per pair, the per-block countdown counters are
  one flat ``array('l')`` seeded by slice-copying the compact view's
  per-block fact counts, and the in-edge probe indexes the int
  adjacency directly -- no tuple is hashed on the hot path.
* :func:`fixpoint_relation` -- the historical object-level worklist
  over ``(constant, length)`` tuple pairs, retained as the differential
  baseline (``tests/test_compact.py`` pins kernel agreement,
  ``benchmarks/test_bench_compact.py`` pins the compact speedup).

Both run in ``O(|q|·|db| + |q|²·|adom|)``.

The DRed maintenance contract
-----------------------------

:class:`FixpointState` keeps ``N`` alive across updates -- on the
compact representation -- and maintains it under fact deltas with the
delete-and-rederive (DRed) discipline:

* **Over-delete** every pair whose derivation *may* have passed through
  a touched block or a departed constant, closing transitively over the
  old edge index and the backward-companion rule.  Init axioms
  ``(c, |q|)`` are never suspected while ``c`` survives in the domain.
* **Re-derive** from the affected frontier only: the worklist is seeded
  with the suspects, the touched blocks' candidate pairs, and the init
  axioms of newly arrived constants -- work is proportional to the
  affected region, not to ``|db|``.

Callers must uphold, and may rely on, the following:

* ``apply_delta(new_db, added, removed)`` receives the **effective**
  delta from the state's current ``db`` to *new_db* (exactly what
  :class:`repro.db.delta.DeltaInstance` exposes); passing a stale or
  partial delta silently corrupts ``N``.
* After ``apply_delta`` returns, ``state.n_set`` equals
  ``fixpoint_relation(new_db, q)`` exactly -- maintenance is sound *and*
  complete for every path query, independent of C3 (the differential
  tests in ``tests/test_incremental.py`` and ``tests/test_compact.py``
  pin this).
* ``starts`` is the maintained witness set ``{c : (c, ε) ∈ N}``; answer
  reads are O(1) set probes and never scan the domain.
* The state is **single-owner**: ``apply_delta`` mutates in place with
  no internal locking.  The engine enforces ownership by checking
  states out of its :class:`~repro.solvers.state_cache.StateCache`
  (checkout semantics) and re-publishing them only after the answer has
  been read; shard workers get ownership for free from their
  single-threaded execution loop.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.classification.conditions import satisfies_c3
from repro.db.compact import CompactInstance
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.solvers.result import CertaintyResult, LazyMinimalRepair
from repro.words.word import Word, WordLike

NPair = Tuple[Hashable, int]


@dataclass(frozen=True)
class FixpointTables:
    """The instance-independent prefix tables of the Figure 5 algorithm.

    ``longer_same_end`` drives the backward closure (prefix length ``i``
    maps to the longer prefixes ending in the same symbol); ``ends_with``
    maps each relation name to the prefix lengths ending with it (used by
    the Lemma 9 repair construction).  Built once per query by
    :meth:`build`; compiled plans cache them across instances.
    """

    query: Word
    longer_same_end: Dict[int, Tuple[int, ...]]
    ends_with: Dict[str, Tuple[int, ...]]

    @classmethod
    def build(cls, q: WordLike) -> "FixpointTables":
        q = Word.coerce(q)
        k = len(q)
        longer_same_end = {
            i: tuple(j for j in range(i + 1, k + 1) if q[j - 1] == q[i - 1])
            for i in range(1, k + 1)
        }
        ends_with: Dict[str, List[int]] = {}
        for i, symbol in enumerate(q):
            ends_with.setdefault(symbol, []).append(i + 1)
        return cls(
            query=q,
            longer_same_end=longer_same_end,
            ends_with={s: tuple(v) for s, v in ends_with.items()},
        )

    def longer_list(self) -> List[Tuple[int, ...]]:
        """``longer_same_end`` as a dense list indexed by prefix length."""
        k = len(self.query)
        return [self.longer_same_end.get(i, ()) for i in range(k + 1)]

    def shorter_list(self) -> List[Tuple[int, ...]]:
        """Reverse of ``longer_same_end``, indexed by prefix length."""
        k = len(self.query)
        shorter: List[List[int]] = [[] for _ in range(k + 1)]
        for i, longer in self.longer_same_end.items():
            for j in longer:
                shorter[j].append(i)
        return [tuple(v) for v in shorter]


def _compact_of(db) -> Optional[CompactInstance]:
    """The cached compact view of *db*, or None for plain overlays."""
    builder = getattr(db, "compact", None)
    if builder is None:
        return None
    return builder()


def fixpoint_relation(
    db: DatabaseInstance,
    q: WordLike,
    tables: Optional[FixpointTables] = None,
) -> Set[NPair]:
    """The relation ``N`` of Figure 5; pairs ``(constant, prefix_length)``.

    This is the **object-level baseline kernel** (tuple pairs, dict/set
    membership), retained as the differential reference the compact
    kernel :func:`fixpoint_bits` is tested and benchmarked against.
    *tables* may carry the precomputed :class:`FixpointTables` for *q*
    (compiled plans pass them; ad-hoc callers leave them to be built).

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> (0, 0) in fixpoint_relation(db, "RRX")      # Figure 6: <0, ε>
    True
    """
    q = Word.coerce(q)
    k = len(q)
    if k == 0:
        return {(c, 0) for c in db.adom()}

    # Backward closure: for each prefix length i >= 1 (ending with symbol
    # q[i-1]), the longer prefixes j > i with the same ending symbol.
    if tables is None:
        tables = FixpointTables.build(q)
    longer_same_end = tables.longer_same_end

    # Incoming index: (value, relation) -> keys c with relation(c, value).
    in_index: Dict[Tuple[Hashable, str], List[Hashable]] = {}
    for fact in db.facts:
        in_index.setdefault((fact.value, fact.relation), []).append(fact.key)

    n_set: Set[NPair] = set()
    counters: Dict[NPair, int] = {}
    worklist = deque()

    def add(c: Hashable, length: int) -> None:
        pair = (c, length)
        if pair in n_set:
            return
        n_set.add(pair)
        worklist.append(pair)

    def derive(c: Hashable, length: int) -> None:
        """Forward derivation of (c, u) plus its backward companions."""
        add(c, length)
        if length >= 1:
            for j in longer_same_end[length]:
                add(c, j)

    for c in db.adom():
        add(c, k)

    while worklist:
        y, j = worklist.popleft()
        if j == 0:
            continue
        relation = q[j - 1]
        for c in in_index.get((y, relation), ()):  # facts relation(c, y)
            pair = (c, j - 1)
            if pair in n_set:
                continue
            if pair not in counters:
                counters[pair] = len(db.out_facts(c, relation))
            counters[pair] -= 1
            if counters[pair] == 0:
                derive(c, j - 1)
    return n_set


class CompactNRelation:
    """The Figure 5 relation ``N`` as a bitset over a compact instance.

    One byte per pair ``(c, u)`` at index ``c_lid * (k+1) + |u|``.
    Supports the membership protocol the object-level consumers use
    (``(constant, length) in n``), ``len`` (pair count), and decoding
    back to the tuple-pair set for differential testing.
    """

    __slots__ = ("compact", "k", "stride", "bits", "_count")

    def __init__(self, compact: CompactInstance, k: int, bits: bytearray) -> None:
        self.compact = compact
        self.k = k
        self.stride = k + 1
        self.bits = bits
        self._count: Optional[int] = None

    def __contains__(self, pair: NPair) -> bool:
        constant, length = pair
        lid = self.compact.local_of.get(constant)
        if lid is None or not 0 <= length <= self.k:
            return False
        return self.bits[lid * self.stride + length] != 0

    def __len__(self) -> int:
        if self._count is None:
            self._count = self.bits.count(1)
        return self._count

    def __iter__(self) -> Iterator[NPair]:
        consts = self.compact.consts
        stride = self.stride
        for index, bit in enumerate(self.bits):
            if bit:
                yield (consts[index // stride], index % stride)

    def to_set(self) -> Set[NPair]:
        """Decode into the object-level pair set (differential tests)."""
        return set(self)

    def start_constants(self) -> List[Hashable]:
        """The constants ``c`` with ``(c, ε) ∈ N`` (Lemma 7 witnesses)."""
        consts = self.compact.consts
        return [
            consts[lid]
            for lid, bit in enumerate(self.bits[0 :: self.stride])
            if bit
        ]


def _kernel_plan(compact: CompactInstance, syms: Tuple[str, ...]):
    """The per-``(instance, query-shape)`` arrays of the compact kernel.

    ``inflat[p]`` for the encoded pair ``p = y*(k+1) + j`` is the tuple
    of encoded pairs ``(c, j-1)`` for the in-edges ``q[j-1](c, y)`` --
    the probe targets, pre-scaled so the hot loop does no arithmetic per
    edge.  ``counters`` is the countdown template: the counter of
    ``(c, j-1)`` starts at the fact count of the block ``q[j-1](c, *)``
    (the compact view's per-block counts array slice-copies straight
    into the right positions; zero-degree blocks never receive a
    decrement, so 0 is safe there).  Cached on the immutable view, so a
    warm instance pays only the worklist per solve.
    """

    def build():
        k = len(syms)
        stride = k + 1
        n_all = compact.n * stride
        inflat: List[Tuple[int, ...]] = [()] * n_all
        counters = array("l", [0]) * n_all
        for pos, symbol in enumerate(syms):
            in_rows = compact.in_.get(symbol)
            if in_rows is None:
                continue
            j = pos + 1
            for y, srcs in enumerate(in_rows):
                if srcs:
                    inflat[y * stride + j] = tuple(
                        c * stride + pos for c in srcs
                    )
            counters[pos::stride] = compact.out_deg[symbol]
        return counters, inflat

    return compact.cached_plan(("fixpoint", syms), build)


def fixpoint_bits(
    db,
    q: WordLike,
    tables: Optional[FixpointTables] = None,
    compact: Optional[CompactInstance] = None,
) -> CompactNRelation:
    """The Figure 5 relation ``N``, computed by the compact kernel.

    Semantically identical to :func:`fixpoint_relation`; operationally a
    worklist of ``(const_lid, prefix_len)`` pairs encoded as single
    integers, with bitset membership, per-block countdown counters in
    one flat array, and a pre-scaled in-edge adjacency cached per
    ``(instance, query)`` on the compact view.  *compact* may carry a
    prebuilt view (kernels chained on the same instance reuse it);
    otherwise ``db.compact()`` supplies the cached one.

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> n = fixpoint_bits(db, "RRX")
    >>> (0, 0) in n and n.to_set() == fixpoint_relation(db, "RRX")
    True
    """
    q = Word.coerce(q)
    if compact is None:
        compact = _compact_of(db)
        if compact is None:
            compact = CompactInstance.build(db)
    k = len(q)
    n = compact.n
    stride = k + 1
    alive = compact.alive
    bits = bytearray(n * stride)
    if n == 0:
        return CompactNRelation(compact, k, bits)
    # Init axioms (c, |q|) for every live constant, via byte-slice copy.
    bits[k::stride] = alive
    if k == 0:
        return CompactNRelation(compact, 0, bits)
    if tables is None:
        tables = FixpointTables.build(q)
    longer = tables.longer_list()
    # Backward companions as offsets from the derived pair's encoding:
    # deriving p2 = c*stride + i also derives p2 + (j2 - i) for each
    # longer prefix j2 ending like i.
    comp_off = [tuple(j2 - i for j2 in longer[i]) for i in range(stride)]
    counter_template, inflat = _kernel_plan(compact, q.symbols)
    counters = array("l", counter_template)

    if alive.count(0) == 0:
        work = list(range(k, n * stride, stride))
    else:
        work = [p for p in range(k, n * stride, stride) if bits[p]]
    push = work.append
    pop = work.pop
    while work:
        p = pop()
        j = p % stride
        if j == 0:
            continue
        srcs = inflat[p]
        if not srcs:
            continue
        offs = comp_off[j - 1]
        for p2 in srcs:
            if bits[p2]:
                continue
            count = counters[p2] - 1
            counters[p2] = count
            if count == 0:
                # Forward derivation of (c, j-1) plus its backward
                # companions (the longer prefixes ending the same way).
                bits[p2] = 1
                push(p2)
                for off in offs:
                    p3 = p2 + off
                    if not bits[p3]:
                        bits[p3] = 1
                        push(p3)
    return CompactNRelation(compact, k, bits)


class FixpointState:
    """Persistent Figure 5 state for one ``(db, q)``, maintainable under
    fact deltas -- held in the compact integer representation.

    Holds the relation ``N`` as a growable pair bitset, per-query-symbol
    int in/out adjacency (sparse dicts keyed by local constant id), and
    the per-query prefix tables.  ``apply_delta`` folds a batch of
    inserted/removed facts into ``N`` with the DRed discipline:
    *over-delete* every pair whose derivation may have passed through a
    touched block (closing transitively over the old edges and the
    backward-companion rule), then *re-derive* from the surviving pairs
    -- the worklist is seeded with the touched blocks' candidate pairs,
    the deleted pairs themselves, and the init axioms of newly arrived
    constants, so the work is proportional to the affected region, not
    the database.

    The init axioms ``(c, |q|)`` for ``c ∈ adom`` are never suspected
    (they hold by definition while ``c`` survives in the domain).
    Constants keep their local id for the lifetime of the state;
    departed constants simply hold no pairs and no edges.
    """

    __slots__ = (
        "db",
        "query",
        "tables",
        "starts",
        "_consts",
        "_local_of",
        "_stride",
        "_bits",
        "_count",
        "_in",
        "_out",
        "_longer",
        "_shorter",
    )

    def __init__(
        self,
        db: DatabaseInstance,
        query: Word,
        tables: FixpointTables,
        n_bits: CompactNRelation,
    ) -> None:
        self.db = db
        self.query = query
        self.tables = tables
        compact = n_bits.compact
        self._consts: List[Hashable] = list(compact.consts)
        self._local_of: Dict[Hashable, int] = dict(compact.local_of)
        self._stride = n_bits.stride
        self._bits = bytearray(n_bits.bits)
        self._count = len(n_bits)
        #: Constants c with (c, ε) ∈ N -- the certainty witnesses (Lemma
        #: 7), maintained so answers need no domain scan.
        self.starts: Set[Hashable] = set(n_bits.start_constants())
        # Mutable per-symbol adjacency over local ids, restricted to the
        # query's alphabet (the only relations the Figure 5 rules read).
        self._in: Dict[str, Dict[int, Set[int]]] = {}
        self._out: Dict[str, Dict[int, Set[int]]] = {}
        for symbol in set(query.symbols):
            in_rows = compact.in_.get(symbol)
            out_rows = compact.out.get(symbol)
            self._in[symbol] = (
                {v: set(srcs) for v, srcs in enumerate(in_rows) if srcs}
                if in_rows is not None
                else {}
            )
            self._out[symbol] = (
                {c: set(vals) for c, vals in enumerate(out_rows) if vals}
                if out_rows is not None
                else {}
            )
        self._longer = tables.longer_list()
        self._shorter = tables.shorter_list()

    @classmethod
    def compute(
        cls,
        db: DatabaseInstance,
        q: WordLike,
        tables: Optional[FixpointTables] = None,
    ) -> "FixpointState":
        """Full Figure 5 run, retaining the state for incremental upkeep."""
        q = Word.coerce(q)
        if tables is None:
            tables = FixpointTables.build(q)
        return cls(db, q, tables, fixpoint_bits(db, q, tables=tables))

    # ------------------------------------------------------------------
    # The N-relation protocol (what answer construction reads)
    # ------------------------------------------------------------------

    def __contains__(self, pair: NPair) -> bool:
        constant, length = pair
        lid = self._local_of.get(constant)
        if lid is None or not 0 <= length < self._stride:
            return False
        return self._bits[lid * self._stride + length] != 0

    def __len__(self) -> int:
        return self._count

    @property
    def n_set(self) -> Set[NPair]:
        """The maintained relation decoded to object-level pairs.

        O(|adom|·|q|) per access -- differential tests compare it
        against a fresh :func:`fixpoint_relation` run; hot paths read
        ``starts`` / membership instead.
        """
        stride = self._stride
        consts = self._consts
        return {
            (consts[index // stride], index % stride)
            for index, bit in enumerate(self._bits)
            if bit
        }

    def _ensure(self, constant: Hashable) -> int:
        lid = self._local_of.get(constant)
        if lid is None:
            lid = len(self._consts)
            self._local_of[constant] = lid
            self._consts.append(constant)
            self._bits.extend(b"\x00" * self._stride)
        return lid

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        new_db: DatabaseInstance,
        added: Iterable[Fact],
        removed: Iterable[Fact],
    ) -> None:
        """Update ``N`` in place so it equals ``fixpoint_relation(new_db)``.

        *added* / *removed* is the effective fact delta from ``self.db``
        to *new_db* (as produced by
        :class:`repro.db.delta.DeltaInstance`).
        """
        added = list(added)
        removed = list(removed)
        q = self.query
        k = len(q)
        stride = self._stride
        bits = self._bits
        new_counts = new_db.adom_refcounts()

        delta_constants = set()
        for fact in added:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        for fact in removed:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        for constant in delta_constants:
            self._ensure(constant)
        bits = self._bits  # _ensure may have grown the bitset
        local_of = self._local_of
        consts = self._consts

        if k == 0:
            for constant in delta_constants:
                lid = local_of[constant]
                here = constant in new_counts
                if here and not bits[lid]:
                    bits[lid] = 1
                    self._count += 1
                    self.starts.add(constant)
                elif not here and bits[lid]:
                    bits[lid] = 0
                    self._count -= 1
                    self.starts.discard(constant)
            self.db = new_db
            return

        # Domain churn is read off the refcounts of the constants the
        # delta mentions -- O(delta), not an O(adom) set difference.
        old_counts = self.db.adom_refcounts()
        gone_constants = [
            c for c in delta_constants if c in old_counts and c not in new_counts
        ]
        new_constants = [
            c for c in delta_constants if c not in old_counts and c in new_counts
        ]
        ends_with = self.tables.ends_with
        longer = self._longer
        shorter = self._shorter
        qsyms = q.symbols
        touched = {f.block_id for f in added} | {f.block_id for f in removed}

        # --- Over-deletion: close the suspects over old edges. ---------
        suspects: Set[int] = set()
        queue = deque()

        def suspect(p: int) -> None:
            if p in suspects or not bits[p]:
                return
            if p % stride == k and consts[p // stride] in new_counts:
                return  # init axiom: valid while the constant survives
            suspects.add(p)
            queue.append(p)

        for relation, key in touched:
            lengths = ends_with.get(relation)
            if lengths:
                base = local_of[key] * stride
                for length in lengths:
                    suspect(base + length - 1)
        for constant in gone_constants:
            base = local_of[constant] * stride
            for length in range(stride):
                suspect(base + length)
        while queue:
            p = queue.popleft()
            j = p % stride
            y = p // stride
            base = y * stride
            for j2 in longer[j]:
                suspect(base + j2)  # backward companions derived from (y, j)
            if j >= 1:
                srcs = self._in[qsyms[j - 1]].get(y)
                if srcs:
                    for c in srcs:
                        suspect(c * stride + j - 1)
        for p in suspects:
            bits[p] = 0
            if p % stride == 0:
                self.starts.discard(consts[p // stride])
        self._count -= len(suspects)

        # --- Switch the index and db over to the new instance. ---------
        self._reindex(added, removed)
        self.db = new_db

        # --- Re-derivation from the affected frontier. -----------------
        work: List[int] = []
        push = work.append

        def add(p: int) -> None:
            if bits[p]:
                return
            bits[p] = 1
            self._count += 1
            if p % stride == 0:
                self.starts.add(consts[p // stride])
            push(p)

        def derive(c: int, length: int) -> None:
            base = c * stride
            add(base + length)
            if length >= 1:
                for j in longer[length]:
                    add(base + j)

        def block_satisfied(c: int, symbol: str, j: int) -> bool:
            vals = self._out[symbol].get(c)
            if not vals:
                return False
            for v in vals:
                if not bits[v * stride + j]:
                    return False
            return True

        for constant in new_constants:
            add(local_of[constant] * stride + k)
        candidates: Set[int] = set(suspects)
        for relation, key in touched:
            lengths = ends_with.get(relation)
            if lengths:
                base = local_of[key] * stride
                for length in lengths:
                    candidates.add(base + length - 1)
        for p in candidates:
            if bits[p]:
                continue
            c = p // stride
            i = p % stride
            if i == k:
                if consts[c] in new_counts:
                    add(p)
                continue
            if block_satisfied(c, qsyms[i], i + 1) or any(
                bits[c * stride + i2] for i2 in shorter[i]
            ):
                derive(c, i)
        while work:
            p = work.pop()
            j = p % stride
            if j == 0:
                continue
            symbol = qsyms[j - 1]
            srcs = self._in[symbol].get(p // stride)
            if srcs:
                jm1 = j - 1
                for c in srcs:
                    if bits[c * stride + jm1]:
                        continue
                    if block_satisfied(c, symbol, j):
                        derive(c, jm1)

    def _reindex(
        self, added: Iterable[Fact], removed: Iterable[Fact]
    ) -> None:
        local_of = self._local_of
        for fact in removed:
            in_sym = self._in.get(fact.relation)
            if in_sym is None:
                continue  # relation outside the query alphabet
            key, value = local_of[fact.key], local_of[fact.value]
            srcs = in_sym.get(value)
            if srcs is not None:
                srcs.discard(key)
                if not srcs:
                    del in_sym[value]
            out_sym = self._out[fact.relation]
            vals = out_sym.get(key)
            if vals is not None:
                vals.discard(value)
                if not vals:
                    del out_sym[key]
        for fact in added:
            in_sym = self._in.get(fact.relation)
            if in_sym is None:
                continue
            key, value = local_of[fact.key], local_of[fact.value]
            in_sym.setdefault(value, set()).add(key)
            self._out[fact.relation].setdefault(key, set()).add(value)


def certain_answer_incremental(
    state: FixpointState,
    require_c3: bool = True,
    is_c3: Optional[bool] = None,
) -> CertaintyResult:
    """Read a CERTAINTY(q) answer off a maintained :class:`FixpointState`.

    Same semantics and soundness envelope as
    :func:`certain_answer_fixpoint`, with the ``N`` relation taken from
    the incrementally maintained state instead of a fresh run.
    """
    return _result_from_relation(
        state.db,
        state.query,
        state.tables,
        state,
        require_c3=require_c3,
        is_c3=is_c3,
        method="fixpoint-incremental",
        starts=state.starts,
    )


def build_minimal_repair(
    db: DatabaseInstance,
    q: WordLike,
    n_relation=None,
    tables: Optional[FixpointTables] = None,
) -> DatabaseInstance:
    """The repair ``r*`` of Lemmas 9 / 10.

    For every block ``R(a, *)``: among prefix lengths ``ℓ`` with
    ``q[ℓ-1] = R``, take the largest with ``(a, ℓ-1) ∉ N`` and insert a
    fact ``R(a, b)`` with ``(b, ℓ) ∉ N``; if every such prefix has
    ``(a, ℓ-1) ∈ N``, insert an arbitrary fact.

    *n_relation* may be any ``N`` supporting pair membership (the
    object-level pair set or a :class:`CompactNRelation`); by default
    the compact kernel computes a fresh one.

    This repair is ⪯_q-minimal (Lemma 9); in particular it minimizes
    ``start(q, ·)`` over all repairs (Lemma 6), and whenever ``(c, ε) ∉ N``
    for all ``c`` it contains no path accepted by ``NFA(q)``, hence
    falsifies ``q``.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    if n_relation is None:
        n_relation = fixpoint_bits(db, q, tables=tables)
    ends_with = tables.ends_with

    chosen: List[Fact] = []
    for block in db.blocks():
        lengths = ends_with.get(block.relation, ())
        target_length = None
        for length in sorted(lengths, reverse=True):
            if (block.key, length - 1) not in n_relation:
                target_length = length
                break
        fact = block.facts[0]
        if target_length is not None:
            for candidate in block.facts:
                if (candidate.value, target_length) not in n_relation:
                    fact = candidate
                    break
            else:  # pragma: no cover - contradicts the Iterative Rule
                raise AssertionError(
                    "block {} has no escaping fact; fixpoint inconsistent"
                    .format(block.block_id)
                )
        chosen.append(fact)
    return DatabaseInstance(chosen)


def certain_answer_fixpoint(
    db: DatabaseInstance,
    q: WordLike,
    require_c3: bool = True,
    tables: Optional[FixpointTables] = None,
    is_c3: Optional[bool] = None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) with the Figure 5 algorithm.

    Complete for queries satisfying C3 (Lemmas 7, 10).  For other queries
    the "no" answer (with its falsifying-repair certificate) remains
    sound, but "yes" answers are unsound; by default a :class:`ValueError`
    is raised on a "yes" for a non-C3 query unless *require_c3* is
    disabled (which flags the result as unsound instead -- used by the
    Figure 3 demonstration and as a cheap pre-filter for the SAT solver).

    *tables* and *is_c3* let compiled plans supply the per-query prefix
    tables and the (already classified) C3 status, so the per-instance
    call does no per-query work.  Runs the compact kernel
    (:func:`fixpoint_bits`) whenever *db* carries a compact view
    (``DatabaseInstance`` always does); plain overlays fall back to the
    object-level baseline.
    """
    q = Word.coerce(q)
    if tables is None:
        tables = FixpointTables.build(q)
    compact = _compact_of(db)
    if compact is not None:
        n_relation = fixpoint_bits(db, q, tables=tables, compact=compact)
        starts = set(n_relation.start_constants())
        return _result_from_relation(
            db, q, tables, n_relation, require_c3, is_c3,
            method="fixpoint", starts=starts,
        )
    n_relation = fixpoint_relation(db, q, tables=tables)
    return _result_from_relation(
        db, q, tables, n_relation, require_c3, is_c3, method="fixpoint"
    )


def _result_from_relation(
    db: DatabaseInstance,
    q: Word,
    tables: FixpointTables,
    n_relation,
    require_c3: bool,
    is_c3: Optional[bool],
    method: str,
    starts: Optional[Set[Hashable]] = None,
) -> CertaintyResult:
    """Shared answer construction for the fresh and incremental paths.

    *n_relation* is any ``N`` view supporting ``len`` and pair
    membership; *starts* may carry the witness set ``{c : (c, ε) ∈ N}``
    (the compact kernel and the incremental state pass it), replacing
    the domain scan.
    """
    if starts is not None:
        witness = min(starts, key=str) if starts else None
    else:
        witness = None
        for c in db.sorted_adom():
            if (c, 0) in n_relation:
                witness = c
                break
    details: Dict[str, object] = {"n_size": len(n_relation)}
    if witness is not None:
        if is_c3 is None:
            is_c3 = satisfies_c3(q)
        if not is_c3:
            if require_c3:
                raise ValueError(
                    "query {} violates C3: the fixpoint algorithm is not "
                    "complete for it (pass require_c3=False to get the "
                    "unsound answer)".format(q)
                )
            details["sound"] = False
        else:
            details["sound"] = True
        return CertaintyResult(
            query=str(q),
            answer=True,
            method=method,
            witness_constant=witness,
            details=details,
        )
    details["sound"] = True
    return CertaintyResult(
        query=str(q),
        answer=False,
        method=method,
        # Lazy: the Lemma 9 construction is O(db); an update stream that
        # never reads the certificate should not pay for it per decision.
        # The (rarely read) certificate recomputes its own N on demand:
        # the incremental path's maintained N mutates under later deltas,
        # and holding the O(|q|·|adom|) relation alive on every unread
        # "no" result costs more than the occasional re-run.  The source
        # is a picklable data carrier, so laziness survives pool hops.
        falsifying_repair=LazyMinimalRepair(db, q),
        details=details,
    )
