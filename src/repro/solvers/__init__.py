"""Solvers for CERTAINTY(q): the paper's algorithms and baselines.

* :mod:`repro.solvers.fixpoint` -- the polynomial-time algorithm of
  Figure 5 (complete for C3 queries; sound for "no" on all queries),
  including the Lemma 9/10 minimal-repair construction used as a
  verifiable "no" certificate;
* :mod:`repro.solvers.fo_solver` -- the first-order rewriting solver
  (Lemmas 12, 13; C1 queries);
* :mod:`repro.solvers.nl_solver` -- the linear-Datalog solver
  (Lemma 14; C2 queries);
* :mod:`repro.solvers.brute_force` -- exhaustive repair enumeration
  (exponential baseline, ground truth for tests);
* :mod:`repro.solvers.sat` / :mod:`repro.solvers.sat_encoding` -- a DPLL
  SAT solver and the CAvSAT-style encoding (generic baseline; the workhorse
  for coNP-complete queries);
* :mod:`repro.solvers.certainty` -- the classification-driven front end;
* :mod:`repro.solvers.generalized_solver` -- queries with constants
  (Section 8).
"""

from repro.solvers.result import CertaintyResult
from repro.solvers.fixpoint import (
    FixpointState,
    build_minimal_repair,
    certain_answer_fixpoint,
    certain_answer_incremental,
    fixpoint_relation,
)
from repro.solvers.state_cache import StateCache
from repro.solvers.fo_solver import certain_answer_fo
from repro.solvers.nl_solver import certain_answer_nl
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.sat import solve_clauses
from repro.solvers.sat_encoding import certain_answer_sat, encode_falsifying_repair
from repro.solvers.certainty import certain_answer
from repro.solvers.generalized_solver import certain_answer_generalized
from repro.solvers.answers import certain_head_answers, certain_tail_answers
from repro.solvers.counting import (
    count_satisfying_repairs,
    estimate_satisfying_fraction,
)
from repro.solvers.verify import verify_result

__all__ = [
    "CertaintyResult",
    "FixpointState",
    "build_minimal_repair",
    "certain_answer_fixpoint",
    "certain_answer_incremental",
    "fixpoint_relation",
    "certain_answer_fo",
    "certain_answer_nl",
    "certain_answer_brute_force",
    "solve_clauses",
    "certain_answer_sat",
    "encode_falsifying_repair",
    "certain_answer",
    "certain_answer_generalized",
    "certain_head_answers",
    "certain_tail_answers",
    "count_satisfying_repairs",
    "estimate_satisfying_fraction",
    "verify_result",
]
