"""CERTAINTY(q) for generalized path queries (Section 8).

By Lemma 25 (variable-disjoint components combine conjunctively) and
Lemma 28, ``CERTAINTY(q)`` splits into

* ``CERTAINTY(char(q))`` -- handled via the ``ext(q)`` reduction of
  Lemmas 26/29: add one fresh fact ``N(c, d)`` and decide the constant-free
  path query ``ext(q) = char-word · N`` with the Theorem 3 machinery; and
* ``CERTAINTY(q \\ char(q))`` -- a union of constant-rooted segments, each
  in FO (Lemma 27): rooted certainty, with a pinned endpoint when the
  segment ends at a constant (Lemma 26).
"""

from __future__ import annotations

from typing import Hashable

from repro.db.instance import DatabaseInstance
from repro.db.paths import rooted_certainty
from repro.queries.generalized import GeneralizedPathQuery, Segment
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike


def rooted_certainty_to(
    db: DatabaseInstance, trace: WordLike, root: Hashable, end: Hashable
) -> bool:
    """Certainty of a segment pinned at both ends (Lemma 26).

    Does every repair have a *trace*-path from *root* ending exactly at
    *end*?  Equivalent to the Lemma 26 reduction (append a fresh relation
    ``N`` and a single fact ``N(end, d)``), specialized to a direct
    recursion: at the last position the reached constant must be *end*.
    """
    trace = Word.coerce(trace)
    memo = {}

    def certain(position: int, constant: Hashable) -> bool:
        if position == len(trace):
            return constant == end
        key = (position, constant)
        if key in memo:
            return memo[key]
        block = db.out_facts(constant, trace[position])
        result = bool(block) and all(
            certain(position + 1, fact.value) for fact in block
        )
        memo[key] = result
        return result

    return certain(0, root)


def _segment_certain(db: DatabaseInstance, segment: Segment) -> bool:
    if not segment.word:
        return True
    if segment.end is None:
        return rooted_certainty(db, segment.word, segment.root)
    return rooted_certainty_to(db, segment.word, segment.root, segment.end)


def certain_answer_generalized(
    db: DatabaseInstance,
    query: GeneralizedPathQuery,
    method: str = "auto",
    engine=None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a generalized path query.

    The segment split, ``char(q)`` and the ``ext(q)`` reduction word are
    compiled once per query and cached by *engine* (the process-wide
    :func:`repro.engine.default_engine` when omitted); this call performs
    only the per-instance segment checks and the inner ``ext(q)``
    decision.

    >>> q = GeneralizedPathQuery("RS", {2: "t"})       # R(x,y), S(y,'t')
    >>> db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
    >>> certain_answer_generalized(db, q).answer
    True
    """
    if engine is None:
        from repro.engine.engine import default_engine

        engine = default_engine()
    return engine.solve(db, query, method=method)
