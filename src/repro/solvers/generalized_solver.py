"""CERTAINTY(q) for generalized path queries (Section 8).

By Lemma 25 (variable-disjoint components combine conjunctively) and
Lemma 28, ``CERTAINTY(q)`` splits into

* ``CERTAINTY(char(q))`` -- handled via the ``ext(q)`` reduction of
  Lemmas 26/29: add one fresh fact ``N(c, d)`` and decide the constant-free
  path query ``ext(q) = char-word · N`` with the Theorem 3 machinery; and
* ``CERTAINTY(q \\ char(q))`` -- a union of constant-rooted segments, each
  in FO (Lemma 27): rooted certainty, with a pinned endpoint when the
  segment ends at a constant (Lemma 26).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

from repro.db.delta import DeltaInstance
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.paths import rooted_certainty
from repro.queries.generalized import GeneralizedPathQuery, Segment
from repro.solvers.fixpoint import FixpointState, certain_answer_incremental
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike


def rooted_certainty_to(
    db: DatabaseInstance, trace: WordLike, root: Hashable, end: Hashable
) -> bool:
    """Certainty of a segment pinned at both ends (Lemma 26).

    Does every repair have a *trace*-path from *root* ending exactly at
    *end*?  Equivalent to the Lemma 26 reduction (append a fresh relation
    ``N`` and a single fact ``N(end, d)``), specialized to a direct
    recursion: at the last position the reached constant must be *end*.
    """
    trace = Word.coerce(trace)
    memo = {}

    def certain(position: int, constant: Hashable) -> bool:
        if position == len(trace):
            return constant == end
        key = (position, constant)
        if key in memo:
            return memo[key]
        block = db.out_facts(constant, trace[position])
        result = bool(block) and all(
            certain(position + 1, fact.value) for fact in block
        )
        memo[key] = result
        return result

    return certain(0, root)


def _segment_certain(db: DatabaseInstance, segment: Segment) -> bool:
    if not segment.word:
        return True
    if segment.end is None:
        return rooted_certainty(db, segment.word, segment.root)
    return rooted_certainty_to(db, segment.word, segment.root, segment.end)


class GeneralizedState:
    """Maintained CERTAINTY(q) for a constant-carrying generalized query.

    The update-path twin of :class:`~repro.solvers.fixpoint.FixpointState`
    for Section 8 queries: the Lemma 27 segment verdicts and the Lemma 29
    ``ext(q)`` decision are computed once and then *maintained* under
    deltas --

    * a segment is re-checked only when the delta touches a relation in
      its word (segment certainty depends on nothing else);
    * the ``ext(q)`` word's Figure 5 fixpoint lives in a maintained
      :class:`FixpointState` over the extended instance (the base plus
      the one fresh ``N(c, d)`` fact), so each delta folds in with DRed
      instead of re-running the fixpoint;
    * if the delta collides with the reduction itself (it mentions the
      fresh relation, or introduces the fresh sink constant into the
      active domain), the state recomputes from scratch -- the same
      decision procedure, so answers stay identical to a cold solve.

    Constructed by the engine's ``solve_delta`` via :meth:`compute` with
    the compiled generalized plan and the compiled ``ext(q)`` word plan;
    cached in the engine's ``StateCache`` under the query's plan key.

    >>> from repro.engine.plan import CompiledGeneralizedQuery, CompiledQuery
    >>> q = GeneralizedPathQuery("RS", {2: "t"})       # R(x,y), S(y,'t')
    >>> plan = CompiledGeneralizedQuery(q)
    >>> inner = CompiledQuery(plan.ext_word)
    >>> db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
    >>> state = GeneralizedState.compute(db, plan, inner)
    >>> state.result().answer
    True
    >>> wide = db.with_facts([Fact("S", "b", "u")])    # S(b,.) block forks
    >>> state.apply_delta(wide, [Fact("S", "b", "u")], []).result().answer
    False
    """

    __slots__ = (
        "plan",
        "inner_plan",
        "db",
        "segment_ok",
        "segment_alphabet",
        "fresh_constant",
        "fresh_fact",
        "ext_db",
        "ext_state",
        "_inner_answer",
        "_inner_method",
        "_inner_witness",
    )

    def __init__(self, db: DatabaseInstance, plan, inner_plan) -> None:
        self.plan = plan
        self.inner_plan = inner_plan
        self.segment_alphabet: Tuple[frozenset, ...] = tuple(
            frozenset(seg.word[i] for i in range(len(seg.word)))
            for seg in plan.segments
        )
        self._recompute(db)

    @classmethod
    def compute(cls, db: DatabaseInstance, plan, inner_plan) -> "GeneralizedState":
        """Full run over *db*, retaining the state for incremental upkeep."""
        return cls(db, plan, inner_plan)

    def _recompute(self, db: DatabaseInstance) -> None:
        self.db = db
        self.segment_ok: List[bool] = [
            _segment_certain(db, seg) for seg in self.plan.segments
        ]
        if self.plan.ext_word is None:
            self.fresh_constant = None
            self.fresh_fact = None
            self.ext_db = None
            self.ext_state = None
            self._inner_answer = True
            self._inner_method = None
            self._inner_witness = None
            return
        fresh = "_ext_sink"
        adom = db.adom()
        while fresh in adom:
            fresh += "_"
        self.fresh_constant = fresh
        self.fresh_fact = Fact(
            self.plan.fresh_relation, self.plan.char.terminal, fresh
        )
        self.ext_db = db.with_facts([self.fresh_fact])
        self.ext_state = FixpointState.compute(
            self.ext_db, self.inner_plan.word, tables=self.inner_plan.tables
        )
        self._refresh_inner()

    def _refresh_inner(self) -> None:
        """Read the ext(q) decision off the maintained fixpoint.

        C3 ``ext(q)`` words are decided exactly by the relation ``N``;
        for C3-violating words the maintained state is the sound "no"
        pre-filter and a surviving "yes" re-solves via the inner plan's
        SAT skeleton on the extended instance (same envelope as the
        engine's word-level delta route).
        """
        is_c3 = self.inner_plan.classification.c3
        inner = certain_answer_incremental(
            self.ext_state, require_c3=False, is_c3=is_c3
        )
        if not is_c3 and inner.answer:
            inner = self.inner_plan.sat_skeleton.solve(self.ext_db)
        self._inner_answer = inner.answer
        self._inner_method = inner.method
        self._inner_witness = inner.witness_constant

    def apply_delta(
        self,
        new_db: DatabaseInstance,
        added: Iterable[Fact],
        removed: Iterable[Fact],
    ) -> "GeneralizedState":
        """Fold a committed delta in; *new_db* is the post-delta instance."""
        added = list(added)
        removed = list(removed)
        touched = {fact.relation for fact in added} | {
            fact.relation for fact in removed
        }
        if self.plan.ext_word is not None and (
            self.plan.fresh_relation in touched
            or any(
                self.fresh_constant in (fact.key, fact.value)
                for fact in added
            )
        ):
            self._recompute(new_db)
            return self
        for index, segment in enumerate(self.plan.segments):
            if self.segment_alphabet[index] & touched:
                self.segment_ok[index] = _segment_certain(new_db, segment)
        if self.plan.ext_word is not None:
            # Patch the maintained extended instance in O(delta) -- the
            # guard above ensured the delta cannot touch the fresh fact,
            # so (db + fresh) - removed + added == new_db + fresh.
            overlay = DeltaInstance(self.ext_db)
            for fact in removed:
                overlay.remove_fact(fact)
            for fact in added:
                overlay.insert_fact(fact)
            self.ext_db = overlay.commit()
            self.ext_state.apply_delta(self.ext_db, added, removed)
            self._refresh_inner()
        self.db = new_db
        return self

    def result(self) -> CertaintyResult:
        """The current CERTAINTY(q) verdict as a fresh result object."""
        query_str = str(self.plan.query)
        for ok, segment in zip(self.segment_ok, self.plan.segments):
            if not ok:
                return CertaintyResult(
                    query=query_str,
                    answer=False,
                    method="generalized",
                    details={"failed_segment": str(segment)},
                )
        if self.plan.ext_word is None:
            return CertaintyResult(
                query=query_str,
                answer=True,
                method="generalized",
                details={"char": "empty"},
            )
        return CertaintyResult(
            query=query_str,
            answer=self._inner_answer,
            method="generalized",
            witness_constant=self._inner_witness,
            details={
                "char_reduction": str(self.plan.ext_word),
                "inner_method": self._inner_method,
            },
        )


def certain_answer_generalized(
    db: DatabaseInstance,
    query: GeneralizedPathQuery,
    method: str = "auto",
    engine=None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a generalized path query.

    The segment split, ``char(q)`` and the ``ext(q)`` reduction word are
    compiled once per query and cached by *engine* (the process-wide
    :func:`repro.engine.default_engine` when omitted); this call performs
    only the per-instance segment checks and the inner ``ext(q)``
    decision.

    >>> q = GeneralizedPathQuery("RS", {2: "t"})       # R(x,y), S(y,'t')
    >>> db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
    >>> certain_answer_generalized(db, q).answer
    True
    """
    if engine is None:
        from repro.engine.engine import default_engine

        engine = default_engine()
    return engine.solve(db, query, method=method)
