"""CERTAINTY(q) for generalized path queries (Section 8).

By Lemma 25 (variable-disjoint components combine conjunctively) and
Lemma 28, ``CERTAINTY(q)`` splits into

* ``CERTAINTY(char(q))`` -- handled via the ``ext(q)`` reduction of
  Lemmas 26/29: add one fresh fact ``N(c, d)`` and decide the constant-free
  path query ``ext(q) = char-word · N`` with the Theorem 3 machinery; and
* ``CERTAINTY(q \\ char(q))`` -- a union of constant-rooted segments, each
  in FO (Lemma 27): rooted certainty, with a pinned endpoint when the
  segment ends at a constant (Lemma 26).
"""

from __future__ import annotations

from typing import Hashable

from repro.db.instance import DatabaseInstance
from repro.db.facts import Fact
from repro.db.paths import rooted_certainty
from repro.queries.generalized import GeneralizedPathQuery, Segment
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike


def rooted_certainty_to(
    db: DatabaseInstance, trace: WordLike, root: Hashable, end: Hashable
) -> bool:
    """Certainty of a segment pinned at both ends (Lemma 26).

    Does every repair have a *trace*-path from *root* ending exactly at
    *end*?  Equivalent to the Lemma 26 reduction (append a fresh relation
    ``N`` and a single fact ``N(end, d)``), specialized to a direct
    recursion: at the last position the reached constant must be *end*.
    """
    trace = Word.coerce(trace)
    memo = {}

    def certain(position: int, constant: Hashable) -> bool:
        if position == len(trace):
            return constant == end
        key = (position, constant)
        if key in memo:
            return memo[key]
        block = db.out_facts(constant, trace[position])
        result = bool(block) and all(
            certain(position + 1, fact.value) for fact in block
        )
        memo[key] = result
        return result

    return certain(0, root)


def _segment_certain(db: DatabaseInstance, segment: Segment) -> bool:
    if not segment.word:
        return True
    if segment.end is None:
        return rooted_certainty(db, segment.word, segment.root)
    return rooted_certainty_to(db, segment.word, segment.root, segment.end)


def certain_answer_generalized(
    db: DatabaseInstance,
    query: GeneralizedPathQuery,
    method: str = "auto",
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a generalized path query.

    >>> q = GeneralizedPathQuery("RS", {2: "t"})       # R(x,y), S(y,'t')
    >>> db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
    >>> certain_answer_generalized(db, q).answer
    True
    """
    from repro.solvers.certainty import certain_answer

    if not query.has_constants():
        return certain_answer(db, query.word, method=method)

    details = {}
    # 1. The constant-rooted remainder, segment by segment (Lemma 27).
    failed_segment = None
    for segment in query.segments():
        if not _segment_certain(db, segment):
            failed_segment = segment
            break
    if failed_segment is not None:
        return CertaintyResult(
            query=str(query),
            answer=False,
            method="generalized",
            details={"failed_segment": str(failed_segment)},
        )

    # 2. The characteristic prefix, via the ext(q) reduction (Lemma 29).
    char = query.char()
    if not char.word:
        return CertaintyResult(
            query=str(query),
            answer=True,
            method="generalized",
            details={"char": "empty"},
        )
    ext_query = query.ext()
    fresh_relation = ext_query.word.last()
    fresh_constant = "_ext_sink"
    while fresh_constant in db.adom():
        fresh_constant += "_"
    extended = db.with_facts(
        [Fact(fresh_relation, char.terminal, fresh_constant)]
    )
    inner = certain_answer(extended, ext_query.word, method=method)
    details["char_reduction"] = str(ext_query.word)
    details["inner_method"] = inner.method
    return CertaintyResult(
        query=str(query),
        answer=inner.answer,
        method="generalized",
        witness_constant=inner.witness_constant,
        details=details,
    )
