"""Independent verification of solver results and certificates.

Every :class:`~repro.solvers.result.CertaintyResult` carries evidence:
a witness start constant on "yes" (Lemma 7) or a falsifying repair on
"no".  This module checks that evidence *without trusting the solver
that produced it* -- the checks only use repair enumeration primitives
and single-instance query evaluation.

Used by the test-suite and available to downstream users who want
auditable answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.automata.query_nfa import query_nfa
from repro.automata.runs import good_product_states
from repro.db.evaluation import path_query_satisfied
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repairs
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying a result's certificate."""

    ok: bool
    checks: List[str]
    failures: List[str]

    def __bool__(self) -> bool:
        return self.ok


def verify_result(
    db: DatabaseInstance,
    q: WordLike,
    result: CertaintyResult,
    full_enumeration_limit: Optional[int] = 10_000,
) -> VerificationReport:
    """Verify *result* against *db* and *q*.

    * "no" with a falsifying repair: check it is a repair of *db* and
      does not satisfy *q* -- a complete, trustless proof of "no".
    * "yes" with a witness constant ``c``: check that every repair has a
      path from ``c`` accepted by ``NFA(q)`` (sufficient for "yes" under
      C3 by Lemma 7).  This requires repair enumeration and is only run
      when the repair count is at most *full_enumeration_limit*.
    * additionally, when enumeration is affordable, recompute the answer
      definitionally and compare.
    """
    q = Word.coerce(q)
    checks: List[str] = []
    failures: List[str] = []

    if not result.answer and result.falsifying_repair is not None:
        repair = result.falsifying_repair
        if repair.is_repair_of(db):
            checks.append("falsifying repair is a repair of db")
        else:
            failures.append("claimed falsifying repair is not a repair of db")
        if not path_query_satisfied(q, repair):
            checks.append("falsifying repair does not satisfy q")
        else:
            failures.append("claimed falsifying repair satisfies q")

    affordable = (
        full_enumeration_limit is None
        or count_repairs(db) <= full_enumeration_limit
    )
    if affordable:
        definitional = all(
            path_query_satisfied(q, repair) for repair in iter_repairs(db)
        )
        if definitional == result.answer:
            checks.append("answer matches definitional repair enumeration")
        else:
            failures.append(
                "answer {} but repair enumeration says {}".format(
                    result.answer, definitional
                )
            )
        if result.answer and result.witness_constant is not None:
            nfa = query_nfa(q)
            witness_ok = all(
                (result.witness_constant, nfa.initial)
                in good_product_states(repair, nfa)
                for repair in iter_repairs(db)
            )
            if witness_ok:
                checks.append(
                    "witness constant starts an accepted path in every repair"
                )
            else:
                failures.append("witness constant fails in some repair")

    if not checks and not failures:
        checks.append("nothing verifiable (no certificate, enumeration skipped)")
    return VerificationReport(ok=not failures, checks=checks, failures=failures)
