"""Self-contained SAT solvers (substrate for the coNP baseline).

Clauses are lists of nonzero integers (DIMACS convention: ``v`` means the
variable ``v`` is true, ``-v`` that it is false).  Two solvers share the
convention:

* :func:`solve_clauses` -- one-shot DPLL with unit propagation,
  pure-literal elimination at the root, and a most-frequent-literal
  branching heuristic.  Ample for the instance sizes the CQA encodings
  produce, dependency-free by design, and retained as the fresh-solve
  differential baseline.
* :class:`IncrementalSatSolver` -- an iterative CDCL solver (two-watched
  literals, 1UIP clause learning with backjumping, phase saving) that
  **persists across calls**: clauses stay loaded, learned clauses and
  saved phases survive, and each :meth:`~IncrementalSatSolver.solve`
  call takes a list of *assumption* literals fixed before search.  The
  engine's delta-aware coNP route keeps one solver per resident and
  toggles selector assumptions instead of re-encoding the CNF.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

Clause = Sequence[int]


class SatStats:
    """Mutable solver statistics (decisions / propagations)."""

    __slots__ = ("decisions", "propagations")

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0


def _propagate(
    clauses: List[List[int]], assignment: Dict[int, bool], stats: SatStats
) -> Optional[List[List[int]]]:
    """Unit propagation; returns the simplified clause set or ``None`` on
    conflict.  *assignment* is extended in place."""
    changed = True
    current = clauses
    while changed:
        changed = False
        simplified: List[List[int]] = []
        for clause in current:
            satisfied = False
            remaining: List[int] = []
            for literal in clause:
                var = abs(literal)
                value = assignment.get(var)
                if value is None:
                    remaining.append(literal)
                elif (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not remaining:
                return None
            if len(remaining) == 1:
                literal = remaining[0]
                var = abs(literal)
                value = literal > 0
                existing = assignment.get(var)
                if existing is None:
                    assignment[var] = value
                    stats.propagations += 1
                    changed = True
                elif existing != value:
                    return None
                continue
            simplified.append(remaining)
        current = simplified
    return current


def _choose_literal(clauses: List[List[int]]) -> int:
    """Branch on the most frequent literal (ties broken by magnitude)."""
    counts: Dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            counts[literal] = counts.get(literal, 0) + 1
    return max(sorted(counts), key=lambda l: counts[l])


def _dpll(
    clauses: List[List[int]], assignment: Dict[int, bool], stats: SatStats
) -> Optional[Dict[int, bool]]:
    simplified = _propagate(clauses, assignment, stats)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    literal = _choose_literal(simplified)
    stats.decisions += 1
    for value in ((literal > 0), (literal < 0)):
        trial = dict(assignment)
        trial[abs(literal)] = value
        result = _dpll(simplified, trial, stats)
        if result is not None:
            return result
    return None


def solve_clauses(
    clauses: Iterable[Clause], stats: Optional[SatStats] = None
) -> Optional[Dict[int, bool]]:
    """Solve a CNF given as integer clauses.

    Returns a satisfying assignment ``{variable: bool}`` (unmentioned
    variables are unconstrained and absent), or ``None`` if unsatisfiable.

    >>> sorted(solve_clauses([[1, 2], [-1], [-2, 3]]).items())
    [(1, False), (2, True), (3, True)]
    >>> solve_clauses([[1], [-1]]) is None
    True
    """
    stats = stats or SatStats()
    materialized: List[List[int]] = []
    for clause in clauses:
        clause = list(clause)
        if any(literal == 0 for literal in clause):
            raise ValueError("literal 0 is not allowed")
        if any(-literal in clause for literal in clause):
            continue  # tautology
        materialized.append(clause)
    # Pure-literal elimination at the root.
    assignment: Dict[int, bool] = {}
    while True:
        literals = {l for clause in materialized for l in clause}
        pure = {l for l in literals if -l not in literals}
        if not pure:
            break
        for literal in pure:
            assignment.setdefault(abs(literal), literal > 0)
        materialized = [
            clause
            for clause in materialized
            if not any(l in pure for l in clause)
        ]
    return _dpll(materialized, assignment, stats)


def is_satisfiable(clauses: Iterable[Clause]) -> bool:
    """Convenience wrapper returning only satisfiability."""
    return solve_clauses(clauses) is not None


class IncrementalSatSolver:
    """A persistent CDCL solver: solve under assumptions, keep learning.

    The clause database only grows (:meth:`add_clause`); deactivation is
    the *caller's* protocol: guard a retractable clause ``C`` with a
    fresh selector variable ``s`` by adding ``C + [-s]`` and passing
    ``s`` in *assumptions* while the clause should hold.  Without the
    assumption the solver may satisfy the stored clause by setting ``s``
    false, so the group is inert -- and every learned clause inherits the
    ``-s`` literals of the groups it was derived from, which keeps the
    learned database sound under any later activation pattern.

    Between calls the solver retains all clauses (including learned
    ones), variable activities, and saved phases, so a re-solve after a
    small change replays yesterday's search order instead of starting
    cold.

    >>> solver = IncrementalSatSolver()
    >>> solver.add_clause([1, 2]); solver.add_clause([-1, 2])
    >>> model = solver.solve()
    >>> model[2]
    True
    >>> solver.add_clause([-2, 3, -4])        # guarded by selector 4
    >>> solver.solve(assumptions=[4]) is not None
    True
    >>> solver.add_clause([-3, -4])
    >>> solver.solve(assumptions=[4, 2, 3]) is None   # 2,3,-3 forced
    True
    >>> solver.solve(assumptions=[2, 3]) is not None  # group 4 inert
    True
    """

    __slots__ = (
        "stats",
        "learned",
        "_clauses",
        "_n_original",
        "_watches",
        "_units",
        "_assign",
        "_level",
        "_reason",
        "_trail",
        "_trail_lim",
        "_qhead",
        "_phase",
        "_activity",
        "_var_inc",
        "_vars",
        "_unsat",
    )

    def __init__(self) -> None:
        self.stats = SatStats()
        #: Learned clauses retained since construction.
        self.learned = 0
        self._clauses: List[List[int]] = []
        self._n_original = 0
        self._watches: Dict[int, List[int]] = {}
        self._units: List[int] = []
        self._assign: Dict[int, bool] = {}
        self._level: Dict[int, int] = {}
        self._reason: Dict[int, Optional[int]] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._phase: Dict[int, bool] = {}
        self._activity: Dict[int, float] = {}
        self._var_inc = 1.0
        self._vars: Set[int] = set()
        self._unsat = False

    @property
    def clause_count(self) -> int:
        """Clauses currently loaded (originals plus learned)."""
        return len(self._clauses)

    def add_clause(self, clause: Iterable[int]) -> None:
        """Load one clause permanently into the solver."""
        clause = list(clause)
        if any(literal == 0 for literal in clause):
            raise ValueError("literal 0 is not allowed")
        if any(-literal in clause for literal in clause):
            return  # tautology
        clause = list(dict.fromkeys(clause))
        for literal in clause:
            var = abs(literal)
            self._vars.add(var)
            self._activity.setdefault(var, 0.0)
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        self._attach(clause)
        self._n_original += 1

    def _attach(self, clause: List[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    def _value(self, literal: int) -> Optional[bool]:
        value = self._assign.get(abs(literal))
        if value is None:
            return None
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        var = abs(literal)
        value = literal > 0
        existing = self._assign.get(var)
        if existing is not None:
            return existing == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)
        self.stats.propagations += 1
        return True

    def _propagate(self) -> Optional[int]:
        """Exhaust unit propagation; the conflicting clause index or None."""
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            watchers = self._watches.get(-p)
            if not watchers:
                continue
            kept: List[int] = []
            conflict: Optional[int] = None
            for position, ci in enumerate(watchers):
                clause = self._clauses[ci]
                if clause[0] == -p:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    kept.append(ci)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(ci)
                        break
                else:
                    kept.append(ci)
                    if self._value(first) is False:
                        kept.extend(watchers[position + 1:])
                        conflict = ci
                        break
                    self._enqueue(first, ci)
            self._watches[-p] = kept
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    def _bump(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """1UIP conflict analysis: (learned clause, backjump level)."""
        learnt: List[int] = []
        seen: Set[int] = set()
        counter = 0
        current = len(self._trail_lim)
        reason_clause = self._clauses[conflict]
        p: Optional[int] = None
        index = len(self._trail) - 1
        while True:
            for literal in reason_clause:
                if p is not None and literal == p:
                    continue
                var = abs(literal)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] >= current:
                    counter += 1
                else:
                    learnt.append(literal)
            while abs(self._trail[index]) not in seen:
                index -= 1
            p = self._trail[index]
            seen.discard(abs(p))
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason_index = self._reason[abs(p)]
            assert reason_index is not None
            reason_clause = self._clauses[reason_index]
        learnt.insert(0, -p)
        back = 0
        if len(learnt) > 1:
            # Move the highest-level tail literal to the watch slot.
            best = max(
                range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])]
            )
            learnt[1], learnt[best] = learnt[best], learnt[1]
            back = self._level[abs(learnt[1])]
        return learnt, back

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                literal = self._trail.pop()
                var = abs(literal)
                self._phase[var] = self._assign.pop(var)
                self._level.pop(var, None)
                self._reason.pop(var, None)
        self._qhead = min(self._qhead, len(self._trail))

    def _decide(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for var in self._vars:
            if var in self._assign:
                continue
            act = self._activity.get(var, 0.0)
            if act > best_act or (act == best_act and (
                    best_var is None or var < best_var)):
                best_var = var
                best_act = act
        if best_var is None:
            return None
        return best_var if self._phase.get(best_var, True) else -best_var

    def solve(
        self, assumptions: Sequence[int] = ()
    ) -> Optional[Dict[int, bool]]:
        """Search under *assumptions*; a model dict or ``None`` (UNSAT).

        The returned model covers every variable the solver has seen.
        ``None`` means unsatisfiable *under these assumptions* -- other
        assumption sets may still be satisfiable.
        """
        if self._unsat:
            return None
        self._backjump(0)
        self._qhead = 0
        for literal in self._units:
            if not self._enqueue(literal, None):
                self._unsat = True
                return None
        if self._propagate() is not None:
            self._unsat = True
            return None
        assumptions = list(assumptions)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                if not self._trail_lim:
                    return None  # conflict at root: globally UNSAT
                learnt, back = self._analyze(conflict)
                # Never backjump into the assumption prefix's middle: the
                # main loop re-asserts assumptions as needed.
                self._backjump(back)
                self.learned += 1
                self._var_inc *= 1.05
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        return None
                else:
                    index = self._attach(learnt)
                    self._n_original -= 1  # _attach counts originals
                    self._enqueue(learnt[0], index)
                continue
            level = len(self._trail_lim)
            if level < len(assumptions):
                literal = assumptions[level]
                value = self._value(literal)
                if value is False:
                    return None  # UNSAT under assumptions
                self._trail_lim.append(len(self._trail))
                if value is None:
                    self._enqueue(literal, None)
                continue
            decision = self._decide()
            if decision is None:
                model = dict(self._assign)
                for var in self._vars:
                    model.setdefault(var, self._phase.get(var, True))
                return model
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)
