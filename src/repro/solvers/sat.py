"""A self-contained DPLL SAT solver (substrate for the coNP baseline).

Clauses are lists of nonzero integers (DIMACS convention: ``v`` means the
variable ``v`` is true, ``-v`` that it is false).  The solver runs DPLL
with unit propagation, pure-literal elimination at the root, and a
most-frequent-literal branching heuristic -- ample for the instance sizes
the CQA encodings produce, and dependency-free by design.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

Clause = Sequence[int]


class SatStats:
    """Mutable solver statistics (decisions / propagations)."""

    __slots__ = ("decisions", "propagations")

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0


def _propagate(
    clauses: List[List[int]], assignment: Dict[int, bool], stats: SatStats
) -> Optional[List[List[int]]]:
    """Unit propagation; returns the simplified clause set or ``None`` on
    conflict.  *assignment* is extended in place."""
    changed = True
    current = clauses
    while changed:
        changed = False
        simplified: List[List[int]] = []
        for clause in current:
            satisfied = False
            remaining: List[int] = []
            for literal in clause:
                var = abs(literal)
                value = assignment.get(var)
                if value is None:
                    remaining.append(literal)
                elif (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not remaining:
                return None
            if len(remaining) == 1:
                literal = remaining[0]
                var = abs(literal)
                value = literal > 0
                existing = assignment.get(var)
                if existing is None:
                    assignment[var] = value
                    stats.propagations += 1
                    changed = True
                elif existing != value:
                    return None
                continue
            simplified.append(remaining)
        current = simplified
    return current


def _choose_literal(clauses: List[List[int]]) -> int:
    """Branch on the most frequent literal (ties broken by magnitude)."""
    counts: Dict[int, int] = {}
    for clause in clauses:
        for literal in clause:
            counts[literal] = counts.get(literal, 0) + 1
    return max(sorted(counts), key=lambda l: counts[l])


def _dpll(
    clauses: List[List[int]], assignment: Dict[int, bool], stats: SatStats
) -> Optional[Dict[int, bool]]:
    simplified = _propagate(clauses, assignment, stats)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    literal = _choose_literal(simplified)
    stats.decisions += 1
    for value in ((literal > 0), (literal < 0)):
        trial = dict(assignment)
        trial[abs(literal)] = value
        result = _dpll(simplified, trial, stats)
        if result is not None:
            return result
    return None


def solve_clauses(
    clauses: Iterable[Clause], stats: Optional[SatStats] = None
) -> Optional[Dict[int, bool]]:
    """Solve a CNF given as integer clauses.

    Returns a satisfying assignment ``{variable: bool}`` (unmentioned
    variables are unconstrained and absent), or ``None`` if unsatisfiable.

    >>> sorted(solve_clauses([[1, 2], [-1], [-2, 3]]).items())
    [(1, False), (2, True), (3, True)]
    >>> solve_clauses([[1], [-1]]) is None
    True
    """
    stats = stats or SatStats()
    materialized: List[List[int]] = []
    for clause in clauses:
        clause = list(clause)
        if any(literal == 0 for literal in clause):
            raise ValueError("literal 0 is not allowed")
        if any(-literal in clause for literal in clause):
            continue  # tautology
        materialized.append(clause)
    # Pure-literal elimination at the root.
    assignment: Dict[int, bool] = {}
    while True:
        literals = {l for clause in materialized for l in clause}
        pure = {l for l in literals if -l not in literals}
        if not pure:
            break
        for literal in pure:
            assignment.setdefault(abs(literal), literal > 0)
        materialized = [
            clause
            for clause in materialized
            if not any(l in pure for l in clause)
        ]
    return _dpll(materialized, assignment, stats)


def is_satisfiable(clauses: Iterable[Clause]) -> bool:
    """Convenience wrapper returning only satisfiability."""
    return solve_clauses(clauses) is not None
