"""The result type shared by all CERTAINTY(q) solvers."""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Union

from repro.db.instance import DatabaseInstance

RepairSource = Union[DatabaseInstance, Callable[[], DatabaseInstance], None]


class LazyMinimalRepair:
    """A *picklable* lazy falsifying-repair certificate.

    Carries the ``(db, query)`` data needed to run the Lemma 9
    construction instead of capturing it in a closure, so results can
    cross process boundaries (pool workers shipping answers back)
    without forcing the O(db) certificate construction at pickle time.
    The construction still runs at most once per consumer process, on
    first ``falsifying_repair`` access.
    """

    __slots__ = ("db", "query")

    def __init__(self, db: DatabaseInstance, query) -> None:
        self.db = db
        self.query = query

    def __call__(self) -> DatabaseInstance:
        from repro.solvers.fixpoint import build_minimal_repair

        return build_minimal_repair(self.db, self.query)

    def __reduce__(self):
        return (LazyMinimalRepair, (self.db, self.query))


class CertaintyResult:
    """Outcome of a CERTAINTY(q) decision.

    Attributes
    ----------
    query:
        String rendering of the query.
    answer:
        ``True`` iff every repair satisfies the query ("yes"-instance).
    method:
        Which algorithm produced the answer (``"fo"``, ``"nl"``,
        ``"fixpoint"``, ``"sat"``, ``"brute_force"``, ...).
    witness_constant:
        For "yes" answers, when available: a constant ``c`` such that
        every repair has an accepted path from ``c`` (Lemma 7).
    falsifying_repair:
        For "no" answers, when available: a repair that does not satisfy
        the query -- a certificate that can be checked independently.
        Solvers may supply it *lazily* as a zero-argument callable; the
        certificate is then constructed on first access (the incremental
        engine answers update streams without paying the Lemma 9 repair
        construction for certificates nobody reads) and cached.
    details:
        Method-specific diagnostics (iteration counts, clause counts, ...).
    """

    __slots__ = (
        "query",
        "answer",
        "method",
        "witness_constant",
        "_repair_source",
        "details",
    )

    def __init__(
        self,
        query: str,
        answer: bool,
        method: str,
        witness_constant: Optional[Hashable] = None,
        falsifying_repair: RepairSource = None,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        self.query = query
        self.answer = answer
        self.method = method
        self.witness_constant = witness_constant
        self._repair_source = falsifying_repair
        self.details: Dict[str, object] = details if details is not None else {}

    @property
    def falsifying_repair(self) -> Optional[DatabaseInstance]:
        if callable(self._repair_source):
            self._repair_source = self._repair_source()
        return self._repair_source

    @property
    def has_lazy_repair(self) -> bool:
        """True iff the certificate exists but has not been built yet."""
        return callable(self._repair_source)

    def strip(self) -> "CertaintyResult":
        """Drop the falsifying-repair certificate; returns ``self``.

        For consumers that only read ``.answer``: an unread certificate
        costs an O(db) construction the moment the result is compared,
        resolved, or (for non-picklable sources) pickled.  Batch workers
        strip results when the caller opted out of certificates, so
        nothing heavier than the answer crosses the pool boundary.
        """
        self._repair_source = None
        return self

    def rehydrate(self, db, query) -> "CertaintyResult":
        """Re-attach a lazy certificate after a stripped wire hop.

        The receiving half of the process-transport contract
        (:mod:`repro.serving.transport`): shard subprocesses strip lazy
        falsifying-repair certificates before pickling (an unread
        certificate is O(db) on the wire), and the router side calls
        this with its own copy of the same instance.  The Lemma 9
        construction is deterministic in the facts, so the certificate
        built here on first access equals the one the in-process lazy
        path would have produced.  A no-op unless this is a stripped
        "no" answer and *db* is known.
        """
        if not self.answer and self._repair_source is None and db is not None:
            self._repair_source = LazyMinimalRepair(db, query)
        return self

    def __getstate__(self):
        # Keep data-carrying lazy certificates (LazyMinimalRepair) lazy
        # across process boundaries; resolve only opaque callables
        # (closures are not picklable; pool workers ship results back).
        source = self._repair_source
        if callable(source) and not isinstance(source, LazyMinimalRepair):
            source = self.falsifying_repair
        return (
            self.query,
            self.answer,
            self.method,
            self.witness_constant,
            source,
            self.details,
        )

    def __setstate__(self, state) -> None:
        (
            self.query,
            self.answer,
            self.method,
            self.witness_constant,
            self._repair_source,
            self.details,
        ) = state

    def __eq__(self, other: object) -> bool:
        # Field-wise equality, as when this was a dataclass.  Comparing
        # resolves lazy certificates: the former field held the instance.
        if not isinstance(other, CertaintyResult):
            return NotImplemented
        return (
            self.query == other.query
            and self.answer == other.answer
            and self.method == other.method
            and self.witness_constant == other.witness_constant
            and self.falsifying_repair == other.falsifying_repair
            and self.details == other.details
        )

    # Unhashable, matching the former non-frozen dataclass.
    __hash__ = None  # type: ignore[assignment]

    def __bool__(self) -> bool:
        return self.answer

    def __repr__(self) -> str:
        return (
            "CertaintyResult(query={!r}, answer={!r}, method={!r}, "
            "witness_constant={!r}, details={!r})".format(
                self.query,
                self.answer,
                self.method,
                self.witness_constant,
                self.details,
            )
        )

    def __str__(self) -> str:
        verdict = "certain" if self.answer else "not certain"
        extra = ""
        if self.answer and self.witness_constant is not None:
            extra = " (witness start: {})".format(self.witness_constant)
        if not self.answer and self._repair_source is not None:
            if callable(self._repair_source):
                extra = " (falsifying repair available)"
            else:
                extra = " (falsifying repair with {} facts)".format(
                    len(self._repair_source)
                )
        return "CERTAINTY({}) = {} via {}{}".format(
            self.query, verdict, self.method, extra
        )
