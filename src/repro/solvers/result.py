"""The result type shared by all CERTAINTY(q) solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.db.instance import DatabaseInstance


@dataclass
class CertaintyResult:
    """Outcome of a CERTAINTY(q) decision.

    Attributes
    ----------
    query:
        String rendering of the query.
    answer:
        ``True`` iff every repair satisfies the query ("yes"-instance).
    method:
        Which algorithm produced the answer (``"fo"``, ``"nl"``,
        ``"fixpoint"``, ``"sat"``, ``"brute_force"``, ...).
    witness_constant:
        For "yes" answers, when available: a constant ``c`` such that
        every repair has an accepted path from ``c`` (Lemma 7).
    falsifying_repair:
        For "no" answers, when available: a repair that does not satisfy
        the query -- a certificate that can be checked independently.
    details:
        Method-specific diagnostics (iteration counts, clause counts, ...).
    """

    query: str
    answer: bool
    method: str
    witness_constant: Optional[Hashable] = None
    falsifying_repair: Optional[DatabaseInstance] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.answer

    def __str__(self) -> str:
        verdict = "certain" if self.answer else "not certain"
        extra = ""
        if self.answer and self.witness_constant is not None:
            extra = " (witness start: {})".format(self.witness_constant)
        if not self.answer and self.falsifying_repair is not None:
            extra = " (falsifying repair with {} facts)".format(
                len(self.falsifying_repair)
            )
        return "CERTAINTY({}) = {} via {}{}".format(
            self.query, verdict, self.method, extra
        )
