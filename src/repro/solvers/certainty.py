"""The classification-driven front end for CERTAINTY(q).

:func:`certain_answer` classifies the query (Theorem 3) and dispatches to
the matching algorithm:

* C1  -> first-order rewriting (Lemma 13);
* C2  -> linear Datalog (Lemma 14), falling back to the fixpoint
  algorithm when no verified decomposition is available;
* C3  -> the Figure 5 fixpoint algorithm (Lemma 11);
* else -> the SAT baseline, *pre-filtered* by the fixpoint algorithm: its
  "no" answers are sound for every query (Lemma 10 gives a falsifying
  repair), so the expensive SAT call only runs on fixpoint-"yes"
  instances.

A specific method can be forced with ``method=``; applicability is
checked against the classification.

Since the engine refactor this module is a thin compatibility shim: the
classification and every other per-query artifact are compiled once and
cached by the process-wide :func:`repro.engine.default_engine`, and each
call performs per-instance work only.  Use
:class:`repro.engine.CertaintyEngine` directly for batched workloads,
private plan caches, or per-engine statistics.
"""

from __future__ import annotations

from typing import Union

from repro.db.instance import DatabaseInstance
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike

QueryLike = Union[str, Word, PathQuery, GeneralizedPathQuery]


def _conp_solve(db: DatabaseInstance, q: Word) -> CertaintyResult:
    """SAT with the sound fixpoint "no" pre-filter.

    Returns a *fresh* :class:`CertaintyResult` on the pre-filter path --
    the pre-filter's own result object (which cached plans may also hand
    out) is never mutated, so ``method``/``details`` cannot go stale
    across calls.
    """
    from repro.engine.plan import conp_solve

    return conp_solve(db, q)


def certain_answer(
    db: DatabaseInstance,
    query: QueryLike,
    method: str = "auto",
) -> CertaintyResult:
    """Decide whether every repair of *db* satisfies *query*.

    *method* is one of ``"auto"`` (classify and dispatch), ``"fo"``,
    ``"nl"``, ``"fixpoint"``, ``"sat"``, ``"brute_force"``.

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", "a", "a"), ("R", "a", "b"), ("R", "b", "a"), ("R", "b", "b")])
    >>> certain_answer(db, "RR").answer        # Example 1 flavor: q1 = RR
    True
    """
    from repro.engine.engine import default_engine

    return default_engine().solve(db, query, method=method)
