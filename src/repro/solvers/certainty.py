"""The classification-driven front end for CERTAINTY(q).

:func:`certain_answer` classifies the query (Theorem 3) and dispatches to
the matching algorithm:

* C1  -> first-order rewriting (Lemma 13);
* C2  -> linear Datalog (Lemma 14), falling back to the fixpoint
  algorithm when no verified decomposition is available;
* C3  -> the Figure 5 fixpoint algorithm (Lemma 11);
* else -> the SAT baseline, *pre-filtered* by the fixpoint algorithm: its
  "no" answers are sound for every query (Lemma 10 gives a falsifying
  repair), so the expensive SAT call only runs on fixpoint-"yes"
  instances.

A specific method can be forced with ``method=``; applicability is
checked against the classification.
"""

from __future__ import annotations

from typing import Union

from repro.classification.classifier import Classification, ComplexityClass, classify
from repro.datalog.cqa_program import UnsupportedQuery
from repro.db.instance import DatabaseInstance
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import certain_answer_fixpoint, fixpoint_relation
from repro.solvers.fo_solver import certain_answer_fo
from repro.solvers.nl_solver import certain_answer_nl
from repro.solvers.result import CertaintyResult
from repro.solvers.sat_encoding import certain_answer_sat
from repro.words.word import Word, WordLike

QueryLike = Union[str, Word, PathQuery, GeneralizedPathQuery]


def _conp_solve(db: DatabaseInstance, q: Word) -> CertaintyResult:
    """SAT with the sound fixpoint "no" pre-filter."""
    prefilter = certain_answer_fixpoint(db, q, require_c3=False)
    if not prefilter.answer:
        prefilter.method = "fixpoint-prefilter"
        return prefilter
    result = certain_answer_sat(db, q)
    result.details["prefilter"] = "fixpoint-yes"
    return result


def certain_answer(
    db: DatabaseInstance,
    query: QueryLike,
    method: str = "auto",
) -> CertaintyResult:
    """Decide whether every repair of *db* satisfies *query*.

    *method* is one of ``"auto"`` (classify and dispatch), ``"fo"``,
    ``"nl"``, ``"fixpoint"``, ``"sat"``, ``"brute_force"``.

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", "a", "a"), ("R", "a", "b"), ("R", "b", "a"), ("R", "b", "b")])
    >>> certain_answer(db, "RR").answer        # Example 1 flavor: q1 = RR
    True
    """
    if isinstance(query, GeneralizedPathQuery):
        from repro.solvers.generalized_solver import certain_answer_generalized

        return certain_answer_generalized(db, query, method=method)
    if isinstance(query, PathQuery):
        query = query.word
    q = Word.coerce(query)

    if method == "fo":
        return certain_answer_fo(db, q)
    if method == "nl":
        return certain_answer_nl(db, q)
    if method == "fixpoint":
        return certain_answer_fixpoint(db, q)
    if method == "sat":
        return certain_answer_sat(db, q)
    if method == "brute_force":
        return certain_answer_brute_force(db, q)
    if method != "auto":
        raise ValueError("unknown method {!r}".format(method))

    classification = classify(q)
    complexity = classification.complexity
    if complexity is ComplexityClass.FO:
        result = certain_answer_fo(db, q)
    elif complexity is ComplexityClass.NL_COMPLETE:
        try:
            result = certain_answer_nl(db, q)
        except UnsupportedQuery:
            result = certain_answer_fixpoint(db, q)
            result.details["nl_fallback"] = True
    elif complexity is ComplexityClass.PTIME_COMPLETE:
        result = certain_answer_fixpoint(db, q)
    else:
        result = _conp_solve(db, q)
    result.details["complexity"] = str(complexity)
    return result
