"""Brute-force CERTAINTY(q) by exhaustive repair enumeration.

The definitional baseline: enumerate every repair (one fact per block,
exponentially many) and evaluate the query on each.  Exact for *all*
queries -- path queries, generalized path queries, and arbitrary Boolean
conjunctive queries -- and therefore the ground truth the test-suite
differentially checks every polynomial algorithm against.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.db.evaluation import (
    generalized_query_satisfied,
    path_query_satisfied,
    query_satisfied,
)
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repair_fact_tuples
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.result import CertaintyResult
from repro.words.word import Word

QueryLike = Union[str, Word, PathQuery, GeneralizedPathQuery, ConjunctiveQuery]

#: Repair-count guard: enumeration refuses beyond this unless overridden.
DEFAULT_REPAIR_LIMIT = 2_000_000


def _evaluator(query: QueryLike):
    """Normalize *query* and return ``(name, fn)`` with ``fn(instance)``."""
    if isinstance(query, PathQuery):
        query = query.word
    if isinstance(query, (str, Word)):
        word = Word.coerce(query)
        return str(word), lambda db: path_query_satisfied(word, db)
    if isinstance(query, GeneralizedPathQuery):
        return str(query), lambda db: generalized_query_satisfied(query, db)
    if isinstance(query, ConjunctiveQuery):
        return str(query), lambda db: query_satisfied(query, db)
    raise TypeError("unsupported query type {!r}".format(type(query)))


def certain_answer_brute_force(
    db: DatabaseInstance,
    query: QueryLike,
    repair_limit: Optional[int] = DEFAULT_REPAIR_LIMIT,
) -> CertaintyResult:
    """Decide CERTAINTY(query) by checking every repair.

    Returns a falsifying repair as certificate on "no".  Raises
    :class:`RuntimeError` when the instance has more than *repair_limit*
    repairs (pass ``None`` to lift the guard).
    """
    name, satisfied = _evaluator(query)
    total = count_repairs(db)
    if repair_limit is not None and total > repair_limit:
        raise RuntimeError(
            "instance has {} repairs, above the brute-force limit {}".format(
                total, repair_limit
            )
        )
    checked = 0
    for facts in iter_repair_fact_tuples(db):
        repair = DatabaseInstance(facts)
        checked += 1
        if not satisfied(repair):
            return CertaintyResult(
                query=name,
                answer=False,
                method="brute_force",
                falsifying_repair=repair,
                details={"repairs_checked": checked, "repairs_total": total},
            )
    return CertaintyResult(
        query=name,
        answer=True,
        method="brute_force",
        details={"repairs_checked": checked, "repairs_total": total},
    )
