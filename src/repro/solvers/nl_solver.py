"""The linear-Datalog NL solver for C2 queries (Lemma 14 / Claim 5).

Pipeline: split ``q`` into a language-verified ``head (cycle)* tail``
shape (Lemma 16), generate the Claim 5 linear Datalog program with
stratified negation, evaluate it on the instance with the semi-naive
engine, and answer "yes" iff some constant ``c`` has ``o(c)`` underivable
(Claim 4: ``o(c)`` holds iff some repair has no path from ``c`` with
trace in ``head (cycle)* tail``; by Lemmas 7 and 15 the instance is a
"yes"-instance iff some ``c`` defeats every repair).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.datalog.cqa_program import (
    CqaProgram,
    UnsupportedQuery,
    build_cqa_program,
    instance_to_edb,
)
from repro.datalog.engine import evaluate_program
from repro.db.instance import DatabaseInstance
from repro.solvers.result import CertaintyResult
from repro.words.word import Word, WordLike

_PROGRAM_CACHE: Dict[Word, CqaProgram] = {}


def cached_program(q: WordLike) -> CqaProgram:
    """Build (or fetch) the Claim 5 program for *q*.

    Raises :class:`~repro.datalog.cqa_program.UnsupportedQuery` when no
    language-verified decomposition exists.
    """
    q = Word.coerce(q)
    program = _PROGRAM_CACHE.get(q)
    if program is None:
        program = build_cqa_program(q)
        _PROGRAM_CACHE[q] = program
    return program


def certain_answer_nl(
    db: DatabaseInstance,
    q: WordLike,
    program: Optional[CqaProgram] = None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a C2 path query via linear Datalog.

    *program* may carry the precompiled Claim 5 program for *q* (compiled
    plans pass their own copy; ad-hoc callers hit the module cache).

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> certain_answer_nl(db, "RRX").answer
    True
    """
    q = Word.coerce(q)
    cqa = program if program is not None else cached_program(q)
    edb = instance_to_edb(db)
    relations = evaluate_program(cqa.program, edb)
    o_constants = {row[0] for row in relations.get("o", ())}
    witnesses = sorted(
        (c for c in db.adom() if c not in o_constants), key=str
    )
    details = {
        "decomposition": str(cqa.parts),
        "program_rules": len(cqa.program),
        "o_size": len(o_constants),
    }
    repair = None
    if not witnesses:
        # Certificate: the Lemma 9 minimal repair falsifies q on
        # "no"-instances (query-generic construction).
        from repro.solvers.fixpoint import build_minimal_repair

        repair = build_minimal_repair(db, q)
    return CertaintyResult(
        query=str(q),
        answer=bool(witnesses),
        method="nl",
        witness_constant=witnesses[0] if witnesses else None,
        falsifying_repair=repair,
        details=details,
    )


def nl_supported(q: WordLike) -> bool:
    """True iff the NL solver has a verified decomposition for *q*."""
    try:
        cached_program(q)
    except UnsupportedQuery:
        return False
    return True
