"""The linear-Datalog NL solver for C2 queries (Lemma 14 / Claim 5).

Pipeline: split ``q`` into a language-verified ``head (cycle)* tail``
shape (Lemma 16), generate the Claim 5 linear Datalog program with
stratified negation, evaluate it on the instance with the semi-naive
engine, and answer "yes" iff some constant ``c`` has ``o(c)`` underivable
(Claim 4: ``o(c)`` holds iff some repair has no path from ``c`` with
trace in ``head (cycle)* tail``; by Lemmas 7 and 15 the instance is a
"yes"-instance iff some ``c`` defeats every repair).
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.cqa_program import (
    CqaProgram,
    UnsupportedQuery,
    instance_edb_compact,
    instance_to_edb,
)
from repro.datalog.engine import (
    CompactProgram,
    compact_program,
    evaluate_program,
)
from repro.db.instance import DatabaseInstance
from repro.solvers.result import CertaintyResult, LazyMinimalRepair
from repro.words.word import Word, WordLike


def cached_program(q: WordLike) -> CqaProgram:
    """Fetch the Claim 5 program for *q* from the engine's plan cache.

    Historically this module kept its own unbounded program dict; Claim 5
    programs are now cached on the :class:`~repro.engine.plan.CompiledQuery`
    plans of the process-wide engine, so there is a single cache with a
    single (LRU) eviction policy for all per-query artifacts.

    Raises :class:`~repro.datalog.cqa_program.UnsupportedQuery` when no
    language-verified decomposition exists.
    """
    # Imported lazily: the engine package builds on the solvers.
    from repro.engine.engine import default_engine

    plan = default_engine().compile(Word.coerce(q))
    program = plan.datalog_program
    if program is None:
        raise UnsupportedQuery(plan._datalog_error)
    return program


def certain_answer_nl(
    db: DatabaseInstance,
    q: WordLike,
    program: Optional[CqaProgram] = None,
    compiled: Optional[CompactProgram] = None,
) -> CertaintyResult:
    """Decide CERTAINTY(q) for a C2 path query via linear Datalog.

    *program* may carry the precompiled Claim 5 program for *q*, and
    *compiled* its compact-engine compilation (compiled plans pass both;
    ad-hoc callers hit the module caches).  The evaluation runs on the
    compact engine over the instance's interned EDB whenever *db*
    carries a compact view (``DatabaseInstance`` always does); plain
    overlays fall back to the object-level indexed engine.

    >>> db = DatabaseInstance.from_triples(
    ...     [("R", 0, 1), ("R", 1, 2), ("R", 2, 3), ("R", 3, 4), ("X", 4, 5)])
    >>> certain_answer_nl(db, "RRX").answer
    True
    """
    q = Word.coerce(q)
    cqa = program if program is not None else cached_program(q)
    if getattr(db, "compact", None) is not None:
        view = db.compact()
        if compiled is None:
            compiled = compact_program(cqa.program)
        relations = compiled.evaluate(instance_edb_compact(view))
        o_gids = {row[0] for row in relations.get("o", ())}
        gids = view.gids
        consts = view.consts
        witnesses = sorted(
            (
                consts[lid]
                for lid in view.alive_lids()
                if gids[lid] not in o_gids
            ),
            key=str,
        )
        o_size = len(o_gids)
    else:
        edb = instance_to_edb(db)
        relations = evaluate_program(cqa.program, edb)
        o_constants = {row[0] for row in relations.get("o", ())}
        witnesses = [c for c in db.sorted_adom() if c not in o_constants]
        o_size = len(o_constants)
    details = {
        "decomposition": str(cqa.parts),
        "program_rules": len(cqa.program),
        "o_size": o_size,
    }
    repair = None
    if not witnesses:
        # Certificate: the Lemma 9 minimal repair falsifies q on
        # "no"-instances (query-generic construction); built lazily on
        # first access, picklable so laziness survives pool hops.
        repair = LazyMinimalRepair(db, q)
    return CertaintyResult(
        query=str(q),
        answer=bool(witnesses),
        method="nl",
        witness_constant=witnesses[0] if witnesses else None,
        falsifying_repair=repair,
        details=details,
    )


def nl_supported(q: WordLike) -> bool:
    """True iff the NL solver has a verified decomposition for *q*."""
    try:
        cached_program(q)
    except UnsupportedQuery:
        return False
    return True
