"""Monotone Boolean circuits and the Monotone Circuit Value Problem.

MCVP -- evaluate a monotone circuit (AND/OR gates over input variables)
under a given input assignment -- is PTIME-complete (Goldschlager 1977)
and is the source problem of the Lemma 20 reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class Gate:
    """A binary monotone gate ``name = left OP right``.

    *op* is ``"and"`` or ``"or"``; *left*/*right* name gates or inputs.
    """

    name: str
    op: str
    left: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError("monotone gates must be 'and' or 'or'")

    def __str__(self) -> str:
        symbol = "∧" if self.op == "and" else "∨"
        return "{} = {} {} {}".format(self.name, self.left, symbol, self.right)


class MonotoneCircuit:
    """A monotone Boolean circuit.

    Gates must be listed in (or admit) a topological order: every gate
    input is either a circuit input or an earlier gate.
    """

    def __init__(
        self,
        inputs: Sequence[str],
        gates: Iterable[Gate],
        output: str,
    ) -> None:
        self.inputs: List[str] = list(inputs)
        self.gates: List[Gate] = list(gates)
        self.output = output
        self._validate()

    def _validate(self) -> None:
        defined = set(self.inputs)
        if len(defined) != len(self.inputs):
            raise ValueError("duplicate input names")
        for gate in self.gates:
            if gate.name in defined:
                raise ValueError("duplicate definition of {}".format(gate.name))
            for operand in (gate.left, gate.right):
                if operand not in defined:
                    raise ValueError(
                        "gate {} uses undefined operand {} "
                        "(gates must be topologically ordered)".format(
                            gate.name, operand
                        )
                    )
            defined.add(gate.name)
        if self.output not in defined:
            raise ValueError("output {} is undefined".format(self.output))

    def gate_names(self) -> List[str]:
        return [gate.name for gate in self.gates]

    def evaluate(self, assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Values of all wires under the input *assignment*.

        Missing inputs default to ``False`` (monotonicity makes this the
        conservative choice).
        """
        values: Dict[str, bool] = {
            name: bool(assignment.get(name, False)) for name in self.inputs
        }
        for gate in self.gates:
            left = values[gate.left]
            right = values[gate.right]
            values[gate.name] = (left and right) if gate.op == "and" else (left or right)
        return values

    def value(self, assignment: Dict[str, bool]) -> bool:
        """The output value under *assignment* (the MCVP answer)."""
        return self.evaluate(assignment)[self.output]

    def __len__(self) -> int:
        return len(self.gates)

    def __str__(self) -> str:
        lines = ["inputs: " + ", ".join(self.inputs)]
        lines += [str(gate) for gate in self.gates]
        lines.append("output: " + self.output)
        return "\n".join(lines)


def random_monotone_circuit(
    n_inputs: int, n_gates: int, rng: random.Random
) -> MonotoneCircuit:
    """A random monotone circuit with binary AND/OR gates.

    Each gate draws two distinct earlier wires; the output is the last
    gate, which makes the circuit's value depend on a long chain with
    reasonable probability.
    """
    if n_inputs < 2 or n_gates < 1:
        raise ValueError("need at least two inputs and one gate")
    inputs = ["x{}".format(i + 1) for i in range(n_inputs)]
    wires = list(inputs)
    gates = []
    for index in range(n_gates):
        name = "g{}".format(index + 1)
        left, right = rng.sample(wires, 2)
        op = "and" if rng.random() < 0.5 else "or"
        gates.append(Gate(name, op, left, right))
        wires.append(name)
    return MonotoneCircuit(inputs, gates, gates[-1].name)


def random_assignment(
    inputs: Sequence[str], rng: random.Random, p_true: float = 0.5
) -> Dict[str, bool]:
    """An independent random assignment for the circuit inputs."""
    return {name: rng.random() < p_true for name in inputs}
