"""Monotone Boolean circuits for the PTIME-hardness reduction (Lemma 20)."""

from repro.circuits.circuit import Gate, MonotoneCircuit, random_monotone_circuit

__all__ = ["Gate", "MonotoneCircuit", "random_monotone_circuit"]
