"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro classify RRX ARRX RXRYRY
    python -m repro solve RRX --triples "R,0,1;R,1,2;R,1,3;R,2,3;X,3,4"
    python -m repro batch RRX --facts db1.txt db2.txt db3.txt --workers 4
    python -m repro serve --instance orders=db1.txt --workload reqs.txt
    python -m repro serve --transport process --instance orders=db1.txt ...
    python -m repro serve --journal sqlite:state.db --workload reqs.txt
    python -m repro serve --journal "replicated:sqlite:a.db;sqlite:b.db" ...
    python -m repro bench-serve --shards 4 --requests 240
    python -m repro bench-serve --cpu-bound --shards 4
    python -m repro scenarios --cells "paper:batch,gadget:*" --seed 7
    python -m repro scenarios --chaos --out BENCH_scenarios.json
    python -m repro answers RR --triples "R,0,1;R,1,2;R,2,3"
    python -m repro atlas
    python -m repro report --trials 10

Triples are ``relation,key,value`` separated by ``;`` (or one per line in
a file passed via ``--facts``).  Numeric constants are parsed as ints so
CLI inputs match the Python examples.

``solve`` and ``batch`` route through one :class:`CertaintyEngine`: the
query is compiled once and every instance reuses the cached plan
(``batch`` additionally fans out over ``--workers`` processes).

``serve`` runs a request workload through the sharded async serving
layer (:mod:`repro.serving`): named instances become shard residents,
``solve``/``delta`` lines are admitted concurrently, and per-shard
warm/cold statistics are reported at the end.  With ``--journal
sqlite:PATH`` residents are durable: a later ``serve`` on the same path
restores them from the log, no ``--instance`` flags needed.  With
``--journal replicated:PRIMARY;FOLLOWER,...`` follower replicas tail
the primary's op log and the most-caught-up one is promoted when the
primary fails (provoke it with ``--journal-chaos``).
``bench-serve`` runs the mixed-workload benchmark comparing shard-warm
serving against per-call solves.  See ``docs/serving.md``.

``scenarios`` runs the differential scenario matrix: seeded instance
families crossed with execution modes, every answered request re-decided
by the independent reference oracle.  See ``docs/scenarios.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.classification.classifier import classify
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.experiments.classification_table import classification_table
from repro.experiments.harness import Table
from repro.experiments.reductions_report import full_report
from repro.solvers.answers import certain_head_answers, certain_tail_answers


def _parse_constant(text: str) -> Hashable:
    text = text.strip()
    if text.lstrip("-").isdigit():
        return int(text)
    return text


def parse_triples(text: str) -> List[Tuple[str, Hashable, Hashable]]:
    """Parse ``"R,0,1;R,1,2"`` into fact triples."""
    triples = []
    for chunk in text.replace("\n", ";").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [p.strip() for p in chunk.split(",")]
        if len(parts) != 3:
            raise ValueError(
                "expected 'relation,key,value', got {!r}".format(chunk)
            )
        triples.append((parts[0], _parse_constant(parts[1]), _parse_constant(parts[2])))
    return triples


def _load_instance(args: argparse.Namespace) -> DatabaseInstance:
    text = ""
    if getattr(args, "facts", None):
        with open(args.facts) as handle:
            text = handle.read()
    elif getattr(args, "triples", None):
        text = args.triples
    else:
        raise SystemExit("provide --triples or --facts")
    return DatabaseInstance.from_triples(parse_triples(text))


def _cmd_classify(args: argparse.Namespace) -> int:
    table = Table(["query", "C1", "C2", "C3", "complexity"])
    for query in args.queries:
        result = classify(query)
        table.add_row(
            [
                query,
                "+" if result.c1 else "-",
                "+" if result.c2 else "-",
                "+" if result.c3 else "-",
                result.complexity,
            ]
        )
    print(table.render())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    db = _load_instance(args)
    engine = CertaintyEngine()
    result = engine.solve(db, args.query, method=args.method)
    print(result)
    if args.verbose:
        print("  details:", result.details)
        if result.falsifying_repair is not None:
            print("  falsifying repair:", result.falsifying_repair)
    return 0 if result.answer else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    instances = []
    for path in args.facts:
        with open(path) as handle:
            instances.append(
                (path, DatabaseInstance.from_triples(parse_triples(handle.read())))
            )
    engine = CertaintyEngine()
    labels = [
        (query, path, db)
        for query in args.queries
        for path, db in instances
    ]
    pairs = [(db, query) for query, _, db in labels]
    results = engine.solve_batch(
        pairs, method=args.method, workers=args.workers
    )
    table = Table(["query", "instance", "facts", "answer", "method"])
    for (query, path, db), result in zip(labels, results):
        table.add_row(
            [
                query,
                path,
                len(db),
                "certain" if result.answer else "not certain",
                result.method,
            ]
        )
    print(table.render())
    if args.stats:
        print(engine.stats)
    return 0 if all(r.answer for r in results) else 1


def _parse_delta_edits(text: str):
    """Parse ``"+R,0,1;-R,1,2"`` into a :class:`repro.db.delta.Delta`."""
    from repro.db.delta import Delta

    inserts, removes = [], []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if chunk[0] not in "+-" or len(chunk) < 2:
            raise ValueError(
                "delta edit must be +relation,key,value or "
                "-relation,key,value, got {!r}".format(chunk)
            )
        triple = parse_triples(chunk[1:])[0]
        (inserts if chunk[0] == "+" else removes).append(triple)
    return Delta.removing(*removes).then_inserting(*inserts)


def parse_workload(lines) -> List[Tuple[str, str, str, Optional[str]]]:
    """Parse serve-workload lines into ``(op, name, query, edits)`` tuples.

    Two request forms (blank lines and ``#`` comments are skipped)::

        solve NAME QUERY
        delta NAME QUERY +R,0,1;-R,1,2
    """
    requests = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "solve" and len(parts) == 3:
            requests.append(("solve", parts[1], parts[2], None))
        elif parts[0] == "delta" and len(parts) == 4:
            requests.append(("delta", parts[1], parts[2], parts[3]))
        else:
            raise SystemExit(
                "workload line {}: expected 'solve NAME QUERY' or "
                "'delta NAME QUERY EDITS', got {!r}".format(lineno, line)
            )
    return requests


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving import AsyncCertaintyServer

    instances = {}
    for spec in args.instance:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(
                "--instance expects NAME=FILE, got {!r}".format(spec)
            )
        with open(path) as handle:
            instances[name] = DatabaseInstance.from_triples(
                parse_triples(handle.read())
            )
    if args.workload:
        with open(args.workload) as handle:
            requests = parse_workload(handle)
    else:
        requests = parse_workload(sys.stdin)

    async def _run():
        async with AsyncCertaintyServer(
            num_shards=args.shards,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            transport=args.transport,
            journal_store=args.journal,
            queue_limit=args.queue_limit,
            max_in_flight=args.max_in_flight,
            faults=args.chaos,
            journal_faults=args.journal_chaos,
        ) as server:
            for name, db in sorted(instances.items()):
                await server.register(name, db)

            async def one(op, name, query, edits):
                if op == "delta":
                    return await server.solve_delta(
                        name, _parse_delta_edits(edits), query,
                        timeout=args.timeout,
                    )
                return await server.solve(name, query, timeout=args.timeout)

            # One failing request (unknown name, bad edit string) must
            # not abort its siblings: collect exceptions per row.
            results = await asyncio.gather(
                *(one(*request) for request in requests),
                return_exceptions=True,
            )
            # Read stats before the server closes: process transports
            # report queue depth and liveness of the running children.
            return results, server.stats()

    results, stats = asyncio.run(_run())
    failures = 0
    table = Table(["#", "op", "instance", "query", "answer", "method"])
    for index, ((op, name, query, _edits), result) in enumerate(
        zip(requests, results)
    ):
        if isinstance(result, BaseException):
            failures += 1
            answer, method = "error", "{}: {}".format(
                type(result).__name__, result
            )
        else:
            answer = "certain" if result.answer else "not certain"
            method = result.method
        table.add_row([index, op, name, query, answer, method])
    print(table.render())
    if args.stats:
        admission = stats["admission"]
        print(
            "admission: submitted={} completed={} failed={} "
            "overload_shed={} deadline_shed={}".format(
                admission["submitted"],
                admission["completed"],
                admission["failed"],
                admission.get("overload_shed", 0),
                admission.get("deadline_shed", 0),
            )
        )
        faults = stats.get("faults", {})
        if faults.get("armed"):
            print(
                "faults: seed={} injected={} rules={}".format(
                    faults["seed"],
                    faults["injected"] or "{}",
                    "; ".join(faults["rules"]) or "(none)",
                )
            )
        journal_faults = stats.get("journal_faults", {})
        if journal_faults.get("armed"):
            print(
                "journal-faults: seed={} injected={} rules={}".format(
                    journal_faults["seed"],
                    journal_faults["injected"] or "{}",
                    "; ".join(journal_faults["rules"]) or "(none)",
                )
            )
        journal = stats["journal"]
        print(
            "journal: store={} residents={} ops={} log_rows={} "
            "compactions={} truncated_ops={}".format(
                journal["store"],
                journal.get("residents", 0),
                journal.get("ops", 0),
                journal.get("log_rows", 0),
                journal.get("compactions", 0),
                journal.get("truncated_ops", 0),
            )
        )
        replication = journal.get("replication")
        if replication:
            print(
                "replication: primary={} failovers={} followers_lost={} "
                "ship_every={} replicas=[{}]".format(
                    replication["primary"],
                    replication["failovers"],
                    replication["followers_lost"],
                    replication["ship_every"],
                    ", ".join(
                        "{}:lag={}".format(r["kind"], r["lag"])
                        for r in replication["replicas"]
                    ),
                )
            )
        for shard in stats["shards"]:
            if not shard["requests"]:
                continue
            print(
                "shard {}: requests={} batches={} mean_batch={:.1f} "
                "coalesced={} warm={} cold={} deadline_shed={} "
                "overload_shed={}".format(
                    shard["shard"],
                    shard["requests"],
                    shard["batches"],
                    shard["mean_batch_size"],
                    shard["coalesced"],
                    shard["warm_hits"],
                    shard["cold_solves"],
                    shard.get("deadline_shed", 0),
                    shard.get("overload_shed", 0),
                )
            )
            health = shard["transport"]
            print(
                "  transport={} alive={} restarts={} snapshot_bytes={} "
                "snapshot_shm={} deltas_forwarded={} queue_depth={} "
                "breaker={} consecutive_failures={} degraded_served={}".format(
                    health["transport"],
                    health["alive"],
                    health["restarts"],
                    health["snapshot_bytes"],
                    health.get("snapshot_shm", 0),
                    health["deltas_forwarded"],
                    health["queue_depth"],
                    health.get("breaker", "closed"),
                    health.get("consecutive_failures", 0),
                    health.get("degraded_served", 0),
                )
            )
    if failures:
        return 2
    return 0 if all(r.answer for r in results) else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serving.bench import (
        run_serving_benchmark,
        run_transport_benchmark,
    )

    if args.cpu_bound:
        report = run_transport_benchmark(
            num_shards=args.shards,
            # The CPU-bound race needs large residents (the per-request
            # kernel must dominate IPC), so its defaults differ from the
            # shard-warm workload's; explicit flags still win.
            repetitions=args.repetitions or 3000,
            n_requests=args.requests or 64,
        )
        table = Table(["transport", "seconds", "requests/s"])
        for transport in sorted(report["transports"]):
            row = report["transports"][transport]
            table.add_row(
                [
                    transport,
                    "{:.4f}".format(row["seconds"]),
                    "{:.0f}".format(row["rps"]),
                ]
            )
        print(table.render())
        print(
            "process/thread speedup: {:.2f}x over {} CPU-bound requests "
            "on {} shards (answers agree: {})".format(
                report["speedup"],
                report["requests"],
                report["num_shards"],
                report["agrees"],
            )
        )
        return 0 if report["agrees"] else 1

    report = run_serving_benchmark(
        num_shards=args.shards,
        num_instances=args.instances,
        repetitions=args.repetitions or 40,
        n_requests=args.requests or 240,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        transport=args.transport,
        chaos=args.chaos,
    )
    table = Table(["path", "seconds", "requests/s"])
    table.add_row(
        ["per-call solve_batch", "{:.4f}".format(report["naive_seconds"]),
         "{:.0f}".format(report["naive_rps"])]
    )
    table.add_row(
        ["sharded async serving", "{:.4f}".format(report["serving_seconds"]),
         "{:.0f}".format(report["serving_rps"])]
    )
    print(table.render())
    print(
        "speedup: {:.1f}x over {} requests on {} shards "
        "(answers agree: {}, warm hits: {})".format(
            report["speedup"],
            report["requests"],
            report["num_shards"],
            report["agrees"],
            report["warm_hits"],
        )
    )
    if args.chaos:
        outcomes = report["outcomes"]
        faults = report["server_stats"].get("faults", {})
        print(
            "chaos: answered={} deadline_exceeded={} overloaded={} "
            "unavailable={} other_error={} injected={}".format(
                outcomes["answered"],
                outcomes["deadline_exceeded"],
                outcomes["overloaded"],
                outcomes["unavailable"],
                outcomes["other_error"],
                faults.get("injected") or "{}",
            )
        )
    return 0 if report["agrees"] else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        FAMILIES,
        MODES,
        default_chaos_spec,
        default_matrix,
        parse_cells,
        run_matrix,
        write_report,
    )

    if args.list:
        table = Table(["axis", "name", "description"])
        for name in FAMILIES:
            table.add_row(["family", name, FAMILIES[name].description])
        for name in MODES:
            table.add_row(["mode", name, MODES[name].description])
        print(table.render())
        return 0

    if args.cells:
        cells = parse_cells(args.cells)
    else:
        spec = "{}:{}".format(
            args.families or "*", args.modes or "*"
        )
        cells = (
            default_matrix()
            if spec == "*:*"
            else parse_cells(
                ",".join(
                    "{}:{}".format(f.strip(), m.strip())
                    for f in (args.families or "*").split(",")
                    for m in (args.modes or "*").split(",")
                )
            )
        )
    chaos = args.chaos
    if chaos == "":  # bare --chaos: the default seeded schedule
        chaos = default_chaos_spec(args.seed)

    table = Table(
        ["cell", "req", "answered", "verified", "mism", "errors",
         "final", "routes", "wall"]
    )

    def progress(record):
        table.add_row(
            [
                record.cell,
                record.requests,
                record.answered,
                record.verified,
                len(record.mismatches),
                sum(record.errors.values()),
                {True: "ok", False: "DIVERGED", None: "-"}[record.final_ok],
                ",".join(
                    "{}:{}".format(k, v)
                    for k, v in record.route_mix.items()
                ),
                "{:.2f}s".format(record.wall_seconds),
            ]
        )

    records = run_matrix(
        cells,
        seed=args.seed,
        scale=args.scale,
        chaos=chaos,
        progress=progress,
    )
    print(table.render())
    mismatched = sum(len(r.mismatches) for r in records)
    diverged = sum(1 for r in records if r.final_ok is False)
    print(
        "{} cells, {} answered, {} verified, {} mismatches, "
        "{} replay divergences".format(
            len(records),
            sum(r.answered for r in records),
            sum(r.verified for r in records),
            mismatched,
            diverged,
        )
    )
    if args.out:
        write_report(
            args.out, records, include_timing=not args.canonical
        )
        print("wrote {}".format(args.out))
    return 0 if not mismatched and not diverged else 1


def _cmd_answers(args: argparse.Namespace) -> int:
    db = _load_instance(args)
    if args.position == "head":
        answers = certain_head_answers(db, args.query)
    else:
        answers = certain_tail_answers(db, args.query)
    print("certain {} answers of {}(x): {}".format(
        args.position, args.query,
        sorted(answers, key=str) if answers else "(none)",
    ))
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    print(classification_table(markdown=args.markdown))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    table = Table(["experiment", "query", "trials", "agree"])
    for row in full_report(trials=args.trials, seed=args.seed):
        table.add_row(
            [row["experiment"], row["query"], row["trials"], row["agree"]]
        )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Consistent query answering for primary keys on path queries "
        "(PODS 2021 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_parser = commands.add_parser(
        "classify", help="classify path queries (Theorem 3)"
    )
    classify_parser.add_argument("queries", nargs="+")
    classify_parser.set_defaults(handler=_cmd_classify)

    solve_parser = commands.add_parser(
        "solve", help="decide CERTAINTY(q) on an instance"
    )
    solve_parser.add_argument("query")
    solve_parser.add_argument("--triples", help="facts as 'R,0,1;R,1,2;...'")
    solve_parser.add_argument("--facts", help="file with one triple per line")
    solve_parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "fo", "nl", "fixpoint", "sat", "brute_force"],
    )
    solve_parser.add_argument("-v", "--verbose", action="store_true")
    solve_parser.set_defaults(handler=_cmd_solve)

    batch_parser = commands.add_parser(
        "batch",
        help="decide CERTAINTY(q) for queries x instances through one engine",
    )
    batch_parser.add_argument("queries", nargs="+")
    batch_parser.add_argument(
        "--facts",
        nargs="+",
        required=True,
        help="files with one 'relation,key,value' triple per line",
    )
    batch_parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "fo", "nl", "fixpoint", "sat", "brute_force"],
    )
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the batch out over N processes",
    )
    batch_parser.add_argument(
        "--stats", action="store_true", help="print engine statistics"
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    serve_parser = commands.add_parser(
        "serve",
        help="run a request workload through the sharded async serving layer",
    )
    serve_parser.add_argument(
        "--instance",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="register FILE (one triple per line) as the resident NAME",
    )
    serve_parser.add_argument(
        "--workload",
        help="file of 'solve NAME QUERY' / 'delta NAME QUERY EDITS' lines "
        "(default: stdin)",
    )
    serve_parser.add_argument("--shards", type=int, default=4)
    serve_parser.add_argument("--max-batch", type=int, default=32)
    serve_parser.add_argument("--max-delay", type=float, default=0.002)
    serve_parser.add_argument(
        "--transport",
        default="thread",
        choices=["thread", "process"],
        help="run shards as threads (shared memory) or as one "
        "subprocess per shard (true CPU parallelism)",
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="SPEC",
        help="durable journal store: 'memory' (lost on exit), "
        "'sqlite:PATH' (residents survive a restart; a reopened server "
        "needs no --instance re-registration), 'kv:memory' / 'kv:DIR' "
        "(journal over the minimal key-value interface), or "
        "'replicated:PRIMARY;FOLLOWER[,FOLLOWER...]' (each side any of "
        "the above: read replicas tail the primary's op log and the "
        "most-caught-up one is promoted when the primary fails)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; expired requests fail fast with "
        "DeadlineExceeded instead of burning shard work",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="bound each shard's queue; over-limit submits fail fast "
        "with ServerOverloaded",
    )
    serve_parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="server-wide cap on admitted-but-unresolved requests",
    )
    serve_parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm the deterministic fault plan, e.g. "
        "'crash:every=5;delay:seconds=0.01,p=0.2;seed=7' "
        "(kinds: crash, drop, delay, dup)",
    )
    serve_parser.add_argument(
        "--journal-chaos",
        default=None,
        metavar="SPEC",
        help="arm a separate fault plan against the replicated "
        "journal's primary writes (requires --journal replicated:...), "
        "e.g. 'write_error:every=5,times=2;seed=0' "
        "(kinds: write_error, torn_write, stall)",
    )
    serve_parser.add_argument(
        "--stats", action="store_true", help="print admission and shard stats"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_serve_parser = commands.add_parser(
        "bench-serve",
        help="benchmark shard-warm async serving against per-call solves",
    )
    bench_serve_parser.add_argument("--shards", type=int, default=4)
    bench_serve_parser.add_argument("--instances", type=int, default=6)
    bench_serve_parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="resident size (default: 40 shard-warm, 3000 --cpu-bound)",
    )
    bench_serve_parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="stream length (default: 240 shard-warm, 64 --cpu-bound)",
    )
    bench_serve_parser.add_argument("--max-batch", type=int, default=32)
    bench_serve_parser.add_argument("--max-delay", type=float, default=0.001)
    bench_serve_parser.add_argument(
        "--transport",
        default="thread",
        choices=["thread", "process"],
        help="shard transport for the serving path",
    )
    bench_serve_parser.add_argument(
        "--cpu-bound",
        action="store_true",
        help="compare thread vs process transports on a CPU-bound "
        "forced-fixpoint stream instead of the shard-warm workload",
    )
    bench_serve_parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm the fault plan on the serving side and report "
        "per-request outcome buckets (shard-warm workload only)",
    )
    bench_serve_parser.set_defaults(handler=_cmd_bench_serve)

    scenarios_parser = commands.add_parser(
        "scenarios",
        help="run the differentially-verified scenario matrix "
        "(families x modes)",
    )
    scenarios_parser.add_argument(
        "--cells",
        default=None,
        metavar="SPEC",
        help="comma list of family:mode cells; '*' wildcards either side "
        "(default: the full matrix)",
    )
    scenarios_parser.add_argument(
        "--families",
        default=None,
        metavar="LIST",
        help="comma list of families to run (crossed with --modes)",
    )
    scenarios_parser.add_argument(
        "--modes",
        default=None,
        metavar="LIST",
        help="comma list of modes to run (crossed with --families)",
    )
    scenarios_parser.add_argument("--seed", type=int, default=0)
    scenarios_parser.add_argument(
        "--scale", default="quick", choices=["quick", "full"]
    )
    scenarios_parser.add_argument(
        "--chaos",
        nargs="?",
        const="",
        default=None,
        metavar="SPEC",
        help="arm the fault plan on serving cells; bare --chaos uses the "
        "default seeded schedule",
    )
    scenarios_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the BENCH_scenarios.json payload to FILE",
    )
    scenarios_parser.add_argument(
        "--canonical",
        action="store_true",
        help="strip wall times and volatile counters from --out so the "
        "payload is byte-identical for a fixed seed",
    )
    scenarios_parser.add_argument(
        "--list",
        action="store_true",
        help="list the registered families and modes, run nothing",
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    answers_parser = commands.add_parser(
        "answers", help="certain answers of the unary query q(x)"
    )
    answers_parser.add_argument("query")
    answers_parser.add_argument("--triples")
    answers_parser.add_argument("--facts")
    answers_parser.add_argument(
        "--position", default="head", choices=["head", "tail"]
    )
    answers_parser.set_defaults(handler=_cmd_answers)

    atlas_parser = commands.add_parser(
        "atlas", help="the paper-query classification table"
    )
    atlas_parser.add_argument("--markdown", action="store_true")
    atlas_parser.set_defaults(handler=_cmd_atlas)

    report_parser = commands.add_parser(
        "report", help="reduction-agreement report (E8/E9/E10)"
    )
    report_parser.add_argument("--trials", type=int, default=10)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
