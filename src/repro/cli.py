"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro classify RRX ARRX RXRYRY
    python -m repro solve RRX --triples "R,0,1;R,1,2;R,1,3;R,2,3;X,3,4"
    python -m repro batch RRX --facts db1.txt db2.txt db3.txt --workers 4
    python -m repro answers RR --triples "R,0,1;R,1,2;R,2,3"
    python -m repro atlas
    python -m repro report --trials 10

Triples are ``relation,key,value`` separated by ``;`` (or one per line in
a file passed via ``--facts``).  Numeric constants are parsed as ints so
CLI inputs match the Python examples.

``solve`` and ``batch`` route through one :class:`CertaintyEngine`: the
query is compiled once and every instance reuses the cached plan
(``batch`` additionally fans out over ``--workers`` processes).
"""

from __future__ import annotations

import argparse
import sys
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.classification.classifier import classify
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.experiments.classification_table import classification_table
from repro.experiments.harness import Table
from repro.experiments.reductions_report import full_report
from repro.solvers.answers import certain_head_answers, certain_tail_answers


def _parse_constant(text: str) -> Hashable:
    text = text.strip()
    if text.lstrip("-").isdigit():
        return int(text)
    return text


def parse_triples(text: str) -> List[Tuple[str, Hashable, Hashable]]:
    """Parse ``"R,0,1;R,1,2"`` into fact triples."""
    triples = []
    for chunk in text.replace("\n", ";").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [p.strip() for p in chunk.split(",")]
        if len(parts) != 3:
            raise ValueError(
                "expected 'relation,key,value', got {!r}".format(chunk)
            )
        triples.append((parts[0], _parse_constant(parts[1]), _parse_constant(parts[2])))
    return triples


def _load_instance(args: argparse.Namespace) -> DatabaseInstance:
    text = ""
    if getattr(args, "facts", None):
        with open(args.facts) as handle:
            text = handle.read()
    elif getattr(args, "triples", None):
        text = args.triples
    else:
        raise SystemExit("provide --triples or --facts")
    return DatabaseInstance.from_triples(parse_triples(text))


def _cmd_classify(args: argparse.Namespace) -> int:
    table = Table(["query", "C1", "C2", "C3", "complexity"])
    for query in args.queries:
        result = classify(query)
        table.add_row(
            [
                query,
                "+" if result.c1 else "-",
                "+" if result.c2 else "-",
                "+" if result.c3 else "-",
                result.complexity,
            ]
        )
    print(table.render())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    db = _load_instance(args)
    engine = CertaintyEngine()
    result = engine.solve(db, args.query, method=args.method)
    print(result)
    if args.verbose:
        print("  details:", result.details)
        if result.falsifying_repair is not None:
            print("  falsifying repair:", result.falsifying_repair)
    return 0 if result.answer else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    instances = []
    for path in args.facts:
        with open(path) as handle:
            instances.append(
                (path, DatabaseInstance.from_triples(parse_triples(handle.read())))
            )
    engine = CertaintyEngine()
    labels = [
        (query, path, db)
        for query in args.queries
        for path, db in instances
    ]
    pairs = [(db, query) for query, _, db in labels]
    results = engine.solve_batch(
        pairs, method=args.method, workers=args.workers
    )
    table = Table(["query", "instance", "facts", "answer", "method"])
    for (query, path, db), result in zip(labels, results):
        table.add_row(
            [
                query,
                path,
                len(db),
                "certain" if result.answer else "not certain",
                result.method,
            ]
        )
    print(table.render())
    if args.stats:
        print(engine.stats)
    return 0 if all(r.answer for r in results) else 1


def _cmd_answers(args: argparse.Namespace) -> int:
    db = _load_instance(args)
    if args.position == "head":
        answers = certain_head_answers(db, args.query)
    else:
        answers = certain_tail_answers(db, args.query)
    print("certain {} answers of {}(x): {}".format(
        args.position, args.query,
        sorted(answers, key=str) if answers else "(none)",
    ))
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    print(classification_table(markdown=args.markdown))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    table = Table(["experiment", "query", "trials", "agree"])
    for row in full_report(trials=args.trials, seed=args.seed):
        table.add_row(
            [row["experiment"], row["query"], row["trials"], row["agree"]]
        )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Consistent query answering for primary keys on path queries "
        "(PODS 2021 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_parser = commands.add_parser(
        "classify", help="classify path queries (Theorem 3)"
    )
    classify_parser.add_argument("queries", nargs="+")
    classify_parser.set_defaults(handler=_cmd_classify)

    solve_parser = commands.add_parser(
        "solve", help="decide CERTAINTY(q) on an instance"
    )
    solve_parser.add_argument("query")
    solve_parser.add_argument("--triples", help="facts as 'R,0,1;R,1,2;...'")
    solve_parser.add_argument("--facts", help="file with one triple per line")
    solve_parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "fo", "nl", "fixpoint", "sat", "brute_force"],
    )
    solve_parser.add_argument("-v", "--verbose", action="store_true")
    solve_parser.set_defaults(handler=_cmd_solve)

    batch_parser = commands.add_parser(
        "batch",
        help="decide CERTAINTY(q) for queries x instances through one engine",
    )
    batch_parser.add_argument("queries", nargs="+")
    batch_parser.add_argument(
        "--facts",
        nargs="+",
        required=True,
        help="files with one 'relation,key,value' triple per line",
    )
    batch_parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "fo", "nl", "fixpoint", "sat", "brute_force"],
    )
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the batch out over N processes",
    )
    batch_parser.add_argument(
        "--stats", action="store_true", help="print engine statistics"
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    answers_parser = commands.add_parser(
        "answers", help="certain answers of the unary query q(x)"
    )
    answers_parser.add_argument("query")
    answers_parser.add_argument("--triples")
    answers_parser.add_argument("--facts")
    answers_parser.add_argument(
        "--position", default="head", choices=["head", "tail"]
    )
    answers_parser.set_defaults(handler=_cmd_answers)

    atlas_parser = commands.add_parser(
        "atlas", help="the paper-query classification table"
    )
    atlas_parser.add_argument("--markdown", action="store_true")
    atlas_parser.set_defaults(handler=_cmd_atlas)

    report_parser = commands.add_parser(
        "report", help="reduction-agreement report (E8/E9/E10)"
    )
    report_parser.add_argument("--trials", type=int, default=10)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
