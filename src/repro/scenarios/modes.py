"""The matrix's execution-mode axis: one workload, four serving paths.

A **mode** executes a :class:`~repro.scenarios.families.Workload` and
returns a :class:`ModeOutcome`: every answered request paired with the
client-side committed instance it must be verified against, typed-error
buckets, wall time, and the path's own counters.  The modes are the
system's real entry points:

* ``batch`` -- direct :meth:`CertaintyEngine.solve_batch` over the base
  instances (the PR 1 library path);
* ``stream`` -- :meth:`CertaintyEngine.solve_delta` chains: each delta
  is folded into the maintained state, then every query is re-read on
  the committed instance (the PR 2 incremental path);
* ``serve-thread`` / ``serve-process`` -- multi-tenant mixed traffic
  through :class:`~repro.serving.server.AsyncCertaintyServer` on the
  respective shard transport: concurrent registration, interleaved
  write waves, then a duplicated read burst (coalescing) and a final
  ``get_instance`` cross-check against the client-side replay.  Both
  accept an optional armed
  :class:`~repro.serving.faults.FaultPlan` (``--chaos``);
* ``serve-replicated`` -- the same traffic on the thread transport,
  journaled through a
  :class:`~repro.serving.replication.ReplicatedJournalStore` (one
  primary, two followers).  Under chaos it additionally arms a
  deterministic *journal* fault plan (``write_error`` + ``stall``), so
  the cell's answers are oracle-verified straight through mid-traffic
  primary failovers.

Answers are *recorded*, never judged here -- the differential verdict
belongs to :mod:`repro.scenarios.oracle`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.scenarios.families import Workload
from repro.scenarios.oracle import AnsweredRequest

#: Shard count for the serving modes (two shards exercise routing
#: without swamping quick cells in process start-up).
SERVE_SHARDS = 2

_EMPTY_DELTA = Delta()


@dataclass
class ModeOutcome:
    """What one mode did with one workload."""

    mode: str
    answered: List[AnsweredRequest]
    errors: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    counters: Dict[str, object] = field(default_factory=dict)
    #: Serving modes: did every shard's final instance equal the
    #: client-side replay?  ``None`` for the engine-direct modes.
    final_ok: Optional[bool] = None

    @property
    def route_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for request in self.answered:
            mix[request.method] = mix.get(request.method, 0) + 1
        return dict(sorted(mix.items()))


@dataclass(frozen=True)
class ModeSpec:
    """A registered mode: name, blurb, runner, and chaos support."""

    name: str
    description: str
    run: Callable[..., ModeOutcome]
    supports_chaos: bool = False


def run_batch(workload: Workload, chaos=None) -> ModeOutcome:
    """Static solves over the base instances via ``solve_batch``."""
    engine = CertaintyEngine()
    labels: List[Tuple[str, str, DatabaseInstance]] = []
    for name in workload.names:
        db = workload.instances[name]
        for query in workload.queries[name]:
            labels.append((name, query, db))
    start = time.perf_counter()
    results = engine.solve_batch(
        [(db, query) for _, query, db in labels], strip_certificates=True
    )
    wall = time.perf_counter() - start
    answered = [
        AnsweredRequest(name, query, result.answer, result.method, db)
        for (name, query, db), result in zip(labels, results)
    ]
    return ModeOutcome(
        "batch",
        answered,
        wall_seconds=wall,
        counters={"solves": engine.stats.solves},
    )


def run_stream(workload: Workload, chaos=None) -> ModeOutcome:
    """``solve_delta`` chains: fold each delta, re-read every query.

    After each committed delta the *other* queries are re-read through
    an empty delta, so the engine maintains one
    :class:`~repro.solvers.fixpoint.FixpointState` per query along the
    chain and the next step's fold is a genuine incremental hit.
    """
    engine = CertaintyEngine()
    answered: List[AnsweredRequest] = []
    start = time.perf_counter()
    for name in workload.names:
        db = workload.instances[name]
        queries = workload.queries[name]
        for query in queries:
            result = engine.solve(db, query)
            answered.append(
                AnsweredRequest(name, query, result.answer, result.method, db)
            )
        for index, delta in enumerate(workload.deltas.get(name, ())):
            primary = queries[index % len(queries)]
            result = engine.solve_delta(db, delta, primary)
            db = delta.apply_to(db).commit()
            answered.append(
                AnsweredRequest(name, primary, result.answer, result.method, db)
            )
            for query in queries:
                if query == primary:
                    continue
                result = engine.solve_delta(db, _EMPTY_DELTA, query)
                answered.append(
                    AnsweredRequest(
                        name, query, result.answer, result.method, db
                    )
                )
    wall = time.perf_counter() - start
    return ModeOutcome(
        "stream",
        answered,
        wall_seconds=wall,
        counters={
            "delta_solves": engine.stats.delta_solves,
            "incremental_hits": engine.stats.incremental_hits,
            "full_resolves": engine.stats.full_resolves,
        },
    )


def _classify_error(error: BaseException) -> str:
    from repro.serving.shard import (
        DeadlineExceeded,
        ServerOverloaded,
        ShardUnavailable,
    )

    if isinstance(error, DeadlineExceeded):
        return "deadline_exceeded"
    if isinstance(error, ServerOverloaded):
        return "overloaded"
    if isinstance(error, ShardUnavailable):
        return "unavailable"
    return "other_error"


#: The journal fault schedule the chaos-armed ``serve-replicated`` cell
#: runs: two primary write failures (each forcing a follower promotion)
#: plus two sub-millisecond stalls, seeded so every run injects the
#: same schedule.  A *separate* plan from the transport ``--chaos``
#: spec, so transport draws never consume journal budgets.
REPLICATED_JOURNAL_CHAOS = (
    "write_error:every=5,times=2;"
    "stall:seconds=0.001,every=9,times=2;seed=0"
)


def _run_serve(
    workload: Workload, transport: str, chaos=None, replicated: bool = False
) -> ModeOutcome:
    """Multi-tenant traffic through the async server on *transport*.

    The schedule mixes tenants the way real traffic does: a read of
    every ``(resident, query)`` pair on the base state, write **waves**
    (wave *i* carries every resident's *i*-th delta, concurrently --
    different shards proceed in parallel, per-resident order is
    preserved), then a duplicated concurrent read burst against the
    final state (identical reads coalesce inside micro-batches) and a
    ``get_instance`` replay cross-check.  Writes are awaited without
    deadlines, so under chaos the crash-retry path must land each one
    exactly once -- any divergence surfaces as a replay mismatch.
    """
    from repro.serving.server import AsyncCertaintyServer
    from repro.serving.supervision import RestartPolicy

    names = workload.names
    replay: Dict[str, DatabaseInstance] = dict(workload.instances)
    answered: List[AnsweredRequest] = []
    errors: Dict[str, int] = {}

    def record_reads(pairs, results, snapshot):
        for (name, query), result in zip(pairs, results):
            if isinstance(result, BaseException):
                bucket = _classify_error(result)
                errors[bucket] = errors.get(bucket, 0) + 1
            else:
                answered.append(
                    AnsweredRequest(
                        name, query, result.answer, result.method,
                        snapshot[name],
                    )
                )

    async def scenario():
        options: Dict[str, object] = {}
        if replicated:
            options["journal_store"] = "replicated:memory;memory,memory"
            if chaos is not None:
                options["journal_faults"] = REPLICATED_JOURNAL_CHAOS
        if chaos is not None:
            options.setdefault("journal_store", "memory")
            options.update(
                faults=chaos,
                restart_policy=RestartPolicy(
                    max_restarts=64, backoff_base=0.0
                ),
            )
        async with AsyncCertaintyServer(
            num_shards=SERVE_SHARDS,
            transport=transport,
            max_batch=8,
            max_delay=0.001,
            **options,
        ) as server:
            for name in names:
                await server.register(name, workload.instances[name])
            base_pairs = [
                (name, query)
                for name in names
                for query in workload.queries[name]
            ]
            base_results = await asyncio.gather(
                *(server.solve(n, q) for n, q in base_pairs),
                return_exceptions=True,
            )
            record_reads(base_pairs, base_results, dict(replay))
            waves = max(
                (len(workload.deltas.get(name, ())) for name in names),
                default=0,
            )
            for wave in range(waves):
                writers = [
                    (name, workload.deltas[name][wave])
                    for name in names
                    if wave < len(workload.deltas.get(name, ()))
                ]
                results = await asyncio.gather(
                    *(
                        server.solve_delta(
                            name, delta, workload.queries[name][0]
                        )
                        for name, delta in writers
                    )
                )
                for (name, delta), result in zip(writers, results):
                    replay[name] = delta.apply_to(replay[name]).commit()
                    answered.append(
                        AnsweredRequest(
                            name,
                            workload.queries[name][0],
                            result.answer,
                            result.method,
                            replay[name],
                        )
                    )
            burst = [
                (name, query)
                for name in names
                for query in workload.queries[name]
            ] * 2
            burst_results = await asyncio.gather(
                *(server.solve(n, q) for n, q in burst),
                return_exceptions=True,
            )
            record_reads(burst, burst_results, replay)
            finals = {}
            for name in names:
                finals[name] = await server.get_instance(name)
            return finals, server.stats()

    start = time.perf_counter()
    finals, stats = asyncio.run(scenario())
    wall = time.perf_counter() - start

    final_ok = all(finals[name] == replay[name] for name in names)
    shards = stats["shards"]
    counters = {
        "warm_hits": sum(s["warm_hits"] for s in shards),
        "cold_solves": sum(s["cold_solves"] for s in shards),
        "coalesced": sum(s["coalesced"] for s in shards),
        "restarts": sum(s["transport"]["restarts"] for s in shards),
        "deadline_shed": stats["admission"].get("deadline_shed", 0),
        "overload_shed": stats["admission"].get("overload_shed", 0),
        "faults_injected": dict(stats["faults"].get("injected") or {}),
    }
    if replicated:
        replication = stats["journal"]["replication"]
        counters["failovers"] = replication["failovers"]
        counters["journal_faults_injected"] = dict(
            stats["journal_faults"].get("injected") or {}
        )
    return ModeOutcome(
        "serve-replicated" if replicated else "serve-" + transport,
        answered,
        errors=errors,
        wall_seconds=wall,
        counters=counters,
        final_ok=final_ok,
    )


def run_serve_thread(workload: Workload, chaos=None) -> ModeOutcome:
    return _run_serve(workload, "thread", chaos=chaos)


def run_serve_process(workload: Workload, chaos=None) -> ModeOutcome:
    return _run_serve(workload, "process", chaos=chaos)


def run_serve_replicated(workload: Workload, chaos=None) -> ModeOutcome:
    return _run_serve(workload, "thread", chaos=chaos, replicated=True)


#: The mode axis, in display order.
MODES: Dict[str, ModeSpec] = {
    spec.name: spec
    for spec in (
        ModeSpec(
            "batch",
            "direct CertaintyEngine.solve_batch over the base instances",
            run_batch,
        ),
        ModeSpec(
            "stream",
            "solve_delta chains through the maintained fixpoint states",
            run_stream,
        ),
        ModeSpec(
            "serve-thread",
            "multi-tenant traffic through AsyncCertaintyServer (threads)",
            run_serve_thread,
            supports_chaos=True,
        ),
        ModeSpec(
            "serve-process",
            "multi-tenant traffic through AsyncCertaintyServer (processes)",
            run_serve_process,
            supports_chaos=True,
        ),
        ModeSpec(
            "serve-replicated",
            "serve-thread journaled through a replicated store; chaos "
            "arms journal faults (mid-traffic primary failover)",
            run_serve_replicated,
            supports_chaos=True,
        ),
    )
}
