"""The differential reference oracle every matrix cell answers to.

A scenario cell is only evidence if something *independent* checks it:
the serving stack under test routes answers through compiled plans,
compact kernels, maintained fixpoint states, shard transports, and
journals -- precisely the machinery a regression would live in.  The
oracle therefore re-decides every answered request on the relevant
*committed* instance through a disjoint code path:

* **brute force** (repair enumeration, the semantic definition) whenever
  the instance has at most *repair_limit* repairs;
* the **object-plane SAT encoding** otherwise -- no interners, no
  compact views, no incremental state, sound and complete for every
  complexity class.

The same oracle backs three consumers with one code path (so a bug in
the cross-check cannot hide in a private copy):

* the scenario matrix (:mod:`repro.scenarios.matrix`) verifies every
  answered request of every cell through :func:`verify_answers`;
* ``tests/test_chaos.py`` verifies chaos-run read bursts through
  :func:`check_read_outcomes`;
* the hypothesis delta-chain properties in ``tests/test_properties.py``
  call :func:`reference_answer` directly.

>>> from repro.db.instance import DatabaseInstance
>>> db = DatabaseInstance.from_triples(
...     [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)])
>>> reference_answer(db, "RRX")
True
>>> verify_answers([AnsweredRequest("toy", "RRX", False, "nl", db)])
[Mismatch(name='toy', query='RRX', got=False, want=True)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.queries.generalized import GeneralizedPathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.sat_encoding import certain_answer_sat
from repro.words.word import Word, WordLike

#: Above this many repairs the oracle switches from enumeration to the
#: object-plane SAT encoding (still independent of everything the matrix
#: exercises, just not the literal semantic definition).
DEFAULT_REPAIR_LIMIT = 512


def reference_answer(
    db: DatabaseInstance,
    query: WordLike,
    repair_limit: int = DEFAULT_REPAIR_LIMIT,
) -> bool:
    """Independent ground truth for CERTAINTY(*query*) on *db*.

    Section 8 generalized path queries are accepted as-is: both backends
    decide them directly (repair enumeration semantically, the SAT
    encoding via its conjunctive-query translation), so the oracle stays
    disjoint from the engine's Lemma 27/29 segment-and-``ext(q)`` route.
    """
    if isinstance(query, GeneralizedPathQuery):
        target: object = query
    else:
        target = Word.coerce(query)
    if count_repairs(db) <= repair_limit:
        return certain_answer_brute_force(db, target, repair_limit=None).answer
    return certain_answer_sat(db, target).answer


@dataclass(frozen=True)
class AnsweredRequest:
    """One answered request plus the committed instance it must match.

    *expected_db* is the client-side replay of the instance at the
    moment the answer was read: the base instance for static solves,
    the committed chain state for delta steps, the final state for
    post-write read bursts.
    """

    name: str
    query: Hashable
    answer: bool
    method: str
    expected_db: DatabaseInstance


@dataclass(frozen=True)
class Mismatch:
    """A differentially-wrong answer: the cell said *got*, truth is *want*."""

    name: str
    query: Hashable
    got: bool
    want: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "query": str(self.query),
            "got": self.got,
            "want": self.want,
        }


def verify_answers(
    answered: Iterable[AnsweredRequest],
    repair_limit: int = DEFAULT_REPAIR_LIMIT,
) -> List[Mismatch]:
    """Re-decide every answered request; return the disagreements.

    Distinct requests frequently share one committed instance (a read
    burst against the final state), so reference answers are memoized
    per ``(instance, query)`` within the call.
    """
    memo: Dict[Tuple[int, str], bool] = {}
    keepalive: Dict[int, DatabaseInstance] = {}
    mismatches: List[Mismatch] = []
    for request in answered:
        key = (id(request.expected_db), request.query)
        keepalive[id(request.expected_db)] = request.expected_db
        if key not in memo:
            memo[key] = reference_answer(
                request.expected_db, request.query, repair_limit=repair_limit
            )
        if request.answer != memo[key]:
            mismatches.append(
                Mismatch(
                    name=request.name,
                    query=request.query,
                    got=request.answer,
                    want=memo[key],
                )
            )
    return mismatches


def check_read_outcomes(
    outcomes: Iterable[object],
    db: DatabaseInstance,
    query: WordLike,
    allowed: Tuple[type, ...] = (),
    repair_limit: int = DEFAULT_REPAIR_LIMIT,
) -> Dict[str, object]:
    """The chaos-run cross-check: answers match the reference, errors
    are typed.

    *outcomes* is a gathered result list (``return_exceptions=True``
    style): each entry is either a
    :class:`~repro.solvers.result.CertaintyResult` -- whose answer must
    equal :func:`reference_answer` on the committed instance *db* -- or
    an exception, which must be an instance of one of the *allowed*
    types (a request may be shed, never answered wrongly and never
    hung).  Raises :class:`AssertionError` on the first violation;
    returns ``{"reference", "answered", "errors"}`` counts otherwise.
    """
    reference = reference_answer(db, query, repair_limit=repair_limit)
    answered = errors = 0
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            if not isinstance(outcome, tuple(allowed)):
                raise AssertionError(
                    "disallowed error from read: {!r}".format(outcome)
                )
            errors += 1
        else:
            if outcome.answer is not reference:
                raise AssertionError(
                    "read answered {} but the reference on the committed "
                    "instance says {}".format(outcome.answer, reference)
                )
            answered += 1
    return {"reference": reference, "answered": answered, "errors": errors}
