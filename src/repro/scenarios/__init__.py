"""Scenario matrix: instance families x execution modes, differentially
verified.

The harness crosses seeded instance families (paper figures, random
graphs, planted paths, coNP hardness gadgets, firehose delta streams)
with the system's real entry points (``solve_batch``, ``solve_delta``
chains, the async server on thread and process transports, optionally
under chaos), and re-decides every answered request through an
independent reference oracle.  See ``docs/scenarios.md``.
"""

from repro.scenarios.families import (
    FAMILIES,
    FOUR_CLASS_QUERIES,
    FamilySpec,
    Workload,
    build_workload,
)
from repro.scenarios.matrix import (
    SMOKE_CELLS,
    CellRecord,
    default_chaos_spec,
    default_matrix,
    parse_cells,
    run_cell,
    run_matrix,
)
from repro.scenarios.modes import MODES, ModeOutcome, ModeSpec
from repro.scenarios.oracle import (
    DEFAULT_REPAIR_LIMIT,
    AnsweredRequest,
    Mismatch,
    check_read_outcomes,
    reference_answer,
    verify_answers,
)
from repro.scenarios.report import (
    matrix_report,
    render_report,
    write_report,
)

__all__ = [
    "AnsweredRequest",
    "CellRecord",
    "DEFAULT_REPAIR_LIMIT",
    "FAMILIES",
    "FOUR_CLASS_QUERIES",
    "FamilySpec",
    "MODES",
    "Mismatch",
    "ModeOutcome",
    "ModeSpec",
    "SMOKE_CELLS",
    "Workload",
    "build_workload",
    "check_read_outcomes",
    "default_chaos_spec",
    "default_matrix",
    "matrix_report",
    "parse_cells",
    "reference_answer",
    "render_report",
    "run_cell",
    "run_matrix",
    "verify_answers",
    "write_report",
]
