"""The matrix's instance-family axis: seeded workload builders.

A **family** turns ``(seed, scale)`` into a :class:`Workload`: named
base instances, the queries asked of each, and a per-instance ordered
stream of :class:`~repro.db.delta.Delta` update batches.  Every mode
(:mod:`repro.scenarios.modes`) runs the same workload shape, so a cell
is exactly "this family's traffic through that execution path".

Families deliberately stress different routes of the tetrachotomy:

* ``paper`` -- the figure/example instances the paper's claims are
  pinned to, perturbed by short seeded delta streams;
* ``random`` -- seeded :func:`~repro.workloads.generators.random_instance`
  graphs over the four-class alphabet;
* ``planted`` -- instances with planted query paths plus conflicting
  noise (balanced yes/no answers);
* ``gadget`` -- coNP hardness gadgets
  (:func:`~repro.workloads.generators.hardness_gadget_instance`) that
  force the SAT route with known ground truth;
* ``firehose`` -- modest bases under long seeded delta streams (the
  update path is the workload), asked the four-class words *plus* the
  Section 8 constant-carrying queries (``GENERALIZED_QUERIES``).

All randomness flows through one ``random.Random(seed)`` per build, so
the same seed reproduces the same workload bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Tuple

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.queries.generalized import GeneralizedPathQuery
from repro.workloads.generators import (
    firehose_stream,
    hardness_gadget_instance,
    planted_instance,
    random_instance,
)
from repro.workloads.paper_instances import (
    example5_instance,
    figure2_instance,
    figure3_instance,
    figure6_instance,
    intro_rr_fo_instance,
)

#: One query per route of the tetrachotomy (FO, NL-complete,
#: PTIME-complete, coNP-complete) over the shared scenario alphabet.
FOUR_CLASS_QUERIES: Tuple[str, ...] = ("RXRX", "RRX", "RXRYRY", "ARRX")

#: The gadget family's coNP query (head symbol never recurs).
GADGET_QUERY = "ARRX"

#: Section 8 constant-carrying queries for the update-heavy family: one
#: pure Lemma 27 segment (leading constant) and one ``ext(q)`` reduction
#: (terminal constant), both over the shared scenario constants.
GENERALIZED_QUERIES: Tuple[GeneralizedPathQuery, ...] = (
    GeneralizedPathQuery("RR", {0: 0}),
    GeneralizedPathQuery("RX", {2: 1}),
)


@dataclass(frozen=True)
class Workload:
    """One family's traffic: residents, per-resident queries and deltas."""

    family: str
    seed: int
    scale: str
    instances: Dict[str, DatabaseInstance]
    queries: Dict[str, Tuple[Hashable, ...]]
    deltas: Dict[str, Tuple[Delta, ...]] = field(default_factory=dict)

    @property
    def names(self) -> List[str]:
        return sorted(self.instances)


@dataclass(frozen=True)
class FamilySpec:
    """A registered family: its name, blurb, and seeded builder."""

    name: str
    description: str
    build: Callable[[int, str], Workload]


def _sizes(scale: str) -> Dict[str, int]:
    """Per-scale knobs; ``quick`` keeps smoke cells in CI budget."""
    if scale == "quick":
        return {"instances": 2, "facts": 12, "constants": 5, "deltas": 3}
    if scale == "full":
        return {"instances": 3, "facts": 22, "constants": 7, "deltas": 6}
    raise ValueError("unknown scale {!r} (use 'quick' or 'full')".format(scale))


def _stream(
    rng: random.Random, db: DatabaseInstance, n: int
) -> Tuple[Delta, ...]:
    return tuple(firehose_stream(rng, db, n, max_edits=2))


def build_paper_family(seed: int, scale: str = "quick") -> Workload:
    """The paper's figure/example instances under seeded perturbation."""
    rng = random.Random(seed)
    size = _sizes(scale)
    picks = [
        ("figure2", figure2_instance(), ("RRX", "RR")),
        ("figure3", figure3_instance(), ("ARRX", "RRX")),
        ("figure6", figure6_instance(), ("RRX", "RXRX")),
        ("example5", example5_instance(), ("RRX", "RR")),
        ("intro_rr", intro_rr_fo_instance(), ("RR", "RRX")),
    ]
    if scale == "quick":
        picks = picks[:3]
    instances = {name: db for name, db, _ in picks}
    queries = {name: qs for name, _, qs in picks}
    deltas = {
        name: _stream(rng, instances[name], size["deltas"])
        for name in sorted(instances)
    }
    return Workload("paper", seed, scale, instances, queries, deltas)


def build_random_family(seed: int, scale: str = "quick") -> Workload:
    """Seeded random graphs over the four-class alphabet."""
    rng = random.Random(seed)
    size = _sizes(scale)
    instances = {
        "rand{}".format(i): random_instance(
            rng,
            size["constants"],
            size["facts"],
            ("A", "R", "X", "Y"),
            conflict_rate=0.5,
        )
        for i in range(size["instances"])
    }
    queries = {name: FOUR_CLASS_QUERIES for name in instances}
    deltas = {
        name: _stream(rng, instances[name], size["deltas"])
        for name in sorted(instances)
    }
    return Workload("random", seed, scale, instances, queries, deltas)


def build_planted_family(seed: int, scale: str = "quick") -> Workload:
    """Planted query paths plus conflicting noise, one per route."""
    rng = random.Random(seed)
    size = _sizes(scale)
    instances: Dict[str, DatabaseInstance] = {}
    queries: Dict[str, Tuple[str, ...]] = {}
    for i, query in enumerate(FOUR_CLASS_QUERIES):
        if scale == "quick" and i >= 2:
            break
        name = "plant_{}".format(query.lower())
        instances[name] = planted_instance(
            rng,
            query,
            n_constants=size["constants"],
            n_paths=2,
            n_noise_facts=size["facts"] // 2,
            conflict_rate=0.5,
        )
        queries[name] = (query, "RRX") if query != "RRX" else (query, "RXRX")
    deltas = {
        name: _stream(rng, instances[name], size["deltas"])
        for name in sorted(instances)
    }
    return Workload("planted", seed, scale, instances, queries, deltas)


def build_gadget_family(seed: int, scale: str = "quick") -> Workload:
    """coNP hardness gadgets with a balanced yes/no mix."""
    rng = random.Random(seed)
    size = _sizes(scale)
    branches = 3 if scale == "quick" else 5
    instances: Dict[str, DatabaseInstance] = {}
    for i in range(size["instances"]):
        # Alternate provable "yes" (>= 1 straight branch) and "no"
        # (all bifurcated) gadgets; the rng shuffles the internals.
        n_straight = rng.randint(1, branches) if i % 2 == 0 else 0
        instances["gadget{}".format(i)] = hardness_gadget_instance(
            rng, branches, n_straight, query=GADGET_QUERY
        )
    queries = {name: (GADGET_QUERY, "RRX") for name in instances}
    deltas = {
        name: _stream(rng, instances[name], size["deltas"])
        for name in sorted(instances)
    }
    return Workload("gadget", seed, scale, instances, queries, deltas)


def build_firehose_family(seed: int, scale: str = "quick") -> Workload:
    """Small bases, long update streams: the delta path is the workload."""
    rng = random.Random(seed)
    size = _sizes(scale)
    n_deltas = 8 if scale == "quick" else 20
    instances = {
        "hose{}".format(i): random_instance(
            rng,
            size["constants"],
            max(6, size["facts"] // 2),
            ("A", "R", "X", "Y"),
            conflict_rate=0.4,
        )
        for i in range(size["instances"])
    }
    queries = {
        name: FOUR_CLASS_QUERIES + GENERALIZED_QUERIES for name in instances
    }
    deltas = {
        name: tuple(
            firehose_stream(rng, instances[name], n_deltas, max_edits=3)
        )
        for name in sorted(instances)
    }
    return Workload("firehose", seed, scale, instances, queries, deltas)


#: The family axis, in display order.
FAMILIES: Dict[str, FamilySpec] = {
    spec.name: spec
    for spec in (
        FamilySpec(
            "paper",
            "paper figures/examples under seeded perturbation",
            build_paper_family,
        ),
        FamilySpec(
            "random",
            "seeded random graphs over the four-class alphabet",
            build_random_family,
        ),
        FamilySpec(
            "planted",
            "planted query paths plus conflicting noise",
            build_planted_family,
        ),
        FamilySpec(
            "gadget",
            "coNP hardness gadgets (SAT route, known ground truth)",
            build_gadget_family,
        ),
        FamilySpec(
            "firehose",
            "long seeded delta streams over small bases",
            build_firehose_family,
        ),
    )
}


def build_workload(family: str, seed: int, scale: str = "quick") -> Workload:
    """Build *family*'s workload for ``(seed, scale)``."""
    if family not in FAMILIES:
        raise ValueError(
            "unknown family {!r} (have: {})".format(
                family, ", ".join(sorted(FAMILIES))
            )
        )
    return FAMILIES[family].build(seed, scale)
