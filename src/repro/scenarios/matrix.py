"""The scenario matrix: instance families x execution modes, verified.

A **cell** is one ``(family, mode)`` pair.  Running a cell builds the
family's seeded workload, executes it through the mode, and hands every
answered request to the differential oracle
(:mod:`repro.scenarios.oracle`); the result is a :class:`CellRecord` --
answers verified, route mix, wall time, shed/restart counters -- the
unit the per-cell benchmarks and ``BENCH_scenarios.json`` aggregate.

>>> record = run_cell("paper", "batch", seed=7)
>>> record.cell
'paper:batch'
>>> record.mismatches
[]
>>> record.answered == record.verified > 0
True

The default matrix is the full cross product (>= 16 cells); subsets are
named ``family:mode`` with ``*`` wildcards, e.g. ``"gadget:*"`` or
``"*:serve-thread"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.scenarios.families import FAMILIES, build_workload
from repro.scenarios.modes import MODES, ModeOutcome
from repro.scenarios.oracle import (
    DEFAULT_REPAIR_LIMIT,
    Mismatch,
    verify_answers,
)

#: The four cells tier-1 CI smoke-runs (one per mode, families varied).
SMOKE_CELLS: Tuple[Tuple[str, str], ...] = (
    ("paper", "batch"),
    ("random", "stream"),
    ("planted", "serve-thread"),
    ("gadget", "batch"),
)


def default_chaos_spec(seed: int) -> str:
    """The ``--chaos`` schedule armed on serving cells: crashes after
    commit, duplicated deliveries, and delays, all seeded."""
    return (
        "crash:every=5,times=2;dup:every=6,times=2;"
        "delay:seconds=0.05,every=7,times=2;seed={}".format(seed)
    )


@dataclass
class CellRecord:
    """One cell's outcome: what ran, what was verified, what it cost."""

    family: str
    mode: str
    seed: int
    scale: str
    chaos: Optional[str]
    requests: int
    answered: int
    verified: int
    mismatches: List[Mismatch]
    route_mix: Dict[str, int]
    errors: Dict[str, int]
    wall_seconds: float
    counters: Dict[str, object] = field(default_factory=dict)
    final_ok: Optional[bool] = None

    @property
    def cell(self) -> str:
        return "{}:{}".format(self.family, self.mode)

    @property
    def ok(self) -> bool:
        """Differentially clean: every answer verified, replay matched."""
        return not self.mismatches and self.final_ok is not False

    def as_dict(self, include_timing: bool = True) -> Dict[str, object]:
        """A JSON-ready dict; without *include_timing* only fields that
        are bit-for-bit reproducible for a seed remain (the canonical
        form the determinism test byte-compares)."""
        payload: Dict[str, object] = {
            "cell": self.cell,
            "family": self.family,
            "mode": self.mode,
            "seed": self.seed,
            "scale": self.scale,
            "chaos": self.chaos,
            "requests": self.requests,
            "answered": self.answered,
            "verified": self.verified,
            "mismatches": [m.as_dict() for m in self.mismatches],
            "route_mix": dict(self.route_mix),
            "errors": dict(self.errors),
            "final_ok": self.final_ok,
        }
        if include_timing:
            payload["wall_seconds"] = self.wall_seconds
            payload["counters"] = dict(self.counters)
        return payload


def default_matrix() -> List[Tuple[str, str]]:
    """Every family crossed with every mode, in display order."""
    return [(family, mode) for family in FAMILIES for mode in MODES]


def parse_cells(spec: str) -> List[Tuple[str, str]]:
    """Parse ``"paper:batch,gadget:*,*:stream"`` into cell pairs.

    Each comma-separated entry is ``family:mode``; either side may be
    ``*``.  Order follows the spec, duplicates are dropped.
    """
    cells: List[Tuple[str, str]] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        family, sep, mode = chunk.partition(":")
        if not sep:
            raise ValueError(
                "cell {!r} is not of the form family:mode".format(chunk)
            )
        families = sorted(FAMILIES) if family == "*" else [family]
        modes = sorted(MODES) if mode == "*" else [mode]
        for f in families:
            if f not in FAMILIES:
                raise ValueError(
                    "unknown family {!r} (have: {})".format(
                        f, ", ".join(sorted(FAMILIES))
                    )
                )
            for m in modes:
                if m not in MODES:
                    raise ValueError(
                        "unknown mode {!r} (have: {})".format(
                            m, ", ".join(sorted(MODES))
                        )
                    )
                if (f, m) not in cells:
                    cells.append((f, m))
    if not cells:
        raise ValueError("empty cell spec")
    return cells


def run_cell(
    family: str,
    mode: str,
    seed: int = 0,
    scale: str = "quick",
    chaos: Optional[str] = None,
    repair_limit: int = DEFAULT_REPAIR_LIMIT,
) -> CellRecord:
    """Run one cell and differentially verify every answered request.

    *chaos* (a ``--chaos`` spec string) is armed only on modes that
    support it (the serving modes); engine-direct modes record
    ``chaos=None``.  Verification never samples: every answered request
    is re-decided by the oracle on its committed instance.
    """
    if mode not in MODES:
        raise ValueError(
            "unknown mode {!r} (have: {})".format(
                mode, ", ".join(sorted(MODES))
            )
        )
    spec = MODES[mode]
    workload = build_workload(family, seed, scale)
    armed = chaos if spec.supports_chaos else None
    outcome: ModeOutcome = spec.run(workload, chaos=armed)
    mismatches = verify_answers(outcome.answered, repair_limit=repair_limit)
    answered = len(outcome.answered)
    errored = sum(outcome.errors.values())
    return CellRecord(
        family=family,
        mode=mode,
        seed=seed,
        scale=scale,
        chaos=armed,
        requests=answered + errored,
        answered=answered,
        verified=answered - len(mismatches),
        mismatches=mismatches,
        route_mix=outcome.route_mix,
        errors=dict(outcome.errors),
        wall_seconds=outcome.wall_seconds,
        counters=dict(outcome.counters),
        final_ok=outcome.final_ok,
    )


def run_matrix(
    cells: Optional[Iterable[Tuple[str, str]]] = None,
    seed: int = 0,
    scale: str = "quick",
    chaos: Optional[str] = None,
    repair_limit: int = DEFAULT_REPAIR_LIMIT,
    progress=None,
) -> List[CellRecord]:
    """Run *cells* (default: the full matrix) and return their records.

    *progress*, when given, is called with each finished
    :class:`CellRecord` -- the CLI uses it to stream the table.
    """
    records: List[CellRecord] = []
    for family, mode in cells if cells is not None else default_matrix():
        record = run_cell(
            family,
            mode,
            seed=seed,
            scale=scale,
            chaos=chaos,
            repair_limit=repair_limit,
        )
        records.append(record)
        if progress is not None:
            progress(record)
    return records
