"""Serialize matrix runs into the repo's shared benchmark format.

``BENCH_scenarios.json`` carries two sections:

* ``benchmarks`` -- one pytest-benchmark-compatible entry per cell
  (``name="family:mode"``, wall time in ``stats``, verification counts
  in ``extra_info``), so :mod:`tools.bench_report` folds scenario cells
  into ``BENCH_report.md`` next to the kernel and serving benches;
* ``scenarios`` -- the full :class:`~repro.scenarios.matrix.CellRecord`
  dicts, for humans and the determinism test.

With ``include_timing=False`` the payload drops wall times and volatile
counters (micro-batch shapes, coalescing, warm/cold splits vary with
scheduling), leaving the **canonical form**: for a fixed seed two runs
of the same deterministic cells serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.scenarios.matrix import CellRecord


def cell_benchmark_entry(
    record: CellRecord, include_timing: bool = True
) -> Dict[str, object]:
    """One pytest-benchmark-style entry for *record*."""
    wall = record.wall_seconds if include_timing else 0.0
    extra: Dict[str, object] = {
        "family": record.family,
        "mode": record.mode,
        "seed": record.seed,
        "scale": record.scale,
        "chaos": record.chaos,
        "requests": record.requests,
        "answered": record.answered,
        "verified": record.verified,
        "mismatches": len(record.mismatches),
        "routes": dict(record.route_mix),
        "notes": "verified {}/{}".format(record.verified, record.answered),
    }
    if record.final_ok is not None:
        extra["final_ok"] = record.final_ok
    return {
        "name": "scenario[{}]".format(record.cell),
        "fullname": "scenarios::{}".format(record.cell),
        "group": "scenarios",
        "stats": {
            "min": wall,
            "max": wall,
            "mean": wall,
            "stddev": 0.0,
            "rounds": 1,
            "median": wall,
            "iterations": 1,
        },
        "extra_info": extra,
    }


def matrix_report(
    records: Iterable[CellRecord], include_timing: bool = True
) -> Dict[str, object]:
    """The full ``BENCH_scenarios.json`` payload for *records*."""
    records = list(records)
    return {
        "machine_info": {"harness": "repro.scenarios"},
        "benchmarks": [
            cell_benchmark_entry(r, include_timing=include_timing)
            for r in records
        ],
        "scenarios": {
            "cells": [
                r.as_dict(include_timing=include_timing) for r in records
            ],
            "totals": {
                "cells": len(records),
                "requests": sum(r.requests for r in records),
                "answered": sum(r.answered for r in records),
                "verified": sum(r.verified for r in records),
                "mismatches": sum(len(r.mismatches) for r in records),
            },
        },
    }


def render_report(
    records: Iterable[CellRecord], include_timing: bool = True
) -> str:
    """The canonical JSON text (sorted keys, 2-space indent, ``\\n``
    line ends) -- byte-comparable across runs when timing is stripped."""
    payload = matrix_report(records, include_timing=include_timing)
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def write_report(
    path: str, records: Iterable[CellRecord], include_timing: bool = True
) -> None:
    """Write :func:`render_report` to *path*."""
    text = render_report(records, include_timing=include_timing)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
