"""Facts: variable-free binary atoms (Section 2).

Two facts are *key-equal* if they use the same relation name and agree on
the primary key (the first position).  A block ``R(c, *)`` is a maximal set
of key-equal facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple


@dataclass(frozen=True)
class Fact:
    """A fact ``R(key, value)`` over constants.

    Constants are arbitrary hashable values; strings, ints and tuples in
    practice.  Ordering is lexicographic on the *string renderings* of
    ``(relation, key, value)``, which gives instances a canonical,
    type-robust iteration order even when constants of different Python
    types are mixed (reduction gadgets use tuple constants alongside
    strings).
    """

    relation: str
    key: Hashable
    value: Hashable

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("relation name must be nonempty")

    def _sort_key(self) -> Tuple[str, str, str]:
        return (self.relation, repr(self.key), repr(self.value))

    def __lt__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    @property
    def block_id(self) -> Tuple[str, Hashable]:
        """The identifier ``(R, c)`` of the block ``R(c, *)`` this fact is in."""
        return (self.relation, self.key)

    def key_equal(self, other: "Fact") -> bool:
        """True iff the two facts are key-equal (same relation, same key)."""
        return self.block_id == other.block_id

    def as_triple(self) -> Tuple[str, Hashable, Hashable]:
        return (self.relation, self.key, self.value)

    def __str__(self) -> str:
        return "{}({}, {})".format(self.relation, self.key, self.value)
