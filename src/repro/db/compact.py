"""The compact, array-backed execution view of a database instance.

The object-level :class:`~repro.db.instance.DatabaseInstance` indexes
facts by dicts keyed on ``(constant, relation)`` tuples -- the right
shape for correctness-first code, the wrong one for the solver kernels,
which spend their time hashing tuples of arbitrary constants.  A
:class:`CompactInstance` is the same instance re-expressed over dense
integers:

* constants get **local ids** ``0..n-1`` (in canonical ``sorted_adom``
  order for fresh builds) plus the process-wide **global ids** of
  :mod:`repro.db.interner`;
* each relation gets an **int-indexed out-edge adjacency**
  (``out[rel][key_lid]`` is the tuple of value lids -- the block
  contents), the matching in-adjacency (``in_[rel][value_lid]`` is the
  tuple of key lids), and the **per-block fact counts**
  (``out_deg[rel]``, an ``array('l')`` the fixpoint kernel copies
  straight into its countdown counters);
* :meth:`csr` exposes the CSR-style per-relation edge arrays (block key
  ids, a block offset table, and the flat value array), built lazily.

A compact view is compiled lazily from -- and cached on -- its
:class:`~repro.db.instance.DatabaseInstance` via
:meth:`~repro.db.instance.DatabaseInstance.compact`;
:meth:`~repro.db.delta.DeltaInstance.commit` carries the cache forward
by **patching** the parent's view in O(delta) touched entries (plus
C-level container copies) via :meth:`patched`, so an update stream never
recompiles the compact representation from scratch.

Instances are immutable once built: patching returns a new view sharing
every untouched per-relation structure with its parent.  Departed
constants keep their local id with ``alive`` flipped to 0 and empty
adjacency -- kernels must consult :attr:`alive` before seeding
domain-wide axioms.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.db.facts import Fact
from repro.db.interner import Interner, global_interner

_EMPTY: Tuple[int, ...] = ()

#: Per-view bound on cached kernel plans (see CompactInstance.cached_plan).
_PLAN_CACHE_LIMIT = 32


class CompactInstance:
    """An immutable integer-indexed view of one database instance."""

    __slots__ = (
        "interner",
        "n",
        "consts",
        "local_of",
        "gids",
        "alive",
        "relations",
        "out",
        "out_deg",
        "in_",
        "_csr",
        "_plans",
    )

    def __init__(self) -> None:  # pragma: no cover - assembled via builders
        raise TypeError(
            "use CompactInstance.build(db) or DatabaseInstance.compact()"
        )

    @classmethod
    def _assemble(
        cls,
        interner: Interner,
        consts: List[Hashable],
        local_of: Dict[Hashable, int],
        gids: "array",
        alive: bytearray,
        out: Dict[str, List[Tuple[int, ...]]],
        out_deg: Dict[str, "array"],
        in_: Dict[str, List[Tuple[int, ...]]],
    ) -> "CompactInstance":
        view = cls.__new__(cls)
        view.interner = interner
        view.n = len(consts)
        view.consts = consts
        view.local_of = local_of
        view.gids = gids
        view.alive = alive
        view.relations = tuple(sorted(out))
        view.out = out
        view.out_deg = out_deg
        view.in_ = in_
        view._csr = {}
        view._plans = {}
        return view

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, db, interner: Optional[Interner] = None) -> "CompactInstance":
        """Compile *db* (anything with ``facts`` / ``sorted_adom()``).

        >>> from repro.db.instance import DatabaseInstance
        >>> db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        >>> view = CompactInstance.build(db)
        >>> view.n, view.relations
        (3, ('R',))
        >>> sorted(view.consts[v] for v in view.out["R"][view.local_of[0]])
        [1, 2]
        """
        if interner is None:
            interner = global_interner()
        consts = list(db.sorted_adom())
        n = len(consts)
        local_of = {c: i for i, c in enumerate(consts)}
        gids = array("q", map(interner.constant_id, consts))
        alive = bytearray(b"\x01") * n
        out_lists: Dict[str, List[List[int]]] = {}
        in_lists: Dict[str, List[List[int]]] = {}
        for fact in db.facts:
            relation = fact.relation
            out_rel = out_lists.get(relation)
            if out_rel is None:
                out_rel = out_lists[relation] = [None] * n
                in_lists[relation] = [None] * n
            in_rel = in_lists[relation]
            key, value = local_of[fact.key], local_of[fact.value]
            if out_rel[key] is None:
                out_rel[key] = [value]
            else:
                out_rel[key].append(value)
            if in_rel[value] is None:
                in_rel[value] = [key]
            else:
                in_rel[value].append(key)
        out: Dict[str, List[Tuple[int, ...]]] = {}
        out_deg: Dict[str, "array"] = {}
        in_: Dict[str, List[Tuple[int, ...]]] = {}
        for relation, rows in out_lists.items():
            out[relation] = [_EMPTY if r is None else tuple(r) for r in rows]
            out_deg[relation] = array(
                "l", (0 if r is None else len(r) for r in rows)
            )
            in_[relation] = [
                _EMPTY if r is None else tuple(r)
                for r in in_lists[relation]
            ]
        return cls._assemble(
            interner, consts, local_of, gids, alive, out, out_deg, in_
        )

    def patched(
        self,
        added: Iterable[Fact],
        removed: Iterable[Fact],
        refcounts: Dict[Hashable, int],
    ) -> "CompactInstance":
        """A new view with the effective fact delta applied.

        *refcounts* is the updated instance's ``adom_refcounts()``: it
        decides which delta-mentioned constants are alive afterwards.
        Cost is O(delta) touched adjacency entries on top of C-level
        copies of the per-relation containers -- untouched relations
        share their lists with the parent (unless new constants force a
        capacity extension).
        """
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            return self
        consts = list(self.consts)
        local_of = dict(self.local_of)
        gids = array("q", self.gids)
        alive = bytearray(self.alive)
        interner = self.interner

        delta_constants = set()
        for fact in added:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        for fact in removed:
            delta_constants.add(fact.key)
            delta_constants.add(fact.value)
        for constant in delta_constants:
            if constant not in local_of:
                local_of[constant] = len(consts)
                consts.append(constant)
                gids.append(interner.constant_id(constant))
                alive.append(0)
        for constant in delta_constants:
            alive[local_of[constant]] = 1 if constant in refcounts else 0

        n = len(consts)
        grow = n - self.n
        touched_relations = {f.relation for f in added} | {
            f.relation for f in removed
        }
        out = dict(self.out)
        out_deg = dict(self.out_deg)
        in_ = dict(self.in_)
        if grow:
            pad = [_EMPTY] * grow
            zeros = array("l", [0]) * grow
            for relation in list(out):
                if relation in touched_relations:
                    continue
                out[relation] = out[relation] + pad
                in_[relation] = in_[relation] + pad
                deg = array("l", out_deg[relation])
                deg.extend(zeros)
                out_deg[relation] = deg
        for relation in touched_relations:
            if relation in self.out:
                out_rel = list(self.out[relation])
                in_rel = list(self.in_[relation])
                deg = array("l", self.out_deg[relation])
            else:
                out_rel = [_EMPTY] * self.n
                in_rel = [_EMPTY] * self.n
                deg = array("l", [0]) * self.n
            if grow:
                out_rel.extend(pad)
                in_rel.extend(pad)
                deg.extend(zeros)
            out_touch: Dict[int, Tuple[set, List[int]]] = {}
            in_touch: Dict[int, Tuple[set, List[int]]] = {}
            for fact in removed:
                if fact.relation != relation:
                    continue
                key, value = local_of[fact.key], local_of[fact.value]
                out_touch.setdefault(key, (set(), []))[0].add(value)
                in_touch.setdefault(value, (set(), []))[0].add(key)
            for fact in added:
                if fact.relation != relation:
                    continue
                key, value = local_of[fact.key], local_of[fact.value]
                out_touch.setdefault(key, (set(), []))[1].append(value)
                in_touch.setdefault(value, (set(), []))[1].append(key)
            for key, (gone, fresh) in out_touch.items():
                vals = [v for v in out_rel[key] if v not in gone]
                vals.extend(fresh)
                out_rel[key] = tuple(vals)
                deg[key] = len(vals)
            for value, (gone, fresh) in in_touch.items():
                keys = [c for c in in_rel[value] if c not in gone]
                keys.extend(fresh)
                in_rel[value] = tuple(keys)
            out[relation] = out_rel
            in_[relation] = in_rel
            out_deg[relation] = deg
        return CompactInstance._assemble(
            interner, consts, local_of, gids, alive, out, out_deg, in_
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def csr(self, relation: str) -> Tuple["array", "array", "array"]:
        """CSR-style edge arrays ``(block_keys, block_offsets, values)``.

        ``block_keys[i]`` is the key lid of the ``i``-th nonempty block,
        ``values[block_offsets[i]:block_offsets[i+1]]`` its value lids;
        offset differences are the per-block fact counts.  Built lazily
        per relation and cached (the view is immutable).
        """
        cached = self._csr.get(relation)
        if cached is not None:
            return cached
        rows = self.out.get(relation, ())
        block_keys = array("l")
        offsets = array("l", [0])
        values = array("l")
        for key, vals in enumerate(rows):
            if vals:
                block_keys.append(key)
                values.extend(vals)
                offsets.append(len(values))
        result = (block_keys, offsets, values)
        self._csr[relation] = result
        return result

    def edges(self, relation: str) -> Iterator[Tuple[int, int]]:
        """All ``(key_lid, value_lid)`` edges of *relation*."""
        block_keys, offsets, values = self.csr(relation)
        for i, key in enumerate(block_keys):
            for j in range(offsets[i], offsets[i + 1]):
                yield (key, values[j])

    def cached_plan(self, key: Hashable, builder):
        """Memoize a per-``(instance, key)`` kernel artifact.

        Kernels derive query-shaped arrays from the view (e.g. the
        fixpoint kernel's pre-scaled flat in-adjacency); the view is
        immutable, so caching them here makes every re-solve against a
        warm instance skip the per-call index prep -- the pattern the
        serving layer's resident instances live off.  *builder* is
        called with no arguments on first use.  The cache is bounded
        (FIFO eviction): a long-lived resident answering many distinct
        query words must not grow a plan per word forever.
        """
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= _PLAN_CACHE_LIMIT:
                self._plans.pop(next(iter(self._plans)))
            plan = self._plans[key] = builder()
        return plan

    def alive_lids(self) -> Iterator[int]:
        """Local ids of the constants currently in the active domain."""
        alive = self.alive
        return (lid for lid in range(self.n) if alive[lid])

    def __repr__(self) -> str:
        return "CompactInstance(n={}, relations={})".format(
            self.n, list(self.relations)
        )

    def __reduce__(self):
        raise TypeError(
            "CompactInstance ids are process-local; pickle the "
            "DatabaseInstance and rebuild via .compact()"
        )
