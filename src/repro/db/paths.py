"""Paths in database instances: traces, consistency, terminals (Defs 6, 15).

A *path* in ``db`` is a sequence of facts ``R1(c1,c2), R2(c2,c3), ...,
Rn(cn,cn+1)``; its *trace* is the word ``R1R2...Rn``.  Facts may repeat
along a path (paths are sequences, and satisfaction of a path query only
requires a walk).  A path is *consistent* if it does not contain two
distinct key-equal facts (Definition 15).

A constant ``c`` is *terminal* for a path query ``q`` in ``db`` if some
consistent path with trace a proper prefix of ``q`` starting at ``c``
cannot be right-extended to a consistent path with trace ``q``; by
Lemma 17 this holds iff ``db`` is a "no"-instance of ``CERTAINTY(q[c])``,
which is how :func:`is_terminal` decides it (in polynomial time, via the
rooted-certainty recursion of Lemma 12).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.words.word import Word, WordLike

Path = Tuple[Fact, ...]


def trace_of(path: Path) -> Word:
    """The trace ``R1 R2 ... Rn`` of a path."""
    return Word([fact.relation for fact in path])


def is_path(path: Path) -> bool:
    """True iff consecutive facts chain: value of each = key of the next."""
    return all(
        path[i].value == path[i + 1].key for i in range(len(path) - 1)
    )


def is_consistent_path(path: Path) -> bool:
    """True iff the path contains no two *distinct* key-equal facts.

    Repetitions of the *same* fact are allowed (Definition 15).
    """
    chosen: Dict[Tuple[str, Hashable], Fact] = {}
    for fact in path:
        existing = chosen.get(fact.block_id)
        if existing is None:
            chosen[fact.block_id] = fact
        elif existing != fact:
            return False
    return True


def iter_paths_with_trace(
    db: DatabaseInstance,
    trace: WordLike,
    start: Optional[Hashable] = None,
    consistent_only: bool = False,
) -> Iterator[Path]:
    """Enumerate the paths of *db* with the given trace.

    If *start* is given, only paths starting at that constant.  If
    *consistent_only* is set, only consistent paths (no two distinct
    key-equal facts) are produced.  Enumeration is by depth-first search;
    the number of paths is polynomial in ``|db|`` for a fixed trace length.
    """
    trace = Word.coerce(trace)

    def extend(position: int, current: Hashable, acc: Tuple[Fact, ...]):
        if position == len(trace):
            yield acc
            return
        for fact in db.out_facts(current, trace[position]):
            if consistent_only:
                conflict = any(
                    earlier.block_id == fact.block_id and earlier != fact
                    for earlier in acc
                )
                if conflict:
                    continue
            yield from extend(position + 1, fact.value, acc + (fact,))

    if not trace:
        # The empty path starts at every constant (or the given one).
        starts = [start] if start is not None else db.sorted_adom()
        for constant in starts:
            yield ()
        return

    if start is not None:
        yield from extend(0, start, ())
    else:
        for constant in db.sorted_adom():
            yield from extend(0, constant, ())


def find_path_with_trace(
    db: DatabaseInstance,
    trace: WordLike,
    start: Optional[Hashable] = None,
    end: Optional[Hashable] = None,
    consistent_only: bool = False,
) -> Optional[Path]:
    """The first path with the given trace (and endpoints), or ``None``.

    Decides ``db |= a --q--> b`` (and the consistent variant
    ``db |= a --q-->> b``) from Definition 15 when *start*/*end* are given.
    """
    for path in iter_paths_with_trace(db, trace, start, consistent_only):
        if end is not None:
            if not path:
                if start != end:
                    continue
            elif path[-1].value != end:
                continue
        return path
    return None


def has_path_with_trace(
    db: DatabaseInstance,
    trace: WordLike,
    start: Optional[Hashable] = None,
    end: Optional[Hashable] = None,
    consistent_only: bool = False,
) -> bool:
    """True iff *db* has a path with the given trace (and endpoints)."""
    return (
        find_path_with_trace(db, trace, start, end, consistent_only) is not None
    )


def rooted_certainty(
    db: DatabaseInstance, trace: WordLike, root: Hashable
) -> bool:
    """Decide ``CERTAINTY(q[c])``: does every repair have a ``q``-path from c?

    Implements the recursion behind the first-order rewriting of Lemma 12:

        certain(ε[c])   = true
        certain(Rp[c])  = block R(c,*) is nonempty, and for every fact
                          R(c,d) in db, certain(p[d]).

    Runs in time ``O(|q| * |db|)`` with memoization.
    """
    trace = Word.coerce(trace)
    memo: Dict[Tuple[int, Hashable], bool] = {}

    def certain(position: int, constant: Hashable) -> bool:
        if position == len(trace):
            return True
        key = (position, constant)
        cached = memo.get(key)
        if cached is not None:
            return cached
        block = db.out_facts(constant, trace[position])
        if not block:
            memo[key] = False
            return False
        # Optimistically seed True: cycles through the same (position,
        # constant) pair cannot occur because position strictly increases.
        result = all(certain(position + 1, fact.value) for fact in block)
        memo[key] = result
        return result

    return certain(0, root)


def is_terminal(
    db: DatabaseInstance, constant: Hashable, trace: WordLike
) -> bool:
    """Definition 15 / Lemma 17: is *constant* terminal for *trace* in *db*?

    ``c`` is terminal for ``q`` iff some consistent path with trace a
    proper prefix of ``q`` from ``c`` cannot be right-extended to a
    consistent ``q``-path; by Lemma 17 this is equivalent to ``db`` being a
    "no"-instance of ``CERTAINTY(q[c])``.
    """
    trace = Word.coerce(trace)
    if not trace:
        # The empty path always extends to a q-path with q = ε.
        return False
    return not rooted_certainty(db, trace, constant)
