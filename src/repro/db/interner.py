"""Process-wide interning of relation names and constants to dense ints.

The object-level data plane carries arbitrary hashable constants (strings,
ints, tuples from reduction gadgets) through every hot loop, paying a
structural hash and equality comparison per set probe.  The compact data
plane (:mod:`repro.db.compact`, the array-backed kernels in
:mod:`repro.solvers.fixpoint` and :mod:`repro.datalog.engine`) replaces
them with dense integer ids handed out by a process-wide
:class:`Interner`:

* **relation ids** number relation names;
* **constant ids** number constants.

Ids are dense (``0, 1, 2, ...`` in first-seen order), stable for the
lifetime of the process, and never recycled, so any two compact
structures built in the same process agree on what an id means.  Ids are
**not** stable across processes: nothing interned may be pickled (the
compact structures are deliberately excluded from
:class:`~repro.db.instance.DatabaseInstance` pickling, which rebuilds
them on first use in the receiving process).

>>> interner = Interner()
>>> interner.constant_id("a"), interner.constant_id(7), interner.constant_id("a")
(0, 1, 0)
>>> interner.constant(1)
7
>>> interner.relation_id("R"), interner.relation_id("X"), interner.relation_id("R")
(0, 1, 0)
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, List


class Interner:
    """A bidirectional map from relation names / constants to dense ids.

    Thread-safe: interning takes a lock on the miss path only (reads of
    an already-interned value are lock-free dict lookups).
    """

    __slots__ = (
        "_lock",
        "_constant_ids",
        "_constants",
        "_relation_ids",
        "_relations",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._constant_ids: Dict[Hashable, int] = {}
        self._constants: List[Hashable] = []
        self._relation_ids: Dict[str, int] = {}
        self._relations: List[str] = []

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------

    def constant_id(self, value: Hashable) -> int:
        """The dense id of *value*, interning it on first sight."""
        cid = self._constant_ids.get(value)
        if cid is not None:
            return cid
        with self._lock:
            cid = self._constant_ids.get(value)
            if cid is None:
                cid = len(self._constants)
                self._constants.append(value)
                self._constant_ids[value] = cid
            return cid

    def constant(self, cid: int) -> Hashable:
        """The constant behind *cid* (inverse of :meth:`constant_id`)."""
        return self._constants[cid]

    def constant_ids(self, values: Iterable[Hashable]) -> List[int]:
        """Intern a batch of constants; returns their ids in order."""
        intern = self.constant_id
        return [intern(value) for value in values]

    @property
    def n_constants(self) -> int:
        return len(self._constants)

    # ------------------------------------------------------------------
    # Relations (shared with the automata as dense symbol ids)
    # ------------------------------------------------------------------

    def relation_id(self, name: str) -> int:
        """The dense id of relation name *name*, interning on first sight."""
        rid = self._relation_ids.get(name)
        if rid is not None:
            return rid
        with self._lock:
            rid = self._relation_ids.get(name)
            if rid is None:
                rid = len(self._relations)
                self._relations.append(name)
                self._relation_ids[name] = rid
            return rid

    def relation(self, rid: int) -> str:
        return self._relations[rid]

    @property
    def n_relations(self) -> int:
        return len(self._relations)

    def __reduce__(self):
        raise TypeError(
            "Interner ids are process-local and must not cross process "
            "boundaries; pickle the object-level structures instead"
        )


#: The process-wide interner behind every cached CompactInstance.
_GLOBAL: Interner = Interner()


def global_interner() -> Interner:
    """The process-wide :class:`Interner` used by compact structures."""
    return _GLOBAL
