"""Copy-on-write delta overlays over database instances.

:class:`DatabaseInstance` is immutable and pays O(db) to build, which is
the right trade for the solvers but the wrong one for update streams: a
single-fact insert would re-block, re-index and re-hash the entire
instance.  A :class:`DeltaInstance` is a mutable overlay that records
``insert_fact`` / ``remove_fact`` edits against a base instance, patching
only the touched blocks, the active-domain refcounts, and the
outgoing-edge index entries they affect -- O(delta) bookkeeping per edit.
``commit()`` then produces a full :class:`DatabaseInstance` by shallow-
copying the base's index dicts and overwriting the patched entries, so no
Block is rebuilt and no Fact re-sorted outside the touched blocks.

:class:`Delta` is the immutable description of an update batch (facts to
remove, facts to insert) that the certainty engine's ``solve_delta``
accepts; it applies removals before insertions.

The copy-on-write overlay contract
----------------------------------

Consumers (the engine's ``solve_delta``, ``FixpointState.apply_delta``,
the serving layer's shard workers) rely on these invariants:

* **The base is never mutated.**  Every read on the overlay
  (``block``, ``out_facts``, ``facts``, ``adom`` ...) sees base +
  edits; the base instance stays valid, hashable, and cache-keyable
  throughout.  Committing does not invalidate the overlay either --
  further edits and a re-commit are allowed.
* **Exposed deltas are effective, not literal.**  ``added_facts`` /
  ``removed_facts`` cancel round-trips: inserting a fact that was just
  removed yields an empty effective delta.  Incremental maintainers may
  therefore treat them as a set difference between base and overlay.
* **Cost is O(edits), not O(db).**  Edits patch only the touched
  blocks, the refcount deltas, and the touched out-edge entries;
  ``commit()`` shallow-copies the base's index dicts (C-level copies,
  linear in *entries* but with no re-sorting, re-hashing, or Block
  reconstruction outside touched blocks).
* **Commit is memoized and aliasing-safe.**  ``commit()`` returns the
  same instance object until the next edit, so the engine (which
  commits to key its state cache) and a registry holding the committed
  instance agree by identity, not just value.  An overlay with no
  effective edits commits to the base itself.
* **Value-equal means interchangeable.**  A committed instance equals
  (``==``, ``hash``) a from-scratch ``DatabaseInstance`` with the same
  facts; caches keyed by instance may mix both freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.db.facts import Fact
from repro.db.instance import Block, BlockId, DatabaseInstance


@dataclass(frozen=True)
class Delta:
    """An update batch: facts to remove, then facts to insert.

    >>> delta = Delta.inserting(("R", 0, 1)).then_removing(("R", 0, 2))
    >>> len(delta)
    2
    """

    removes: Tuple[Fact, ...] = ()
    inserts: Tuple[Fact, ...] = ()

    @staticmethod
    def _coerce(facts: Iterable) -> Tuple[Fact, ...]:
        coerced = []
        for fact in facts:
            if not isinstance(fact, Fact):
                fact = Fact(*fact)
            coerced.append(fact)
        return tuple(coerced)

    @classmethod
    def inserting(cls, *facts) -> "Delta":
        """A pure-insertion delta; facts may be ``(relation, key, value)``."""
        return cls(inserts=cls._coerce(facts))

    @classmethod
    def removing(cls, *facts) -> "Delta":
        """A pure-removal delta; facts may be ``(relation, key, value)``."""
        return cls(removes=cls._coerce(facts))

    def then_inserting(self, *facts) -> "Delta":
        return Delta(self.removes, self.inserts + self._coerce(facts))

    def then_removing(self, *facts) -> "Delta":
        return Delta(self.removes + self._coerce(facts), self.inserts)

    def __len__(self) -> int:
        return len(self.removes) + len(self.inserts)

    def apply_to(self, base: DatabaseInstance) -> "DeltaInstance":
        """An overlay over *base* with this delta applied (removals first)."""
        overlay = DeltaInstance(base)
        for fact in self.removes:
            overlay.remove_fact(fact)
        for fact in self.inserts:
            overlay.insert_fact(fact)
        return overlay

    def __str__(self) -> str:
        parts = ["-{}".format(f) for f in self.removes]
        parts += ["+{}".format(f) for f in self.inserts]
        return "Delta[{}]".format(", ".join(parts))


class DeltaInstance:
    """A mutable copy-on-write overlay over a :class:`DatabaseInstance`.

    Reads see the base instance with the recorded edits applied; only the
    touched blocks are materialized in the overlay.  ``added_facts`` /
    ``removed_facts`` expose the *effective* delta (idempotent edits and
    insert/remove round-trips cancel out), which the incremental solvers
    consume.

    >>> base = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
    >>> overlay = DeltaInstance(base)
    >>> overlay.insert_fact(Fact("R", 0, 9))
    True
    >>> sorted(str(f) for f in overlay.block("R", 0))
    ['R(0, 1)', 'R(0, 9)']
    >>> overlay.commit() == base.with_facts([Fact("R", 0, 9)])
    True
    """

    __slots__ = (
        "_base",
        "_touched",
        "_added",
        "_removed",
        "_ref_delta",
        "_committed",
    )

    def __init__(self, base: DatabaseInstance) -> None:
        self._base = base
        #: Current fact list of every touched block (possibly empty).
        self._touched: Dict[BlockId, List[Fact]] = {}
        self._added: Set[Fact] = set()
        self._removed: Set[Fact] = set()
        #: Net refcount change per constant (key + value occurrences).
        self._ref_delta: Dict[Hashable, int] = {}
        #: Memoized result of commit(); invalidated by every edit.
        self._committed: Optional[DatabaseInstance] = None

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------

    @property
    def base(self) -> DatabaseInstance:
        return self._base

    @property
    def added_facts(self) -> FrozenSet[Fact]:
        """Facts present in the overlay but not the base (effective)."""
        return frozenset(self._added)

    @property
    def removed_facts(self) -> FrozenSet[Fact]:
        """Facts present in the base but not the overlay (effective)."""
        return frozenset(self._removed)

    def touched_blocks(self) -> FrozenSet[BlockId]:
        """Block ids whose fact set differs (or was edited) vs the base."""
        return frozenset(self._touched)

    def _block_facts(self, block_id: BlockId) -> List[Fact]:
        facts = self._touched.get(block_id)
        if facts is None:
            block = self._base.block(*block_id)
            facts = list(block.facts) if block is not None else []
            self._touched[block_id] = facts
        return facts

    def _bump(self, constant: Hashable, amount: int) -> None:
        count = self._ref_delta.get(constant, 0) + amount
        if count:
            self._ref_delta[constant] = count
        else:
            self._ref_delta.pop(constant, None)

    def insert_fact(self, fact: Fact) -> bool:
        """Insert *fact*; returns False (no-op) if already present."""
        if not isinstance(fact, Fact):
            fact = Fact(*fact)
        if fact in self:
            return False
        self._committed = None
        self._block_facts(fact.block_id).append(fact)
        if fact in self._removed:
            self._removed.discard(fact)
        else:
            self._added.add(fact)
        self._bump(fact.key, +1)
        self._bump(fact.value, +1)
        return True

    def remove_fact(self, fact: Fact) -> bool:
        """Remove *fact*; returns False (no-op) if not present."""
        if not isinstance(fact, Fact):
            fact = Fact(*fact)
        if fact not in self:
            return False
        self._committed = None
        self._block_facts(fact.block_id).remove(fact)
        if fact in self._added:
            self._added.discard(fact)
        else:
            self._removed.add(fact)
        self._bump(fact.key, -1)
        self._bump(fact.value, -1)
        return True

    def apply(self, delta: Delta) -> "DeltaInstance":
        """Apply *delta* (removals first) to this overlay; returns self."""
        for fact in delta.removes:
            self.remove_fact(fact)
        for fact in delta.inserts:
            self.insert_fact(fact)
        return self

    # ------------------------------------------------------------------
    # Reads (the DatabaseInstance view of base + edits)
    # ------------------------------------------------------------------

    def __contains__(self, fact: Fact) -> bool:
        if fact.block_id in self._touched:
            return fact in self._touched[fact.block_id]
        return fact in self._base

    def __len__(self) -> int:
        return len(self._base) + len(self._added) - len(self._removed)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self.facts))

    @property
    def facts(self) -> FrozenSet[Fact]:
        return (self._base.facts - self._removed) | self._added

    def adom(self) -> FrozenSet[Hashable]:
        base_adom = self._base.adom()
        if not self._ref_delta:
            return base_adom
        base_counts = self._base.adom_refcounts()
        born = {
            c
            for c, d in self._ref_delta.items()
            if d > 0 and c not in base_adom
        }
        dead = {
            c
            for c, d in self._ref_delta.items()
            if d < 0 and base_counts.get(c, 0) + d == 0
        }
        if not born and not dead:
            return base_adom
        return (base_adom | born) - dead

    def sorted_adom(self) -> Tuple[Hashable, ...]:
        return tuple(sorted(self.adom(), key=str))

    def block(self, relation: str, key: Hashable) -> Optional[Block]:
        block_id = (relation, key)
        if block_id in self._touched:
            facts = self._touched[block_id]
            return Block(block_id, facts) if facts else None
        return self._base.block(relation, key)

    def out_facts(self, constant: Hashable, relation: str) -> Tuple[Fact, ...]:
        block_id = (relation, constant)
        if block_id in self._touched:
            return tuple(sorted(self._touched[block_id]))
        return self._base.out_facts(constant, relation)

    def blocks(self) -> List[Block]:
        by_id: Dict[BlockId, Block] = {
            b.block_id: b for b in self._base.blocks()
        }
        for block_id, facts in self._touched.items():
            if facts:
                by_id[block_id] = Block(block_id, facts)
            else:
                by_id.pop(block_id, None)
        return [by_id[bid] for bid in sorted(by_id, key=str)]

    def is_consistent(self) -> bool:
        return all(len(block) == 1 for block in self.blocks())

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self) -> DatabaseInstance:
        """Freeze the overlay into a :class:`DatabaseInstance`.

        The base's block map, outgoing-edge index, domain and refcounts
        are shallow-copied and only the entries for touched blocks are
        rebuilt, so commit cost is O(delta) block work on top of the
        C-level dict copies (no per-fact re-sorting or re-hashing).

        The result is memoized until the next edit, so committing the
        same overlay twice (the engine commits inside ``solve_delta``;
        the serving layer commits again to advance its registry) pays the
        dict copies once and both callers share one instance object.
        """
        if self._committed is not None:
            return self._committed
        base = self._base
        if not self._added and not self._removed:
            # No *effective* edits (round-trips cancelled out): the
            # touched blocks hold exactly their base facts, so the
            # overlay commits to the base itself.
            return base
        facts = self.facts
        blocks = dict(base._blocks)
        out_index = dict(base._out_index)
        for block_id, block_facts in self._touched.items():
            relation, key = block_id
            if block_facts:
                block_facts.sort()
                block = Block.presorted(block_id, tuple(block_facts))
                blocks[block_id] = block
                out_index[(key, relation)] = block.facts
            else:
                blocks.pop(block_id, None)
                out_index.pop((key, relation), None)
        refcounts = dict(base.adom_refcounts())
        for constant, change in self._ref_delta.items():
            count = refcounts.get(constant, 0) + change
            if count > 0:
                refcounts[constant] = count
            else:
                refcounts.pop(constant, None)
        adom = frozenset(refcounts)
        committed = DatabaseInstance._from_parts(
            facts=facts,
            blocks=blocks,
            adom=adom,
            out_index=out_index,
            refcounts=refcounts,
        )
        if base._compact is not None:
            # Carry the compact execution view forward: patch the
            # parent's view in O(delta) instead of letting the committed
            # instance recompile it from scratch on first kernel use.
            committed._compact = base._compact.patched(
                self._added, self._removed, refcounts
            )
        self._committed = committed
        return self._committed

    def __str__(self) -> str:
        return "DeltaInstance(+{}, -{} over {} facts)".format(
            len(self._added), len(self._removed), len(self._base)
        )

    __repr__ = __str__
