"""Repair enumeration, counting and sampling (Section 2).

A repair of ``db`` is an inclusion-maximal consistent subinstance:
equivalently, a choice of exactly one fact from every block.  The number of
repairs is the product of the block sizes, hence exponential in the number
of conflicting blocks; :func:`iter_repairs` enumerates them lazily and
:func:`count_repairs` counts them without enumeration.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Tuple

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance


def count_repairs(db: DatabaseInstance) -> int:
    """The number of repairs of *db* (product of block sizes)."""
    result = 1
    for block in db.blocks():
        result *= len(block)
    return result


def iter_repairs(
    db: DatabaseInstance, limit: Optional[int] = None
) -> Iterator[DatabaseInstance]:
    """Lazily enumerate the repairs of *db*.

    Repairs are produced in the canonical order induced by block and fact
    ordering.  If *limit* is given, stop after that many repairs (useful to
    guard against exponential blowup in tests).
    """
    blocks = db.blocks()
    choices = [block.facts for block in blocks]
    produced = 0
    for combination in itertools.product(*choices):
        yield DatabaseInstance(combination)
        produced += 1
        if limit is not None and produced >= limit:
            return


def iter_repair_fact_tuples(db: DatabaseInstance) -> Iterator[Tuple[Fact, ...]]:
    """Like :func:`iter_repairs` but yields raw fact tuples.

    Avoids constructing :class:`DatabaseInstance` objects (and their block
    indexes) when the consumer only needs the facts; this is what the
    brute-force solver uses.
    """
    choices = [block.facts for block in db.blocks()]
    return itertools.product(*choices)


def random_repair(db: DatabaseInstance, rng: random.Random) -> DatabaseInstance:
    """A uniformly random repair of *db*, drawn with *rng*."""
    facts = [rng.choice(block.facts) for block in db.blocks()]
    return DatabaseInstance(facts)


def repair_signature(db: DatabaseInstance, repair: DatabaseInstance) -> Tuple[int, ...]:
    """A compact signature of *repair*: per block, the index of the chosen fact.

    Useful for de-duplicating repairs in tests and experiments.
    """
    signature: List[int] = []
    for block in db.blocks():
        chosen = [i for i, fact in enumerate(block.facts) if fact in repair]
        if len(chosen) != 1:
            raise ValueError(
                "instance is not a repair of db: block {} has {} chosen facts".format(
                    block.block_id, len(chosen)
                )
            )
        signature.append(chosen[0])
    return tuple(signature)


def resolve_block(
    repair: DatabaseInstance, fact: Fact
) -> DatabaseInstance:
    """Return *repair* with its choice in ``fact``'s block replaced by *fact*.

    This is the block-swap operation used in the proofs of Lemmas 9 and 12:
    given a repair ``r`` and a fact ``f``, produce the repair that agrees
    with ``r`` everywhere except that it contains ``f``.
    """
    block_id = fact.block_id
    kept = [f for f in repair.facts if f.block_id != block_id]
    kept.append(fact)
    return DatabaseInstance(kept)
