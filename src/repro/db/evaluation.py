"""Query evaluation over database instances.

Evaluates Boolean conjunctive queries (via homomorphism search) and path
queries (via the linear-time layered walk check) on single instances.
These are the primitives "does repair r satisfy q" that the definition of
CERTAINTY(q) quantifies over.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.db.instance import DatabaseInstance
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.generalized import GeneralizedPathQuery
from repro.words.word import Word, WordLike


def query_satisfied(query: ConjunctiveQuery, db: DatabaseInstance) -> bool:
    """True iff the Boolean conjunctive query is satisfied by *db*."""
    return query.satisfied_by(fact.as_triple() for fact in db.facts)


def path_query_satisfied(trace: WordLike, db: DatabaseInstance) -> bool:
    """True iff *db* satisfies the path query with the given *trace*.

    A valuation of the path query is exactly a walk of *db* with that
    trace, so satisfaction is decided by the layered reachability sweep:
    ``S_k = adom``, and ``S_i = { c : some fact trace[i](c, d) has
    d ∈ S_{i+1} }``; the query holds iff ``S_0`` is nonempty.  Runs in
    ``O(|q| * |db|)``.
    """
    trace = Word.coerce(trace)
    if not trace:
        return True
    alive: Optional[Set[Hashable]] = None
    for position in range(len(trace) - 1, -1, -1):
        relation = trace[position]
        next_alive: Set[Hashable] = set()
        for fact in db.facts:
            if fact.relation != relation:
                continue
            if alive is None or fact.value in alive:
                next_alive.add(fact.key)
        if not next_alive:
            return False
        alive = next_alive
    return bool(alive)


def rooted_path_query_satisfied(
    trace: WordLike, root: Hashable, db: DatabaseInstance
) -> bool:
    """True iff *db* satisfies ``q[c]``: a walk with the trace from *root*."""
    trace = Word.coerce(trace)
    current: Set[Hashable] = {root}
    for relation in trace:
        successors: Set[Hashable] = set()
        for constant in current:
            for fact in db.out_facts(constant, relation):
                successors.add(fact.value)
        if not successors:
            return False
        current = successors
    return True


def generalized_query_satisfied(
    query: GeneralizedPathQuery, db: DatabaseInstance
) -> bool:
    """True iff *db* satisfies a generalized path query (with constants).

    Implemented as a layered sweep over node positions where constant
    nodes pin the frontier.  Equivalent to (but much faster than) the
    generic homomorphism search on the conjunctive-query form.
    """
    word = query.word
    nodes = query.nodes
    # frontier[i] = set of constants that node i may take, given atoms < i.
    frontier: Dict[int, Set[Hashable]] = {}
    if nodes[0] is not None:
        frontier[0] = {nodes[0]}
    else:
        frontier[0] = set(db.adom())
    for i, relation in enumerate(word):
        successors: Set[Hashable] = set()
        for constant in frontier[i]:
            for fact in db.out_facts(constant, relation):
                successors.add(fact.value)
        if nodes[i + 1] is not None:
            successors &= {nodes[i + 1]}
        if not successors:
            return False
        frontier[i + 1] = successors
    return True
