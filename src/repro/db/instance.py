"""Database instances and blocks (Section 2).

A :class:`DatabaseInstance` is an immutable finite set of facts.  It
precomputes the block structure (maximal sets of key-equal facts), the
active domain, and per-constant outgoing-edge indexes, which all the
algorithms in the paper traverse.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.db.facts import Fact

BlockId = Tuple[str, Hashable]


class Block:
    """A block ``R(c, *)``: all facts with relation ``R`` and key ``c``."""

    __slots__ = ("_id", "_facts")

    def __init__(self, block_id: BlockId, facts: Iterable[Fact]) -> None:
        self._id = block_id
        self._facts: Tuple[Fact, ...] = tuple(sorted(facts))
        if not self._facts:
            raise ValueError("a block cannot be empty")
        for fact in self._facts:
            if fact.block_id != block_id:
                raise ValueError(
                    "fact {} does not belong to block {}".format(fact, block_id)
                )

    @classmethod
    def presorted(cls, block_id: BlockId, facts: Tuple[Fact, ...]) -> "Block":
        """Assemble a block from an already-sorted, validated fact tuple.

        Trusted internal fast path (instance construction, overlay
        commits): skips the per-construction re-sort and membership
        validation of ``__init__``, which dominate block construction
        cost on hot update paths.  Callers must pass a nonempty tuple of
        facts sorted in :class:`~repro.db.facts.Fact` order, all
        belonging to *block_id*.
        """
        block = cls.__new__(cls)
        block._id = block_id
        block._facts = facts
        return block

    @property
    def block_id(self) -> BlockId:
        return self._id

    @property
    def relation(self) -> str:
        return self._id[0]

    @property
    def key(self) -> Hashable:
        return self._id[1]

    @property
    def facts(self) -> Tuple[Fact, ...]:
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def is_conflicting(self) -> bool:
        """True iff the block contains more than one fact."""
        return len(self._facts) > 1

    def __str__(self) -> str:
        return "{}({}, *) = {{{}}}".format(
            self.relation, self.key, ", ".join(str(f.value) for f in self._facts)
        )

    __repr__ = __str__


class DatabaseInstance:
    """An immutable database instance: a finite set of facts.

    >>> db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
    >>> db.is_consistent()
    False
    >>> len(db.blocks())
    1
    """

    __slots__ = (
        "_facts",
        "_blocks",
        "_adom",
        "_out_index",
        "_hash",
        "_sorted_adom",
        "_refcounts",
        "_compact",
    )

    def __init__(self, facts: Iterable[Fact]) -> None:
        self._facts: FrozenSet[Fact] = frozenset(facts)
        grouped: Dict[BlockId, List[Fact]] = {}
        adom = set()
        for fact in self._facts:
            grouped.setdefault(fact.block_id, []).append(fact)
            adom.add(fact.key)
            adom.add(fact.value)
        # The out-edge index partitions facts exactly like the blocks do
        # ((key, relation) vs (relation, key)), so one sort per block
        # serves both; Block.presorted skips the redundant re-sort.
        blocks: Dict[BlockId, Block] = {}
        out_index: Dict[Tuple[Hashable, str], Tuple[Fact, ...]] = {}
        for block_id, facts_ in grouped.items():
            facts_.sort()
            block = Block.presorted(block_id, tuple(facts_))
            blocks[block_id] = block
            out_index[(block_id[1], block_id[0])] = block.facts
        self._blocks = blocks
        self._adom: FrozenSet[Hashable] = frozenset(adom)
        self._out_index = out_index
        self._hash: Optional[int] = None
        self._sorted_adom: Optional[Tuple[Hashable, ...]] = None
        self._refcounts: Optional[Dict[Hashable, int]] = None
        self._compact = None

    @classmethod
    def _from_parts(
        cls,
        facts: FrozenSet[Fact],
        blocks: Dict[BlockId, Block],
        adom: FrozenSet[Hashable],
        out_index: Dict[Tuple[Hashable, str], Tuple[Fact, ...]],
        refcounts: Optional[Dict[Hashable, int]] = None,
    ) -> "DatabaseInstance":
        """Assemble an instance from prebuilt structures without the O(db)
        re-indexing pass.  Used by :class:`repro.db.delta.DeltaInstance` to
        commit O(delta)-patched copies of an existing instance's indexes;
        callers are responsible for the structures being consistent."""
        instance = cls.__new__(cls)
        instance._facts = facts
        instance._blocks = blocks
        instance._adom = adom
        instance._out_index = out_index
        instance._hash = None
        instance._sorted_adom = None
        instance._refcounts = refcounts
        instance._compact = None
        return instance

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_triples(
        cls, triples: Iterable[Tuple[str, Hashable, Hashable]]
    ) -> "DatabaseInstance":
        """Build an instance from ``(relation, key, value)`` triples."""
        return cls(Fact(r, k, v) for r, k, v in triples)

    @classmethod
    def empty(cls) -> "DatabaseInstance":
        return cls(())

    def union(self, other: "DatabaseInstance") -> "DatabaseInstance":
        return DatabaseInstance(self._facts | other._facts)

    def with_facts(self, facts: Iterable[Fact]) -> "DatabaseInstance":
        return DatabaseInstance(self._facts | frozenset(facts))

    def without_facts(self, facts: Iterable[Fact]) -> "DatabaseInstance":
        return DatabaseInstance(self._facts - frozenset(facts))

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts))

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseInstance):
            return self._facts == other._facts
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("DatabaseInstance", self._facts))
        return self._hash

    def __le__(self, other: "DatabaseInstance") -> bool:
        """Subinstance test."""
        return self._facts <= other._facts

    def __reduce__(self):
        # The wire-format contract (relied on by engine worker pools and
        # the serving layer's ProcessTransport, regression-tested by
        # tests/test_transport_contract.py): ship ONLY the facts.  The
        # indexes rebuild deterministically on the receiving side, and
        # the cached CompactInstance must NOT cross process boundaries
        # (its interner ids are process-local) -- a receiver compiles its
        # own compact view against its own interner and reaches the same
        # answers.
        return (DatabaseInstance, (tuple(self._facts),))

    def __str__(self) -> str:
        return "{" + ", ".join(str(f) for f in self) + "}"

    __repr__ = __str__

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def adom(self) -> FrozenSet[Hashable]:
        """``adom(db)``: the active domain (all constants occurring)."""
        return self._adom

    def sorted_adom(self) -> Tuple[Hashable, ...]:
        """The active domain in canonical (string) order, cached.

        Every deterministic sweep over the domain -- the FO solver probing
        constants, the generic FO evaluator's quantifier ranges, path
        enumeration -- needs this order; computing it once per instance
        instead of per call keeps repeated probes O(1) after the first.
        """
        if self._sorted_adom is None:
            self._sorted_adom = tuple(sorted(self._adom, key=str))
        return self._sorted_adom

    def adom_refcounts(self) -> Dict[Hashable, int]:
        """Occurrence counts of each constant (key + value positions).

        A constant is in ``adom`` iff its count is positive; delta overlays
        patch these counts to maintain the domain in O(delta) under fact
        removal.  Built lazily once per instance; callers must not mutate
        the returned dict.
        """
        if self._refcounts is None:
            counts: Dict[Hashable, int] = {}
            for fact in self._facts:
                counts[fact.key] = counts.get(fact.key, 0) + 1
                counts[fact.value] = counts.get(fact.value, 0) + 1
            self._refcounts = counts
        return self._refcounts

    def relation_names(self) -> FrozenSet[str]:
        return frozenset(f.relation for f in self._facts)

    def blocks(self) -> List[Block]:
        """All blocks, in canonical order."""
        return [self._blocks[bid] for bid in sorted(self._blocks, key=str)]

    def conflicting_blocks(self) -> List[Block]:
        """All blocks with more than one fact."""
        return [b for b in self.blocks() if b.is_conflicting()]

    def block(self, relation: str, key: Hashable) -> Optional[Block]:
        """The block ``R(c, *)``, or ``None`` if empty in this instance."""
        return self._blocks.get((relation, key))

    def out_facts(self, constant: Hashable, relation: str) -> Tuple[Fact, ...]:
        """All facts ``relation(constant, *)`` -- the block as a tuple."""
        return self._out_index.get((constant, relation), ())

    def compact(self):
        """The array-backed :class:`~repro.db.compact.CompactInstance`.

        Compiled lazily on first use and cached for the lifetime of this
        (immutable) instance; overlay commits carry the cache forward by
        patching it in O(delta), see
        :meth:`repro.db.delta.DeltaInstance.commit`.
        """
        if self._compact is None:
            from repro.db.compact import CompactInstance

            self._compact = CompactInstance.build(self)
        return self._compact

    def is_consistent(self) -> bool:
        """True iff no block contains more than one fact."""
        return all(len(block) == 1 for block in self._blocks.values())

    def is_repair_of(self, db: "DatabaseInstance") -> bool:
        """True iff this instance is a repair of *db*.

        A repair is a maximal consistent subinstance: consistent, contained
        in *db*, and containing exactly one fact from every block of *db*.
        """
        if not self._facts <= db._facts:
            return False
        if not self.is_consistent():
            return False
        return len(self._blocks) == len(db._blocks)
