"""Database substrate: facts, blocks, instances, repairs, paths.

Implements the data model of Section 2: database instances are finite sets
of binary facts; a *block* is a maximal set of key-equal facts; a *repair*
is an inclusion-maximal consistent subinstance (one fact per block).
"""

from repro.db.facts import Fact
from repro.db.instance import Block, DatabaseInstance
from repro.db.delta import Delta, DeltaInstance
from repro.db.compact import CompactInstance
from repro.db.interner import Interner, global_interner
from repro.db.repairs import (
    count_repairs,
    iter_repairs,
    random_repair,
    repair_signature,
)
from repro.db.paths import (
    Path,
    find_path_with_trace,
    has_path_with_trace,
    is_consistent_path,
    is_terminal,
    iter_paths_with_trace,
)
from repro.db.evaluation import (
    query_satisfied,
    path_query_satisfied,
    rooted_path_query_satisfied,
)

__all__ = [
    "Fact",
    "Block",
    "DatabaseInstance",
    "Delta",
    "DeltaInstance",
    "CompactInstance",
    "Interner",
    "global_interner",
    "count_repairs",
    "iter_repairs",
    "random_repair",
    "repair_signature",
    "Path",
    "find_path_with_trace",
    "has_path_with_trace",
    "is_consistent_path",
    "is_terminal",
    "iter_paths_with_trace",
    "query_satisfied",
    "path_query_satisfied",
    "rooted_path_query_satisfied",
]
