"""repro: Consistent Query Answering for Primary Keys on Path Queries.

A complete reproduction of Koutris, Ouyang & Wijsen, *Consistent Query
Answering for Primary Keys on Path Queries* (PODS 2021 / arXiv:2309.15270).

Quickstart
----------

>>> from repro import DatabaseInstance, classify, certain_answer
>>> str(classify("RRX").complexity)
'NL-complete'
>>> db = DatabaseInstance.from_triples(
...     [("R", 0, 1), ("R", 1, 2), ("R", 1, 3), ("R", 2, 3), ("X", 3, 4)])
>>> certain_answer(db, "RRX").answer        # Figure 2: a "yes"-instance
True

Public API
----------

* queries: :class:`PathQuery`, :class:`GeneralizedPathQuery`,
  :class:`ConjunctiveQuery`, :class:`Word`;
* data: :class:`Fact`, :class:`DatabaseInstance`, repair utilities;
* classification: :func:`classify`, :func:`classify_generalized`,
  :class:`ComplexityClass` (Theorem 3 / Theorems 4-5);
* solving: :func:`certain_answer` (classification-driven dispatch), the
  compile-once :class:`CertaintyEngine`/:class:`CompiledQuery` pair in
  :mod:`repro.engine` for repeated-query workloads, and the individual
  solvers in :mod:`repro.solvers`;
* hardness reductions, workload generators and the paper's own instances
  in :mod:`repro.reductions` and :mod:`repro.workloads`.
"""

from repro.words.word import Word
from repro.queries.atoms import Atom, Variable
from repro.queries.conjunctive import ConjunctiveQuery
from repro.queries.path_query import PathQuery, RootedPathQuery
from repro.queries.generalized import GeneralizedPathQuery, TerminalWord
from repro.db.facts import Fact
from repro.db.instance import Block, DatabaseInstance
from repro.db.repairs import count_repairs, iter_repairs
from repro.classification.classifier import (
    Classification,
    ComplexityClass,
    classify,
    classify_generalized,
)
from repro.engine import CertaintyEngine, CompiledQuery, default_engine
from repro.solvers.certainty import certain_answer
from repro.solvers.result import CertaintyResult

__version__ = "1.1.0"

__all__ = [
    "Word",
    "Atom",
    "Variable",
    "ConjunctiveQuery",
    "PathQuery",
    "RootedPathQuery",
    "GeneralizedPathQuery",
    "TerminalWord",
    "Fact",
    "Block",
    "DatabaseInstance",
    "count_repairs",
    "iter_repairs",
    "Classification",
    "ComplexityClass",
    "classify",
    "classify_generalized",
    "certain_answer",
    "CertaintyResult",
    "CertaintyEngine",
    "CompiledQuery",
    "default_engine",
    "__version__",
]
