"""Automata substrate (Section 5).

Generic nondeterministic finite automata with ε-moves, deterministic
automata via subset construction, and the query automata of the paper:
``NFA(q)`` (Definition 3), ``S-NFA(q, u)`` (Definition 5) and
``NFAmin(q)`` (Definition 13), plus their execution over database
instances (Definitions 6 and 7).
"""

from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.query_nfa import (
    backward_transitions,
    nfa_min,
    query_nfa,
    s_nfa,
)
from repro.automata.runs import (
    accepted_start_constants,
    accepts_path_from,
    states_set,
)

__all__ = [
    "NFA",
    "DFA",
    "backward_transitions",
    "nfa_min",
    "query_nfa",
    "s_nfa",
    "accepted_start_constants",
    "accepts_path_from",
    "states_set",
]
