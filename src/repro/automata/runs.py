"""Executing query automata over database instances (Definitions 6, 7).

A path of a database instance is *accepted* by an automaton if its trace
is.  For a consistent instance ``r``:

* ``start(q, r)`` (Definition 6) is the set of constants ``c`` such that
  some path of ``r`` starting at ``c`` is accepted by ``NFA(q)``;
* the *states set* ``ST_q(f, r)`` (Definition 7) of a fact ``f`` collects
  the states ``uR`` such that ``S-NFA(q, u)`` accepts a path starting with
  ``f``.

Both are computed by a backward fixpoint over the product of the instance
with the automaton: ``good(c, s)`` holds iff some path from ``c`` is
accepted when the automaton starts in state ``s``.  Paths may reuse facts
(they are walks), so plain reachability in the product graph is exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Set, Tuple

from repro.automata.nfa import NFA
from repro.db.instance import DatabaseInstance
from repro.db.facts import Fact
from repro.words.word import Word, WordLike
from repro.automata.query_nfa import query_nfa


def good_product_states(
    db: DatabaseInstance, nfa: NFA
) -> Set[Tuple[Hashable, Hashable]]:
    """All product states ``(c, s)`` from which acceptance is reachable.

    ``(c, s)`` is *good* iff there is a (possibly empty) path of *db*
    starting at ``c`` whose trace is accepted by the automaton started in
    state ``s``.  Computed as a least fixpoint with a worklist, iterating
    the rule: ``(c, s)`` is good if ``closure(s)`` contains an accepting
    state, or some fact ``R(c, d)`` and state ``s' ∈ δ(closure(s), R)``
    have ``(d, s')`` good.
    """
    good: Set[Tuple[Hashable, Hashable]] = set()
    # Incoming-edge index on the product graph, built lazily: for each
    # product state we may reach, remember which (c, s) can step into it.
    predecessors: Dict[
        Tuple[Hashable, Hashable], Set[Tuple[Hashable, Hashable]]
    ] = {}
    all_states = []
    for constant in db.adom():
        for state in nfa.states:
            all_states.append((constant, state))
    # Build product edges (c, s) -> (d, s').
    for constant, state in all_states:
        closure = nfa.epsilon_closure(state)
        for relation in nfa.alphabet:
            targets: Set[Hashable] = set()
            for s in closure:
                targets |= nfa.successors(s, relation)
            if not targets:
                continue
            for fact in db.out_facts(constant, relation):
                for target_state in targets:
                    predecessors.setdefault(
                        (fact.value, target_state), set()
                    ).add((constant, state))
    # Base: ε-closure touches an accepting state.
    worklist = []
    for constant, state in all_states:
        if nfa.epsilon_closure(state) & nfa.accepting:
            good.add((constant, state))
            worklist.append((constant, state))
    while worklist:
        node = worklist.pop()
        for predecessor in predecessors.get(node, ()):  # noqa: B020
            if predecessor not in good:
                good.add(predecessor)
                worklist.append(predecessor)
    return good


def accepts_path_from(
    db: DatabaseInstance, nfa: NFA, constant: Hashable
) -> bool:
    """True iff some path of *db* starting at *constant* is accepted."""
    return (constant, nfa.initial) in good_product_states(db, nfa)


def accepted_start_constants(
    db: DatabaseInstance, q: WordLike
) -> FrozenSet[Hashable]:
    """``start(q, db)`` (Definition 6) for a (typically consistent) instance.

    The set of constants ``c`` with an ``NFA(q)``-accepted path from ``c``.
    The definition targets consistent instances (repairs) but the
    computation is meaningful for any instance.
    """
    nfa = query_nfa(q)
    good = good_product_states(db, nfa)
    return frozenset(c for c in db.adom() if (c, nfa.initial) in good)


def states_set(
    db: DatabaseInstance, q: WordLike, fact: Fact
) -> FrozenSet[int]:
    """The states set ``ST_q(f, db)`` (Definition 7), as prefix lengths.

    ``uR ∈ ST_q(f, r)`` iff ``S-NFA(q, u)`` accepts a path of ``r``
    starting with the fact ``f``; the returned set contains ``|uR|`` for
    each such state.  All returned lengths index prefixes of ``q`` ending
    with ``f``'s relation name (see the remark after Definition 7).
    """
    q = Word.coerce(q)
    nfa = query_nfa(q)
    good = good_product_states(db, nfa)
    result: Set[int] = set()
    for u_len in range(len(q)):
        if q[u_len] != fact.relation:
            continue
        # S-NFA(q, u) reads fact f = R(key, value): from closure(u) take an
        # R-transition, landing in states T; accept if some (value, t) is
        # good.  The landing states are exactly {i+1 : i in closure(u_len),
        # q[i] == R}.
        closure = nfa.epsilon_closure(u_len)
        landing = {i + 1 for i in closure if i < len(q) and q[i] == fact.relation}
        if any((fact.value, t) in good for t in landing):
            result.add(u_len + 1)
    return frozenset(result)
