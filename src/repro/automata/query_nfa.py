"""The query automata ``NFA(q)``, ``S-NFA(q, u)``, ``NFAmin(q)``.

Definition 3: the states of ``NFA(q)`` are the prefixes of ``q`` -- we
represent the prefix of length ``i`` by the integer ``i``.  Transitions:

* *forward*: ``i --q[i]--> i+1`` (reading the next relation name);
* *backward*: ``j --ε--> i`` whenever ``1 <= i < j`` and
  ``q[i-1] == q[j-1]`` (two prefixes ending in the same relation name;
  these capture the *rewinding* operation).

The initial state is ``0`` (the empty prefix) and the only accepting state
is ``|q|``.  Lemma 4: ``NFA(q)`` accepts exactly ``L↬(q)``.

``S-NFA(q, u)`` (Definition 5) is ``NFA(q)`` started at the state ``|u|``.
``NFAmin(q)`` (Definition 13) accepts the accepted words without accepted
proper prefixes; we realize it as a DFA via the shortest-prefix transform.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.words.word import Word, WordLike


def backward_transitions(q: WordLike) -> List[Tuple[int, int]]:
    """All backward ε-transitions ``(source, target)`` of ``NFA(q)``.

    ``(j, i)`` with ``i < j`` is present when the prefixes of length ``i``
    and ``j`` end with the same relation name.
    """
    q = Word.coerce(q)
    result = []
    for j in range(1, len(q) + 1):
        for i in range(1, j):
            if q[i - 1] == q[j - 1]:
                result.append((j, i))
    return result


def query_nfa(q: WordLike) -> NFA:
    """``NFA(q)`` (Definition 3), with integer states ``0..|q|``.

    >>> nfa = query_nfa("RXRRR")        # Figure 4
    >>> nfa.accepts(list("RXRRR"))
    True
    >>> nfa.accepts(list("RXRXRRR"))    # one rewind of the RXR factor
    True
    """
    q = Word.coerce(q)
    states = range(len(q) + 1)
    transitions: Dict[Tuple[int, str], Set[int]] = {}
    for i, symbol in enumerate(q):
        transitions.setdefault((i, symbol), set()).add(i + 1)
    epsilon: Dict[int, Set[int]] = {}
    for j, i in backward_transitions(q):
        epsilon.setdefault(j, set()).add(i)
    return NFA(
        states=states,
        alphabet=q.alphabet() if q else frozenset(),
        transitions=transitions,
        epsilon=epsilon,
        initial=0,
        accepting=[len(q)],
    )


def s_nfa(q: WordLike, prefix_length: int) -> NFA:
    """``S-NFA(q, u)`` (Definition 5): ``NFA(q)`` started at prefix ``u``.

    *prefix_length* is ``|u|``; ``s_nfa(q, 0) == NFA(q)``.
    """
    q = Word.coerce(q)
    if not 0 <= prefix_length <= len(q):
        raise ValueError(
            "prefix length {} out of range for |q|={}".format(prefix_length, len(q))
        )
    return query_nfa(q).with_initial(prefix_length)


def nfa_min(q: WordLike) -> DFA:
    """``NFAmin(q)`` (Definition 13) as a deterministic automaton.

    Accepts ``w`` iff ``w ∈ L↬(q)`` and no proper prefix of ``w`` is in
    ``L↬(q)``.  Built by determinizing ``NFA(q)`` (bitmask subset
    construction over the dense tables) and deleting outgoing
    transitions from accepting states.
    """
    return DFA.from_nfa(query_nfa(q)).shortest_prefix_transform()


def query_nfa_dense(q: WordLike):
    """The :class:`~repro.automata.nfa.DenseNFA` of ``NFA(q)``.

    Integer states are already the prefix lengths; the dense form adds
    the per-symbol bitmask transition tables, the representation the
    subset construction and batch membership sweeps step through.
    """
    return query_nfa(q).dense()


def language_contains(q: WordLike, word: WordLike) -> bool:
    """Membership test ``word ∈ L↬(q)`` via ``NFA(q)`` (Lemma 4)."""
    q = Word.coerce(q)
    word = Word.coerce(word)
    return query_nfa_dense(q).accepts(word.symbols)
