"""Deterministic finite automata and the subset construction.

Provides the DFA operations the paper's constructions need:

* subset construction from an :class:`~repro.automata.nfa.NFA`, run on
  the NFA's :class:`~repro.automata.nfa.DenseNFA` bitmask tables (a
  subset is one int, a step is an OR loop);
* completion, complement, product (intersection / difference) -- the
  product walks :meth:`dense_tables`, the flat int transition arrays
  with dense symbol ids;
* the *shortest-prefix* transform behind ``NFAmin(q)`` (Definition 13):
  a word is accepted iff it is accepted by the original automaton and no
  proper prefix is -- obtained by deleting all transitions out of
  accepting states;
* emptiness and equivalence tests, and a partition-refinement minimizer.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.automata.nfa import NFA

Symbol = str


class DFA:
    """A (possibly partial) deterministic finite automaton.

    States are integers ``0..n-1``; state 0 is initial.  Transitions are a
    dict from ``(state, symbol)`` to state; missing entries are implicit
    dead ends (partial DFA).
    """

    __slots__ = ("n_states", "alphabet", "transitions", "accepting", "_dense")

    def __init__(
        self,
        n_states: int,
        alphabet: Iterable[Symbol],
        transitions: Dict[Tuple[int, Symbol], int],
        accepting: Iterable[int],
    ) -> None:
        self.n_states = n_states
        self.alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self.transitions = dict(transitions)
        self.accepting: FrozenSet[int] = frozenset(accepting)
        self._dense = None
        for (state, symbol), target in self.transitions.items():
            if not (0 <= state < n_states and 0 <= target < n_states):
                raise ValueError("transition out of range")
            if symbol not in self.alphabet:
                raise ValueError("unknown symbol {!r}".format(symbol))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "DFA":
        """Subset construction (ε-closures included), over bitmasks.

        Subsets are single ints from the NFA's dense compilation; the
        accepted language is identical to the frozenset-based
        construction this replaces, with deterministic state numbering
        (discovery order over sorted symbols).
        """
        dense = nfa.dense()
        symbols = dense.symbols
        step = dense.step_mask
        n_symbols = len(symbols)
        initial = dense.initial_mask
        index: Dict[int, int] = {initial: 0}
        order: List[int] = [initial]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        queue = [initial]
        while queue:
            current = queue.pop()
            current_index = index[current]
            for si in range(n_symbols):
                target = step(current, si)
                if not target:
                    continue
                target_index = index.get(target)
                if target_index is None:
                    target_index = index[target] = len(order)
                    order.append(target)
                    queue.append(target)
                transitions[(current_index, symbols[si])] = target_index
        accept_mask = dense.accept_mask
        accepting = [i for i, mask in enumerate(order) if mask & accept_mask]
        return cls(len(order), nfa.alphabet, transitions, accepting)

    def dense_tables(self) -> Tuple[Tuple[Symbol, ...], "array", bytearray]:
        """Flat int transition tables ``(symbols, table, accepting)``.

        ``table[state * len(symbols) + si]`` is the successor of *state*
        on ``symbols[si]`` (sorted symbol order, the same dense symbol
        numbering :class:`~repro.automata.nfa.DenseNFA` uses), or ``-1``
        for the implicit dead state; ``accepting`` is one byte per
        state.  Built once and cached -- the product construction and
        the split-language equivalence sweeps of
        :func:`repro.datalog.cqa_program.split_query` iterate these
        instead of hashing ``(state, symbol)`` tuples.
        """
        if self._dense is not None:
            return self._dense
        symbols = tuple(sorted(self.alphabet))
        symbol_index = {symbol: i for i, symbol in enumerate(symbols)}
        n_symbols = len(symbols)
        table = array("l", [-1]) * (self.n_states * n_symbols)
        for (state, symbol), target in self.transitions.items():
            table[state * n_symbols + symbol_index[symbol]] = target
        accepting = bytearray(self.n_states)
        for state in self.accepting:
            accepting[state] = 1
        self._dense = (symbols, table, accepting)
        return self._dense

    def completed(self, alphabet: Optional[Iterable[Symbol]] = None) -> "DFA":
        """A complete DFA (total transition function) adding a sink state."""
        symbols = frozenset(alphabet) if alphabet is not None else self.alphabet
        symbols |= self.alphabet
        sink = self.n_states
        transitions = dict(self.transitions)
        needs_sink = False
        for state in range(self.n_states):
            for symbol in symbols:
                if (state, symbol) not in transitions:
                    transitions[(state, symbol)] = sink
                    needs_sink = True
        if needs_sink:
            for symbol in symbols:
                transitions[(sink, symbol)] = sink
            return DFA(self.n_states + 1, symbols, transitions, self.accepting)
        return DFA(self.n_states, symbols, transitions, self.accepting)

    def complement(self, alphabet: Optional[Iterable[Symbol]] = None) -> "DFA":
        """The complement DFA over the (possibly extended) alphabet."""
        complete = self.completed(alphabet)
        accepting = frozenset(range(complete.n_states)) - complete.accepting
        return DFA(
            complete.n_states, complete.alphabet, complete.transitions, accepting
        )

    def product(self, other: "DFA", mode: str = "intersection") -> "DFA":
        """Product automaton; *mode* is ``intersection`` or ``difference``.

        Walks the dense int tables of both completed automata -- a
        product state is the single int ``state_a * n_b + state_b`` --
        so the reachability sweep does integer arithmetic instead of
        pair-tuple hashing (this runs inside every language-equivalence
        check of the Claim 5 split search).
        """
        if mode not in ("intersection", "difference"):
            raise ValueError("unknown product mode {!r}".format(mode))
        alphabet = self.alphabet | other.alphabet
        a = self.completed(alphabet)
        b = other.completed(alphabet)
        symbols, table_a, accept_a = a.dense_tables()
        _, table_b, accept_b = b.dense_tables()
        n_symbols = len(symbols)
        n_b = b.n_states
        index: Dict[int, int] = {0: 0}  # code 0 == (state 0, state 0)
        order: List[int] = [0]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        queue = [0]
        while queue:
            code = queue.pop()
            code_index = index[code]
            state_a, state_b = divmod(code, n_b)
            base_a = state_a * n_symbols
            base_b = state_b * n_symbols
            for si in range(n_symbols):
                target = table_a[base_a + si] * n_b + table_b[base_b + si]
                target_index = index.get(target)
                if target_index is None:
                    target_index = index[target] = len(order)
                    order.append(target)
                    queue.append(target)
                transitions[(code_index, symbols[si])] = target_index
        if mode == "intersection":
            accepting = [
                i
                for i, code in enumerate(order)
                if accept_a[code // n_b] and accept_b[code % n_b]
            ]
        else:
            accepting = [
                i
                for i, code in enumerate(order)
                if accept_a[code // n_b] and not accept_b[code % n_b]
            ]
        return DFA(len(order), alphabet, transitions, accepting)

    def shortest_prefix_transform(self) -> "DFA":
        """Accept exactly the accepted words none of whose proper prefixes
        are accepted (the ``NFAmin`` construction of Definition 13).

        In a DFA this is achieved by deleting all outgoing transitions from
        accepting states: a run then reaches an accepting state exactly at
        the first accepted prefix.
        """
        transitions = {
            (state, symbol): target
            for (state, symbol), target in self.transitions.items()
            if state not in self.accepting
        }
        return DFA(self.n_states, self.alphabet, transitions, self.accepting)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def step(self, state: Optional[int], symbol: Symbol) -> Optional[int]:
        """One step; ``None`` is the implicit dead state."""
        if state is None:
            return None
        return self.transitions.get((state, symbol))

    def accepts(self, word: Iterable[Symbol]) -> bool:
        state: Optional[int] = 0
        for symbol in word:
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accepting

    def is_empty(self) -> bool:
        """True iff no accepting state is reachable."""
        seen: Set[int] = {0}
        stack = [0]
        while stack:
            state = stack.pop()
            if state in self.accepting:
                return False
            for symbol in self.alphabet:
                target = self.transitions.get((state, symbol))
                if target is not None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return True

    def equivalent(self, other: "DFA") -> bool:
        """Language equivalence via two symmetric-difference emptiness tests."""
        return (
            self.product(other, "difference").is_empty()
            and other.product(self, "difference").is_empty()
        )

    def shortest_accepted(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word, or ``None`` if the language is empty."""
        from collections import deque

        queue = deque([(0, ())])
        seen = {0}
        while queue:
            state, word = queue.popleft()
            if state in self.accepting:
                return word
            for symbol in sorted(self.alphabet):
                target = self.transitions.get((state, symbol))
                if target is not None and target not in seen:
                    seen.add(target)
                    queue.append((target, word + (symbol,)))
        return None

    def enumerate_accepted(self, max_length: int) -> List[Tuple[Symbol, ...]]:
        """All accepted words up to *max_length*, in length-lex order."""
        results: List[Tuple[Symbol, ...]] = []
        frontier: List[Tuple[int, Tuple[Symbol, ...]]] = [(0, ())]
        for _ in range(max_length + 1):
            next_frontier: List[Tuple[int, Tuple[Symbol, ...]]] = []
            for state, word in frontier:
                if state in self.accepting:
                    results.append(word)
                for symbol in sorted(self.alphabet):
                    target = self.transitions.get((state, symbol))
                    if target is not None:
                        next_frontier.append((target, word + (symbol,)))
            frontier = next_frontier
        return results

    def minimized(self) -> "DFA":
        """Language-preserving minimization (Moore partition refinement).

        Unreachable states are dropped first; the result is complete over
        the same alphabet.
        """
        complete = self.completed()
        reachable: Set[int] = {0}
        stack = [0]
        while stack:
            state = stack.pop()
            for symbol in complete.alphabet:
                target = complete.transitions[(state, symbol)]
                if target not in reachable:
                    reachable.add(target)
                    stack.append(target)
        states = sorted(reachable)
        symbols = sorted(complete.alphabet)
        # Initial partition: accepting vs non-accepting.
        labels = {s: (1 if s in complete.accepting else 0) for s in states}
        while True:
            signature = {
                s: (labels[s],)
                + tuple(labels[complete.transitions[(s, a)]] for a in symbols)
                for s in states
            }
            groups: Dict[Tuple, int] = {}
            new_labels = {}
            for s in states:
                group = groups.setdefault(signature[s], len(groups))
                new_labels[s] = group
            if new_labels == labels:
                break
            labels = new_labels
        # Renumber so the initial state's class is 0.
        remap = {labels[0]: 0}
        for s in states:
            remap.setdefault(labels[s], len(remap))
        transitions = {}
        for s in states:
            for a in symbols:
                transitions[(remap[labels[s]], a)] = remap[
                    labels[complete.transitions[(s, a)]]
                ]
        accepting = {remap[labels[s]] for s in states if s in complete.accepting}
        return DFA(len(remap), complete.alphabet, transitions, accepting)

    def __repr__(self) -> str:
        return "DFA(states={}, accepting={})".format(
            self.n_states, sorted(self.accepting)
        )
