"""Nondeterministic finite automata with ε-moves.

A small, general NFA implementation sufficient for the paper's needs:
membership testing, ε-closures, and conversion material for the subset
construction in :mod:`repro.automata.dfa`.

:meth:`NFA.dense` compiles the automaton into a :class:`DenseNFA`: states
renumbered ``0..n-1``, symbols numbered densely in sorted order, and the
transition relation flattened into per-symbol *bitmask* tables -- one
int per state whose bits are the ε-closed successor set.  State sets
become single ints, so the subset construction and membership stepping
reduce to OR and AND loops instead of frozenset algebra.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Set,
    Tuple,
)

State = Hashable
Symbol = str


class DenseNFA:
    """An immutable integer/bitmask compilation of an :class:`NFA`.

    States are renumbered ``0..n-1`` and symbols numbered densely in
    sorted order (``symbol_index``); ``trans_masks[si][i]`` is the
    bitmask of ``closure(δ(state_i, symbols[si]))``, and a *set* of
    states is the int whose bit ``i`` stands for ``states[i]``.
    """

    __slots__ = (
        "states",
        "index_of",
        "symbols",
        "symbol_index",
        "trans_masks",
        "initial_mask",
        "accept_mask",
    )

    def __init__(self, nfa: "NFA") -> None:
        self.states: Tuple[State, ...] = tuple(
            sorted(nfa.states, key=str)
        )
        self.index_of: Dict[State, int] = {
            state: i for i, state in enumerate(self.states)
        }
        self.symbols: Tuple[Symbol, ...] = tuple(sorted(nfa.alphabet))
        self.symbol_index: Dict[Symbol, int] = {
            symbol: i for i, symbol in enumerate(self.symbols)
        }

        def mask_of(states: Iterable[State]) -> int:
            mask = 0
            for state in states:
                mask |= 1 << self.index_of[state]
            return mask

        self.trans_masks: List[List[int]] = [
            [
                mask_of(nfa.closure_of(nfa.successors(state, symbol)))
                for state in self.states
            ]
            for symbol in self.symbols
        ]
        self.initial_mask: int = mask_of(nfa.epsilon_closure(nfa.initial))
        self.accept_mask: int = mask_of(nfa.accepting)

    def step_mask(self, mask: int, symbol_index: int) -> int:
        """One ε-closed input step on a bitmask state set."""
        table = self.trans_masks[symbol_index]
        out = 0
        while mask:
            low = mask & -mask
            out |= table[low.bit_length() - 1]
            mask ^= low
        return out

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Bitmask membership test (agrees with :meth:`NFA.accepts`)."""
        mask = self.initial_mask
        symbol_index = self.symbol_index
        for symbol in word:
            si = symbol_index.get(symbol)
            if si is None:
                return False
            mask = self.step_mask(mask, si)
            if not mask:
                return False
        return bool(mask & self.accept_mask)


class NFA:
    """An NFA with ε-moves.

    Parameters
    ----------
    states:
        The set of states.
    alphabet:
        The input alphabet.
    transitions:
        Mapping from ``(state, symbol)`` to a set of successor states.
    epsilon:
        Mapping from ``state`` to the set of ε-successors.
    initial:
        The initial state.
    accepting:
        The set of accepting states.
    """

    __slots__ = (
        "_states",
        "_alphabet",
        "_transitions",
        "_epsilon",
        "_initial",
        "_accepting",
        "_closure_cache",
        "_dense",
    )

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[Tuple[State, Symbol], Iterable[State]],
        epsilon: Mapping[State, Iterable[State]],
        initial: State,
        accepting: Iterable[State],
    ) -> None:
        self._states: FrozenSet[State] = frozenset(states)
        self._alphabet: FrozenSet[Symbol] = frozenset(alphabet)
        self._transitions: Dict[Tuple[State, Symbol], FrozenSet[State]] = {
            key: frozenset(value) for key, value in transitions.items()
        }
        self._epsilon: Dict[State, FrozenSet[State]] = {
            key: frozenset(value) for key, value in epsilon.items()
        }
        self._initial = initial
        self._accepting: FrozenSet[State] = frozenset(accepting)
        self._validate()
        self._closure_cache: Dict[State, FrozenSet[State]] = {}
        self._dense: "DenseNFA" = None

    def _validate(self) -> None:
        if self._initial not in self._states:
            raise ValueError("initial state {!r} not in states".format(self._initial))
        if not self._accepting <= self._states:
            raise ValueError("accepting states must be a subset of states")
        for (state, symbol), targets in self._transitions.items():
            if state not in self._states or not targets <= self._states:
                raise ValueError("transition {} uses unknown state".format((state, symbol)))
            if symbol not in self._alphabet:
                raise ValueError("transition uses unknown symbol {!r}".format(symbol))
        for state, targets in self._epsilon.items():
            if state not in self._states or not targets <= self._states:
                raise ValueError("ε-transition from {!r} uses unknown state".format(state))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def states(self) -> FrozenSet[State]:
        return self._states

    @property
    def alphabet(self) -> FrozenSet[Symbol]:
        return self._alphabet

    @property
    def initial(self) -> State:
        return self._initial

    @property
    def accepting(self) -> FrozenSet[State]:
        return self._accepting

    def successors(self, state: State, symbol: Symbol) -> FrozenSet[State]:
        """δ(state, symbol), without ε-closure."""
        return self._transitions.get((state, symbol), frozenset())

    def epsilon_successors(self, state: State) -> FrozenSet[State]:
        return self._epsilon.get(state, frozenset())

    def dense(self) -> DenseNFA:
        """The :class:`DenseNFA` bitmask compilation, built once.

        The subset construction (:meth:`repro.automata.dfa.DFA.from_nfa`)
        and batch membership tests run on this form.
        """
        if self._dense is None:
            self._dense = DenseNFA(self)
        return self._dense

    def with_initial(self, initial: State) -> "NFA":
        """The same automaton started at a different state (Definition 5)."""
        return NFA(
            self._states,
            self._alphabet,
            self._transitions,
            self._epsilon,
            initial,
            self._accepting,
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def epsilon_closure(self, state: State) -> FrozenSet[State]:
        """All states reachable from *state* by ε-moves (including itself)."""
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        closure: Set[State] = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for successor in self._epsilon.get(current, ()):
                if successor not in closure:
                    closure.add(successor)
                    stack.append(successor)
        result = frozenset(closure)
        self._closure_cache[state] = result
        return result

    def closure_of(self, states: Iterable[State]) -> FrozenSet[State]:
        """The ε-closure of a set of states."""
        result: Set[State] = set()
        for state in states:
            result |= self.epsilon_closure(state)
        return frozenset(result)

    def step(self, states: FrozenSet[State], symbol: Symbol) -> FrozenSet[State]:
        """One input step with ε-closure: ``closure(δ(states, symbol))``."""
        moved: Set[State] = set()
        for state in states:
            moved |= self.successors(state, symbol)
        return self.closure_of(moved)

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """True iff the automaton accepts the given word."""
        current = self.epsilon_closure(self._initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._accepting)

    def accepts_from(self, state: State, word: Iterable[Symbol]) -> bool:
        """True iff the word is accepted when starting at *state*."""
        current = self.epsilon_closure(state)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._accepting)

    def is_empty(self) -> bool:
        """True iff the accepted language is empty (reachability check)."""
        seen: Set[State] = set(self.epsilon_closure(self._initial))
        stack = list(seen)
        while stack:
            state = stack.pop()
            if state in self._accepting:
                return False
            for symbol in self._alphabet:
                for successor in self.step(frozenset([state]), symbol):
                    if successor not in seen:
                        seen.add(successor)
                        stack.append(successor)
        return True

    def __repr__(self) -> str:
        return "NFA(states={}, initial={!r}, accepting={})".format(
            len(self._states), self._initial, sorted(map(str, self._accepting))
        )
