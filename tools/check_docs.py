#!/usr/bin/env python
"""Documentation checker: links resolve, examples run, APIs exist.

Run from the repository root (CI's ``docs`` job and the tier-1 test
``tests/test_docs.py`` both do)::

    PYTHONPATH=src python tools/check_docs.py

Three checks over ``README.md`` and ``docs/*.md``:

1. **Links** -- every relative markdown link ``[text](path)`` must
   resolve to an existing file (anchors are stripped; ``http(s)://`` and
   ``mailto:`` links are skipped -- no network).
2. **Examples** -- every fenced ``pycon`` block is executed with
   :mod:`doctest`.  Blocks within one file share a namespace, in order,
   so a page reads as one session.  A block preceded by the marker
   ``<!-- doctest: skip -->`` is skipped (for illustrative fragments).
3. **API references** -- every backticked dotted name starting with
   ``repro.`` must import (modules) or resolve via attribute access
   (functions/classes), so documented APIs cannot silently drift.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import doctest
import importlib
import io
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(
    r"(^|\n)(?P<skip><!--\s*doctest:\s*skip\s*-->\s*\n)?"
    r"```pycon\n(?P<body>.*?)\n```",
    re.DOTALL,
)
API_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z_0-9]*)+)`")


def _rel(path: Path):
    """Repo-relative display path (verbatim for files outside the repo)."""
    try:
        return path.relative_to(ROOT)
    except ValueError:
        return path


def doc_files():
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path, text: str, problems: list) -> int:
    checked = 0
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure anchor into the same page
        resolved = (path.parent / target).resolve()
        checked += 1
        if not resolved.exists():
            problems.append(
                "{}: broken link -> {}".format(_rel(path), target)
            )
    return checked


def check_examples(path: Path, text: str, problems: list) -> int:
    """Run the file's ``pycon`` fences as one doctest session."""
    blocks = []
    for match in FENCE_RE.finditer(text):
        if match.group("skip"):
            continue
        blocks.append(match.group("body"))
    if not blocks:
        return 0
    source = "\n\n".join(blocks) + "\n"
    parser = doctest.DocTestParser()
    name = str(_rel(path))
    try:
        test = parser.get_doctest(source, {"__name__": "__docs__"}, name, name, 0)
    except ValueError as error:
        problems.append("{}: unparsable example: {}".format(name, error))
        return 0
    out = io.StringIO()
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    runner.run(test, out=out.write)
    if runner.failures:
        problems.append(
            "{}: {} of {} examples failed\n{}".format(
                name, runner.failures, runner.tries, out.getvalue().rstrip()
            )
        )
    return len(test.examples)


def check_api_references(path: Path, text: str, problems: list) -> int:
    checked = 0
    for match in API_RE.finditer(text):
        dotted = match.group(1)
        checked += 1
        if not _resolves(dotted):
            problems.append(
                "{}: documented API does not resolve: {}".format(
                    _rel(path), dotted
                )
            )
    return checked


def _resolves(dotted: str) -> bool:
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def main() -> int:
    problems: list = []
    links = examples = apis = 0
    files = doc_files()
    if len(files) < 2:
        problems.append("docs/ tree missing (expected README.md + docs/*.md)")
    for path in files:
        text = path.read_text(encoding="utf-8")
        links += check_links(path, text, problems)
        examples += check_examples(path, text, problems)
        apis += check_api_references(path, text, problems)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(
        "docs ok: {} files, {} links, {} examples, {} API references".format(
            len(files), links, examples, apis
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
