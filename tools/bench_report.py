#!/usr/bin/env python
"""Merge pytest-benchmark JSON artifacts into one trajectory table.

The CI ``bench-smoke`` job records each benchmark family as a
``BENCH_*.json`` artifact (pytest-benchmark's ``--benchmark-json``
format).  This tool folds any number of those files -- from one run or
from several runs being compared -- into a single markdown table sorted
by family and test, so the performance trajectory across PRs can be read
(and diffed) in one place.

Usage::

    python tools/bench_report.py [BENCH_a.json BENCH_b.json ...]
    python tools/bench_report.py --dir . --out BENCH_report.md

With no files given, every ``BENCH_*.json`` in ``--dir`` (default: the
current directory) is merged.  Files that are missing, empty, or not
pytest-benchmark JSON are reported and skipped -- a partial record is
better than none, which is exactly the situation after a failed gate.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return "{:.1f}us".format(seconds * 1e6)
    if seconds < 1.0:
        return "{:.2f}ms".format(seconds * 1e3)
    return "{:.3f}s".format(seconds)


def load_records(path: str) -> Optional[List[Dict]]:
    """The benchmark rows of one artifact, or None if unreadable."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print("skipping {}: {}".format(path, exc), file=sys.stderr)
        return None
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(
            "skipping {}: no 'benchmarks' array".format(path),
            file=sys.stderr,
        )
        return None
    family = os.path.splitext(os.path.basename(path))[0]
    records = []
    for bench in benchmarks:
        stats = bench.get("stats", {})
        extra = bench.get("extra_info") or {}
        records.append(
            {
                "family": family,
                "test": bench.get("name", "?"),
                "min": stats.get("min"),
                "mean": stats.get("mean"),
                "rounds": stats.get("rounds"),
                "notes": extra.get("notes", ""),
            }
        )
    return records


def render_table(records: List[Dict]) -> str:
    """The merged trajectory as a markdown table."""
    lines = [
        "| family | benchmark | min | mean | rounds | notes |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for record in sorted(
        records, key=lambda r: (r["family"], str(r["test"]))
    ):
        lines.append(
            "| {} | {} | {} | {} | {} | {} |".format(
                record["family"],
                record["test"],
                _format_seconds(record["min"])
                if record["min"] is not None
                else "-",
                _format_seconds(record["mean"])
                if record["mean"] is not None
                else "-",
                record["rounds"] if record["rounds"] is not None else "-",
                record.get("notes") or "",
            )
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge BENCH_*.json artifacts into one table"
    )
    parser.add_argument(
        "files", nargs="*", help="artifact files (default: --dir glob)"
    )
    parser.add_argument(
        "--dir", default=".", help="directory to glob BENCH_*.json from"
    )
    parser.add_argument(
        "--out", default=None, help="write markdown here (default: stdout)"
    )
    args = parser.parse_args(argv)

    paths = args.files or sorted(
        glob.glob(os.path.join(args.dir, "BENCH_*.json"))
    )
    records: List[Dict] = []
    for path in paths:
        loaded = load_records(path)
        if loaded:
            records.extend(loaded)
    if not records:
        print("no benchmark records found", file=sys.stderr)
        return 1
    table = "# Benchmark trajectory\n\n{}\n".format(render_table(records))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(table)
        print("wrote {} rows to {}".format(len(records), args.out))
    else:
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
