"""E6: the first-order rewriting (Lemmas 12/13) -- size and evaluation.

Compares the two evaluation strategies (the compiled `direct` recursion
vs the literal formula interpreted over the active domain) and measures
rewriting-construction cost as |q| grows.
"""

import pytest

from repro.fo.evaluate import formula_size
from repro.fo.rewriting import c1_rewriting
from repro.solvers.fo_solver import certain_answer_fo
from repro.workloads.generators import planted_instance
from repro.workloads.queries import fo_family

from conftest import seeded


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_bench_e6_rewriting_construction(benchmark, n):
    """Rewriting size is linear in |q| (one ∃/∀ pair per atom)."""
    query = fo_family(n)
    formula = benchmark(c1_rewriting, query)
    assert formula_size(formula) >= 4 * len(query)


@pytest.mark.parametrize("n_facts", [30, 120, 480])
def test_bench_e6_direct_evaluation(benchmark, n_facts):
    rng = seeded(n_facts)
    db = planted_instance(
        rng, "RXRX", n_constants=max(6, n_facts // 6),
        n_paths=n_facts // 12 + 1, n_noise_facts=n_facts // 2,
        conflict_rate=0.4,
    )
    result = benchmark(certain_answer_fo, db, "RXRX", strategy="direct")
    assert result.answer in (True, False)


@pytest.mark.parametrize("n_facts", [10, 20])
def test_bench_e6_formula_evaluation_ablation(benchmark, n_facts):
    """The naive formula interpreter: same answers, far slower -- the
    ablation quantifying what compiling the rewriting buys."""
    rng = seeded(n_facts)
    db = planted_instance(
        rng, "RXRX", n_constants=6, n_paths=2,
        n_noise_facts=n_facts, conflict_rate=0.4,
    )
    direct = certain_answer_fo(db, "RXRX", strategy="direct")
    result = benchmark(certain_answer_fo, db, "RXRX", strategy="formula")
    assert result.answer == direct.answer
